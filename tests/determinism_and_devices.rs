//! Cross-cutting integration tests: determinism under fixed seeds and
//! backend equivalence through the full estimator stack.

use kdesel::data::{generate_workload, Dataset, WorkloadKind, WorkloadSpec};
use kdesel::device::{Backend, Device};
use kdesel::kde::{BatchConfig, BatchKde, KdeEstimator, KernelFn};
use kdesel::storage::sampling;
use kdesel::SelectivityEstimator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every experiment-facing component is seeded; identical seeds must give
/// identical numbers end-to-end (dataset → sample → workload → optimized
/// bandwidth → estimates).
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let table = Dataset::Forest.generate_projected(3, 3_000, 42);
        let mut rng = StdRng::seed_from_u64(43);
        let sample = sampling::sample_rows(&table, 256, &mut rng);
        let train = generate_workload(
            &table,
            WorkloadSpec::paper(WorkloadKind::DataTarget),
            30,
            &mut rng,
        );
        let mut batch = BatchKde::new(
            Device::new(Backend::CpuPar),
            &sample,
            3,
            KernelFn::Gaussian,
            &train,
            &BatchConfig::default(),
            &mut rng,
        );
        let test = generate_workload(
            &table,
            WorkloadSpec::paper(WorkloadKind::DataTarget),
            20,
            &mut rng,
        );
        test.iter()
            .map(|q| batch.estimate(&q.region))
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}

/// The paper's quality results are backend-independent: the same model on
/// CpuSeq, CpuPar and SimGpu returns bit-identical estimates and gradients,
/// even though thread counts differ (pairwise reduction fixes the
/// summation order).
#[test]
fn backends_are_bitwise_equivalent_through_the_stack() {
    let table = Dataset::Power.generate_projected(4, 2_000, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let sample = sampling::sample_rows(&table, 512, &mut rng);
    let queries = generate_workload(
        &table,
        WorkloadSpec::paper(WorkloadKind::UniformVolume),
        25,
        &mut rng,
    );
    let mut all_outputs = Vec::new();
    for backend in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
        let mut est = KdeEstimator::new(Device::new(backend), &sample, 4, KernelFn::Gaussian);
        let mut outputs = Vec::new();
        for q in &queries {
            outputs.push(est.estimate(&q.region));
            outputs.extend(est.estimator_gradient(&q.region));
        }
        all_outputs.push(outputs);
    }
    assert_eq!(all_outputs[0], all_outputs[1], "seq vs par");
    assert_eq!(all_outputs[1], all_outputs[2], "par vs sim-gpu");
}

/// The simulated GPU's modeled time reproduces Figure 7's structure through
/// the public API: flat for small models, linear for large, GPU ~4× CPU
/// asymptotically.
#[test]
fn modeled_costs_reproduce_figure7_shape() {
    let dims = 8;
    let mut rng = StdRng::seed_from_u64(9);
    let table = Dataset::Synthetic.generate_projected(dims, 4_000, 10);
    let queries = generate_workload(
        &table,
        WorkloadSpec::paper(WorkloadKind::UniformVolume),
        10,
        &mut rng,
    );
    let base: Vec<f64> = table.rows().flat_map(|(_, r)| r.to_vec()).collect();
    let cost = |backend: Backend, n: usize| -> f64 {
        let sample: Vec<f64> = base.iter().copied().cycle().take(n * dims).collect();
        let mut est = KdeEstimator::new(Device::new(backend), &sample, dims, KernelFn::Gaussian);
        est.device().reset_timing();
        for q in &queries {
            est.estimate(&q.region);
        }
        est.device().modeled_seconds()
    };
    let gpu_small = cost(Backend::SimGpu, 1 << 10);
    let gpu_mid = cost(Backend::SimGpu, 1 << 14);
    let gpu_large = cost(Backend::SimGpu, 1 << 18);
    let cpu_large = cost(Backend::CpuPar, 1 << 18);

    assert!(
        gpu_mid / gpu_small < 2.5,
        "flat region: {gpu_small} -> {gpu_mid}"
    );
    assert!(
        gpu_large / gpu_mid > 4.0,
        "linear region: {gpu_mid} -> {gpu_large}"
    );
    let ratio = cpu_large / gpu_large;
    assert!((2.0..7.0).contains(&ratio), "GPU speedup {ratio}");
}
