//! Capture → replay integration tests: a recorded workload must replay
//! bitwise-identically on every backend, the versioned JSONL format must
//! survive concurrent writers, and damaged captures (truncation, foreign
//! schema versions) must be rejected loudly instead of mis-parsed.

use kdesel::device::{Backend, Device};
use kdesel::kde::{AdaptiveConfig, AdaptiveKde, KarmaConfig, KdeEstimator, KernelFn};
use kdesel::serve::{Capture, ModelKey, ReplaySpeed, ServeConfig, ServedModel, Service};
use kdesel::telemetry::{Event, EventSink, JsonlSink};
use kdesel::{QueryFeedback, Rect};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "kdesel-replay-it-{tag}-{}.jsonl",
        std::process::id()
    ))
}

fn sample(points: usize, dims: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..points * dims)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect()
}

fn region(dims: usize, rng: &mut StdRng) -> Rect {
    let intervals: Vec<(f64, f64)> = (0..dims)
        .map(|_| {
            let lo = rng.gen_range(-0.1..0.8);
            (lo, lo + rng.gen_range(0.05..0.4))
        })
        .collect();
    Rect::from_intervals(&intervals)
}

/// Records `queries` estimate requests (feeding back true selectivities on
/// every other one) against a freshly built service on `backend`, then
/// loads the capture, checks the span trees, and replays at max speed.
/// Returns the replayed (estimates, feedback, replacements) counts.
fn capture_and_replay(backend: Backend, seed: u64, queries: usize, tag: &str) -> (u64, u64, u64) {
    let path = temp_path(tag);
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = 2;
    let static_model = ServedModel::fixed(KdeEstimator::new(
        Device::new(backend),
        &sample(48, dims, &mut rng),
        dims,
        KernelFn::Gaussian,
    ));
    let adaptive_kde = AdaptiveKde::new(
        Device::new(backend),
        &sample(48, dims, &mut rng),
        dims,
        KernelFn::Gaussian,
        AdaptiveConfig::default(),
        // Eager Karma so short captures still trigger sample refreshes.
        KarmaConfig {
            threshold: -0.5,
            ..KarmaConfig::default()
        },
    );
    let mut refresh_rng = StdRng::seed_from_u64(seed ^ 0xf00d);
    let adaptive = ServedModel::adaptive_with_refresh(
        adaptive_kde,
        Box::new(move |_slot| Some((0..dims).map(|_| refresh_rng.gen_range(0.0..1.0)).collect())),
    );
    let keys = [
        ModelKey::new("static", &["a", "b"]),
        ModelKey::new("adaptive", &["c", "d"]),
    ];
    let service = Service::builder(ServeConfig {
        capture: Some(path.clone()),
        ..ServeConfig::default()
    })
    .register(keys[0].clone(), static_model)
    .register(keys[1].clone(), adaptive)
    .build()
    .expect("service with capture");
    let handle = service.handle();
    for i in 0..queries {
        let key = &keys[i % keys.len()];
        let q = region(dims, &mut rng);
        let pending = handle.submit(key, &q).expect("submit");
        let trace = pending.trace();
        let estimate = pending.wait().expect("estimate");
        if i % 2 == 1 {
            let actual = (estimate + rng.gen_range(-0.3..0.3)).clamp(0.0, 1.0);
            let feedback = QueryFeedback {
                region: q,
                estimate,
                actual,
                cardinality: (actual * 1e6) as u64,
            };
            handle
                .feedback_traced(key, feedback, trace)
                .expect("feedback");
            handle.flush(key).expect("flush");
        }
    }
    service.shutdown().expect("shutdown");

    let capture = Capture::load(&path).expect("well-formed capture");
    assert_eq!(capture.models.len(), 2);
    assert_eq!(capture.ops.len(), queries + queries / 2);
    let verified = capture.verify_spans().expect("complete span trees");
    assert_eq!(verified as usize, capture.ops.len());
    let outcome = capture
        .replay(ReplaySpeed::Max)
        .expect("bitwise-identical replay");
    let _ = std::fs::remove_file(&path);
    (outcome.estimates, outcome.feedback, outcome.replacements)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any captured mixed static/adaptive workload replays with every
    /// estimate bitwise identical, on every backend. `capture.replay`
    /// itself fails on the first mismatching bit, so the property is the
    /// absence of an error plus conservation of the operation counts.
    #[test]
    fn captures_replay_bitwise_on_every_backend(
        seed in 0u64..1_000_000,
        queries in 8usize..28,
    ) {
        for (i, backend) in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu]
            .into_iter()
            .enumerate()
        {
            let tag = format!("prop-{seed}-{queries}-{i}");
            let (estimates, feedback, _) = capture_and_replay(backend, seed, queries, &tag);
            prop_assert_eq!(estimates as usize, queries);
            prop_assert_eq!(feedback as usize, queries / 2);
        }
    }
}

/// Karma-driven sample refreshes recorded in the capture are re-installed
/// by the replay driver (scripted refresh), keeping adaptive trajectories
/// bit-exact. The eager threshold plus a long feedback-heavy run makes
/// replacements all but certain; the test asserts the counts agree rather
/// than a particular number.
#[test]
fn adaptive_refreshes_replay_deterministically() {
    let (estimates, feedback, _replacements) =
        capture_and_replay(Backend::CpuSeq, 0xabcde, 60, "refresh");
    assert_eq!(estimates, 60);
    assert_eq!(feedback, 30);
}

/// N threads hammering one JSONL sink must interleave whole lines: every
/// line parses as a versioned record, none are torn, none are lost.
#[test]
fn jsonl_sink_survives_concurrent_writers() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 200;
    let path = temp_path("concurrent");
    let sink = JsonlSink::create(&path).expect("create sink");
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let sink = &sink;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let event = Event::new("stress")
                        .u64("writer", w as u64)
                        .u64("i", i as u64)
                        .str("payload", "x\"y\\z\u{1f}")
                        .f64_slice("values", &[0.1, -0.0, f64::MIN_POSITIVE]);
                    sink.emit(&event);
                }
            });
        }
    });
    sink.flush();
    drop(sink);
    let text = std::fs::read_to_string(&path).expect("read back");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), WRITERS * PER_WRITER, "no lines lost or torn");
    for line in &lines {
        assert!(line.starts_with("{\"v\":1,"), "unversioned line: {line}");
        assert!(line.ends_with('}'), "torn line: {line}");
    }
    let _ = std::fs::remove_file(&path);
}

fn recorded_capture(tag: &str) -> String {
    let path = temp_path(tag);
    let mut rng = StdRng::seed_from_u64(7);
    let service = Service::builder(ServeConfig {
        capture: Some(path.clone()),
        ..ServeConfig::default()
    })
    .register(
        ModelKey::new("t", &["a", "b"]),
        ServedModel::fixed(KdeEstimator::new(
            Device::new(Backend::CpuSeq),
            &sample(32, 2, &mut rng),
            2,
            KernelFn::Gaussian,
        )),
    )
    .build()
    .expect("service");
    let handle = service.handle();
    let key = ModelKey::new("t", &["a", "b"]);
    for _ in 0..4 {
        let q = region(2, &mut rng);
        handle
            .submit(&key, &q)
            .expect("submit")
            .wait()
            .expect("wait");
    }
    service.shutdown().expect("shutdown");
    let text = std::fs::read_to_string(&path).expect("capture text");
    let _ = std::fs::remove_file(&path);
    text
}

/// A capture whose final line was cut mid-record (a crashed or killed
/// recorder) is reported as truncated, not silently replayed short.
#[test]
fn truncated_captures_are_detected() {
    let text = recorded_capture("truncate");
    let cut = text.len() - 20;
    let path = temp_path("truncated-copy");
    std::fs::write(&path, &text[..cut]).expect("write truncated");
    let err = Capture::load(&path).expect_err("must reject truncation");
    assert!(err.contains("truncated"), "unhelpful error: {err}");
    let _ = std::fs::remove_file(&path);
}

/// Dropping whole trailing lines (footer lost) is also flagged.
#[test]
fn missing_footer_is_detected() {
    let text = recorded_capture("footer");
    let without_footer: String = {
        let lines: Vec<&str> = text.lines().collect();
        lines[..lines.len() - 1].join("\n") + "\n"
    };
    let path = temp_path("footer-copy");
    std::fs::write(&path, without_footer).expect("write footerless");
    let err = Capture::load(&path).expect_err("must reject missing footer");
    assert!(err.contains("truncated"), "unhelpful error: {err}");
    let _ = std::fs::remove_file(&path);
}

/// Records stamped with a different schema version are rejected with the
/// offending version named, instead of being mis-parsed.
#[test]
fn foreign_schema_versions_are_rejected() {
    let text = recorded_capture("version");
    let tampered = text.replacen("{\"v\":1,", "{\"v\":99,", 1);
    assert_ne!(tampered, text, "tampering must hit at least one line");
    let path = temp_path("version-copy");
    std::fs::write(&path, tampered).expect("write tampered");
    let err = Capture::load(&path).expect_err("must reject foreign version");
    assert!(err.contains("99"), "unhelpful error: {err}");
    let _ = std::fs::remove_file(&path);
}
