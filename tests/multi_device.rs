//! Multi-device integration tests: a sharded, work-stealing
//! [`DeviceGroup`] must be an invisible drop-in for a single device.
//!
//! The contract under test is the one `crates/device/src/multi.rs` argues
//! for in its module docs: because partial sums are combined *in block
//! order* through the same pairwise tree the single-device sweep uses,
//! group estimates are bitwise-identical to `Backend::CpuSeq` on one
//! device — no matter which member executed which block, whether blocks
//! were stolen, or how the virtual-clock pacing interleaved the claims.

use kdesel::device::{Backend, CostProfile, Device, DeviceGroup, Partition};
use kdesel::kde::{KdeEstimator, KernelFn};
use kdesel::Rect;
use proptest::prelude::*;

/// A deterministic pseudo-random sample: cheap to generate inside
/// proptest cases, different per seed, and covering a [0, 100)ish domain.
fn synth_sample(rows: usize, dims: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut out = Vec::with_capacity(rows * dims);
    for _ in 0..rows * dims {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push((state >> 11) as f64 / (1u64 << 53) as f64 * 100.0);
    }
    out
}

/// Heterogeneous member menu: every backend, plus a fissioned (slow)
/// simulated GPU so profile-seeded partitions are genuinely skewed.
fn member_device(kind: usize) -> Device {
    match kind % 4 {
        0 => Device::with_profile(Backend::CpuSeq, CostProfile::xeon_e5620_opencl()),
        1 => Device::with_profile(Backend::CpuPar, CostProfile::xeon_e5620_opencl()),
        2 => Device::with_profile(Backend::SimGpu, CostProfile::gtx460()),
        _ => Device::with_profile(Backend::SimGpu, CostProfile::gtx460()).fission(0.25),
    }
}

fn query(dims: usize, lo: f64, hi: f64) -> Rect {
    Rect::from_intervals(&vec![(lo, hi); dims])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Group estimate, fused gradient, and batch estimates are all
    /// bitwise-identical to the single-device `CpuSeq` reference, across
    /// heterogeneous member mixes and adversarial shapes: fewer rows
    /// than devices, rows not a multiple of the lane width, shards with
    /// nothing to steal, pacing on and off.
    #[test]
    fn group_is_bitwise_identical_to_single_device(
        rows in 1usize..1500,
        dims in 1usize..4,
        members in proptest::collection::vec(0usize..4, 1..5),
        paced in 0usize..2,
        seed in 0u64..1u64 << 32,
    ) {
        let sample = synth_sample(rows, dims, seed);
        let mut single = KdeEstimator::new(
            Device::new(Backend::CpuSeq), &sample, dims, KernelFn::Gaussian);
        let mut group = DeviceGroup::new(members.iter().map(|&k| member_device(k)).collect());
        if paced == 1 {
            // Pacing only changes claim interleaving, never the numbers.
            group = group.with_pace(20.0);
        }
        let mut sharded = KdeEstimator::new_on_group(group, &sample, dims, KernelFn::Gaussian);

        let q = query(dims, 10.0, 80.0);
        prop_assert_eq!(single.estimate(&q).to_bits(), sharded.estimate(&q).to_bits());

        let (e1, g1) = single.estimate_with_gradient(&q);
        let (e2, g2) = sharded.estimate_with_gradient(&q);
        prop_assert_eq!(e1.to_bits(), e2.to_bits());
        prop_assert_eq!(g1.len(), g2.len());
        for (a, b) in g1.iter().zip(&g2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let batch = [query(dims, 0.0, 25.0), query(dims, 25.0, 60.0), query(dims, 40.0, 100.0)];
        for (a, b) in single.estimate_batch(&batch).iter().zip(sharded.estimate_batch(&batch)) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Replacing sample rows routes each write to the shard that owns the
    /// row, and the models stay bitwise-locked afterwards.
    #[test]
    fn row_replacement_keeps_group_and_single_locked(
        rows in 1usize..900,
        members in proptest::collection::vec(0usize..4, 2..5),
        seed in 0u64..1u64 << 32,
    ) {
        let dims = 2;
        let sample = synth_sample(rows, dims, seed);
        let mut single = KdeEstimator::new(
            Device::new(Backend::CpuSeq), &sample, dims, KernelFn::Gaussian);
        let group = DeviceGroup::new(members.iter().map(|&k| member_device(k)).collect());
        let mut sharded = KdeEstimator::new_on_group(group, &sample, dims, KernelFn::Gaussian);

        let replacement = [3.25, 97.5];
        for index in [0, rows / 2, rows - 1] {
            single.replace_point(index, &replacement);
            sharded.replace_point(index, &replacement);
        }
        let q = query(dims, 5.0, 95.0);
        prop_assert_eq!(single.estimate(&q).to_bits(), sharded.estimate(&q).to_bits());
    }
}

/// Profile-seeded staging uploads the whole sample exactly once: every
/// byte lands on exactly one member, faster members get more of them, and
/// no member is staged twice.
#[test]
fn profile_seeded_staging_covers_sample_exactly_once() {
    let dims = 3;
    let rows = 5000;
    let sample = synth_sample(rows, dims, 7);
    let group = DeviceGroup::new(vec![
        Device::with_profile(Backend::SimGpu, CostProfile::gtx460()),
        Device::with_profile(Backend::CpuPar, CostProfile::xeon_e5620_opencl()),
    ]);
    let part = group.stage_partitioned_soa_with(&sample, dims, Partition::Profile);
    assert_eq!(part.rows(), rows);

    let stats: Vec<_> = group.devices().iter().map(|d| d.stats()).collect();
    let total_up: u64 = stats.iter().map(|s| s.bytes_up).sum();
    assert_eq!(
        total_up as usize,
        rows * dims * 8,
        "every byte staged exactly once"
    );
    for s in &stats {
        assert!(s.uploads <= 1, "each member staged at most one shard");
    }
    // The GTX-460 profile models 4x the CPU's compute throughput, so the
    // profile-seeded split must hand it the strictly larger shard.
    assert!(stats[0].bytes_up > stats[1].bytes_up);
}

/// The group scheduler's counters surface through the shared telemetry
/// registry in Prometheus exposition format.
#[test]
fn group_counters_export_via_prometheus_text() {
    kdesel::telemetry::set_enabled(true);
    let dims = 2;
    let sample = synth_sample(4096, dims, 11);
    let group = DeviceGroup::homogeneous(Backend::CpuPar, CostProfile::xeon_e5620_opencl(), 2);
    let mut est = KdeEstimator::new_on_group(group, &sample, dims, KernelFn::Gaussian);
    est.estimate(&query(dims, 20.0, 70.0));

    let text = kdesel::telemetry::prometheus_text(kdesel::telemetry::registry());
    for name in [
        "kdesel_device_group_steals",
        "kdesel_device_group_blocks_executed",
        "kdesel_device_group_imbalance",
    ] {
        assert!(text.contains(name), "missing {name} in exposition:\n{text}");
    }
    kdesel::telemetry::set_enabled(false);
}

/// Release-mode work-stealing stress: a deliberately lopsided paced group
/// (fast full-rate simulated GPU + a 1%-fission laggard seeded half the
/// blocks) sweeps hundreds of queries while a single-device mirror checks
/// every result bitwise. Exercises the steal path hard — the fast member
/// must drain the laggard's queue every sweep.
#[test]
#[ignore = "heavy: run explicitly (check.sh runs it in release mode)"]
fn work_stealing_stress_stays_bitwise_locked() {
    let dims = 3;
    let rows = 6 * 1024;
    let sample = synth_sample(rows, dims, 23);
    let mut single = KdeEstimator::new(
        Device::new(Backend::CpuSeq),
        &sample,
        dims,
        KernelFn::Gaussian,
    );
    let fast = Device::with_profile(Backend::SimGpu, CostProfile::gtx460());
    let slow = fast.fission(0.01);
    let group = DeviceGroup::new(vec![fast, slow]).with_pace(200.0);
    let part = group.stage_partitioned_soa_with(&sample, dims, Partition::Equal);
    // Drive the raw group sweep alongside the estimator-level mirror so
    // both layers stay under stress.
    let flops = KernelFn::Gaussian.flops_per_factor() * dims as f64;
    let mut sharded = {
        let g = DeviceGroup::new(vec![
            Device::with_profile(Backend::SimGpu, CostProfile::gtx460()),
            Device::with_profile(Backend::SimGpu, CostProfile::gtx460()).fission(0.01),
        ])
        .with_pace(200.0);
        KdeEstimator::new_on_group(g, &sample, dims, KernelFn::Gaussian)
    };

    let ref_dev = Device::new(Backend::CpuSeq);
    let ref_buf = ref_dev.stage_rows_soa(&sample, dims);
    for i in 0..200 {
        let lo = (i % 37) as f64;
        let hi = lo + 20.0 + (i % 53) as f64;
        let q = query(dims, lo, hi);
        assert_eq!(
            single.estimate(&q).to_bits(),
            sharded.estimate(&q).to_bits(),
            "divergence at query {i}"
        );
        let (want, _) = ref_dev.sweep_reduce(&ref_buf, flops, false, |view, out| {
            for (r, slot) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for d in 0..dims {
                    acc += view.col(d)[r];
                }
                *slot = acc;
            }
        });
        let (got, _) = part_sweep(&group, &part, flops);
        assert_eq!(want.to_bits(), got.to_bits(), "raw sweep divergence at {i}");
    }

    let stats = sharded.group().expect("group-backed").stats();
    assert!(
        stats.steals > 0,
        "the fast member never stole from the laggard: {stats:?}"
    );
    let raw_stats = group.stats();
    assert!(raw_stats.steals > 0, "raw group never stole: {raw_stats:?}");
}

/// The raw group sweep used by the stress test (kept out of the loop body
/// for readability): sums all coordinates of every row.
fn part_sweep(
    group: &DeviceGroup,
    part: &kdesel::device::PartitionedSoa,
    flops: f64,
) -> (f64, Option<kdesel::device::DeviceBuffer>) {
    let dims = part.dims();
    group.sweep_reduce(part, flops, false, |view, out| {
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for d in 0..dims {
                acc += view.col(d)[r];
            }
            *slot = acc;
        }
    })
}
