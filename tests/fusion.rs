//! Fusion and batching invariants (device fused map-reduce layer).
//!
//! The fused single-launch paths (`estimate_with_gradient`,
//! `estimate_batch`) are pure performance rewrites of the separate-call
//! paths: every backend must produce *bit-identical* results either way,
//! and the fused paths must actually collapse the launch counts they claim
//! to (pinned against `DeviceStats` on the simulated GPU).

use kdesel::device::{Backend, Device};
use kdesel::kde::{KdeEstimator, KernelFn};
use kdesel::Rect;
use proptest::prelude::*;

const BACKENDS: [Backend; 3] = [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu];

/// Strategy: a random 2D sample big enough to cross the parallel chunking
/// threshold shapes on some draws.
fn sample_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 8..160).prop_map(|points| {
        let mut data = Vec::with_capacity(points.len() * 2);
        for (x, y) in points {
            data.push(x);
            data.push(y);
        }
        data
    })
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (-10.0f64..110.0, -10.0f64..110.0, 0.0f64..60.0, 0.0f64..60.0)
        .prop_map(|(x, y, w, h)| Rect::from_intervals(&[(x, x + w), (y, y + h)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fused estimate+gradient ≡ (estimate, estimator_gradient), bit-exact,
    /// on every backend — the contract that lets the adaptive tuner drop
    /// its second sample sweep.
    #[test]
    fn fused_estimate_with_gradient_equals_separate_calls(
        sample in sample_strategy(),
        q in rect_strategy(),
    ) {
        for backend in BACKENDS {
            let mut a = KdeEstimator::new(
                Device::new(backend), &sample, 2, KernelFn::Gaussian);
            let mut b = KdeEstimator::new(
                Device::new(backend), &sample, 2, KernelFn::Gaussian);
            let (est_fused, grad_fused) = a.estimate_with_gradient(&q);
            let est_ref = b.estimate(&q);
            let grad_ref = b.estimator_gradient(&q);
            prop_assert_eq!(est_fused, est_ref, "estimate mismatch on {:?}", backend);
            prop_assert_eq!(grad_fused, grad_ref, "gradient mismatch on {:?}", backend);
        }
    }

    /// Batched evaluation ≡ per-query estimates, bit-exact, on every
    /// backend — the contract behind the O(1)-launch optimizer objective.
    #[test]
    fn batched_estimates_equal_looped_estimates(
        sample in sample_strategy(),
        queries in proptest::collection::vec(rect_strategy(), 1..12),
    ) {
        for backend in BACKENDS {
            let mut est = KdeEstimator::new(
                Device::new(backend), &sample, 2, KernelFn::Gaussian);
            let batched = est.estimate_batch(&queries);
            let looped: Vec<f64> = queries.iter().map(|q| est.estimate(q)).collect();
            prop_assert_eq!(batched, looped, "batch mismatch on {:?}", backend);
        }
    }

    /// The compact-support kernel exercises the exact-zero factor paths in
    /// the fused per-point math; equality must still be bitwise.
    #[test]
    fn fusion_is_bit_exact_with_compact_support_kernels(
        sample in sample_strategy(),
        q in rect_strategy(),
    ) {
        for backend in BACKENDS {
            let mut a = KdeEstimator::new(
                Device::new(backend), &sample, 2, KernelFn::Epanechnikov);
            let mut b = KdeEstimator::new(
                Device::new(backend), &sample, 2, KernelFn::Epanechnikov);
            let (est_fused, grad_fused) = a.estimate_with_gradient(&q);
            prop_assert_eq!(est_fused, b.estimate(&q));
            prop_assert_eq!(grad_fused, b.estimator_gradient(&q));
        }
    }
}

/// The fused layer's whole point, pinned: a full estimate is one upload,
/// one kernel, one download; folding in the gradient adds nothing; a
/// B-query batch still launches once.
#[test]
fn fused_launch_counts_are_pinned() {
    let sample: Vec<f64> = (0..512).map(|i| (i % 97) as f64).collect();
    let mut est = KdeEstimator::new(Device::new(Backend::SimGpu), &sample, 2, KernelFn::Gaussian);
    let q = Rect::from_intervals(&[(10.0, 40.0), (5.0, 80.0)]);

    let s0 = est.device().stats();
    let _ = est.estimate(&q);
    let s1 = est.device().stats();
    assert_eq!(s1.kernels - s0.kernels, 1, "estimate launches once");
    assert_eq!(s1.uploads - s0.uploads, 1, "estimate uploads bounds once");
    assert_eq!(
        s1.downloads - s0.downloads,
        1,
        "estimate downloads one scalar"
    );

    let _ = est.estimate_with_gradient(&q);
    let s2 = est.device().stats();
    assert_eq!(s2.kernels - s1.kernels, 1, "gradient rides the same launch");
    assert_eq!(s2.downloads - s1.downloads, 1, "sums travel together");

    let queries: Vec<Rect> = (0..16)
        .map(|i| Rect::from_intervals(&[(i as f64, i as f64 + 30.0), (0.0, 50.0)]))
        .collect();
    let _ = est.estimate_batch(&queries);
    let s3 = est.device().stats();
    assert_eq!(s3.kernels - s2.kernels, 1, "16-query batch launches once");
    assert_eq!(s3.uploads - s2.uploads, 1, "all bounds in one upload");
    assert_eq!(s3.downloads - s2.downloads, 1, "all sums in one download");
}
