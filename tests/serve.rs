//! End-to-end tests for `kdesel-serve`: coalescing correctness (concurrent
//! results bit-identical to sequential estimates on every backend), launch
//! amortization (B requests → 1 fused launch), and warm-restart snapshot
//! round-trips.

use kdesel::device::{Backend, Device};
use kdesel::kde::{KdeEstimator, KernelFn, ModelSnapshot};
use kdesel::serve::{
    AdaptiveWaitConfig, CheckpointPolicy, ModelKey, ServeConfig, ServeError, ServedModel, Service,
};
use kdesel::Rect;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Duration;

fn sample(points: usize, dims: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..points * dims)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect()
}

fn regions(count: usize, dims: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let intervals: Vec<(f64, f64)> = (0..dims)
                .map(|_| {
                    let lo = rng.gen_range(-0.2..0.9);
                    (lo, lo + rng.gen_range(0.05..0.6))
                })
                .collect();
            Rect::from_intervals(&intervals)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdesel-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// N producer threads hammering one model must each get results bitwise
/// equal to a sequential `estimate` loop — on every backend.
#[test]
fn concurrent_estimates_are_bit_identical_to_sequential() {
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 24;
    let dims = 3;
    let sample = sample(128, dims, 1);
    let queries = regions(PRODUCERS * PER_PRODUCER, dims, 2);
    for backend in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
        // Sequential reference on a private model.
        let mut reference =
            KdeEstimator::new(Device::new(backend), &sample, dims, KernelFn::Gaussian);
        let expected: Vec<f64> = queries.iter().map(|q| reference.estimate(q)).collect();

        let key = ModelKey::new("t", &["a", "b", "c"]);
        let service = Service::builder(ServeConfig::default())
            .register(
                key.clone(),
                ServedModel::fixed(KdeEstimator::new(
                    Device::new(backend),
                    &sample,
                    dims,
                    KernelFn::Gaussian,
                )),
            )
            .build()
            .unwrap();
        let handle = service.handle();
        let got: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let handle = handle.clone();
                    let key = &key;
                    let queries = &queries;
                    scope.spawn(move || {
                        (p * PER_PRODUCER..(p + 1) * PER_PRODUCER)
                            .map(|i| (i, handle.estimate(key, &queries[i]).unwrap()))
                            .collect()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        for (i, value) in got.into_iter().flatten() {
            assert_eq!(
                value.to_bits(),
                expected[i].to_bits(),
                "{backend:?}: query {i} diverged ({value} vs {})",
                expected[i]
            );
        }
        let report = handle.report(&key).unwrap();
        assert_eq!(report.requests, (PRODUCERS * PER_PRODUCER) as u64);
        service.shutdown().unwrap();
    }
}

/// B asynchronous submissions with `max_batch == B` fuse into exactly one
/// `estimate_batch` launch: one bounds upload, one kernel, one download.
#[test]
fn coalesced_batch_is_one_fused_launch() {
    const B: usize = 16;
    let dims = 2;
    let sample = sample(256, dims, 3);
    let queries = regions(B, dims, 4);
    let key = ModelKey::new("t", &["a", "b"]);
    let service = Service::builder(ServeConfig {
        max_batch: B,
        max_wait: Duration::from_secs(5), // hold the batch until all B arrive
        ..ServeConfig::default()
    })
    .register(
        key.clone(),
        ServedModel::fixed(KdeEstimator::new(
            Device::new(Backend::SimGpu),
            &sample,
            dims,
            KernelFn::Gaussian,
        )),
    )
    .build()
    .unwrap();
    let handle = service.handle();
    let before = handle.report(&key).unwrap().device;
    let pending: Vec<_> = queries
        .iter()
        .map(|q| handle.submit(&key, q).unwrap())
        .collect();
    for p in pending {
        p.wait().unwrap();
    }
    let report = handle.report(&key).unwrap();
    let delta_kernels = report.device.kernels - before.kernels;
    let delta_uploads = report.device.uploads - before.uploads;
    let delta_downloads = report.device.downloads - before.downloads;
    assert_eq!(delta_kernels, 1, "{B} requests must fuse into 1 launch");
    assert_eq!(delta_uploads, 1, "one bounds upload for the whole batch");
    assert_eq!(
        delta_downloads, 1,
        "one result download for the whole batch"
    );
    assert_eq!(report.batches, 1);
    assert_eq!(report.requests, B as u64);
    assert_eq!(report.max_batch_seen, B);
    assert!((report.coalescing_ratio() - B as f64).abs() < 1e-12);
    service.shutdown().unwrap();
}

/// With the adaptive deadline, a worker whose producers cannot fill
/// `max_batch` closes each batch after a per-straggler gap instead of
/// stalling out the whole `max_wait` window — the throughput cliff the
/// fixed policy shows at large batch limits — and the answers stay
/// bit-identical to the fixed policy's.
#[test]
fn adaptive_wait_closes_starved_batches_early() {
    let dims = 2;
    let sample = sample(128, dims, 9);
    let queries = regions(6, dims, 10);
    let key = ModelKey::new("t", &["a", "b"]);
    let max_wait = Duration::from_millis(40);
    let run = |adaptive: Option<AdaptiveWaitConfig>| {
        let service = Service::builder(ServeConfig {
            max_batch: 16, // far above what one sequential caller can fill
            max_wait,
            adaptive_wait: adaptive,
            ..ServeConfig::default()
        })
        .register(
            key.clone(),
            ServedModel::fixed(KdeEstimator::new(
                Device::new(Backend::CpuSeq),
                &sample,
                dims,
                KernelFn::Gaussian,
            )),
        )
        .build()
        .unwrap();
        let handle = service.handle();
        let started = std::time::Instant::now();
        let got: Vec<f64> = queries
            .iter()
            .map(|q| handle.estimate(&key, q).unwrap())
            .collect();
        let elapsed = started.elapsed();
        service.shutdown().unwrap();
        (got, elapsed)
    };

    let (fixed, fixed_elapsed) = run(None);
    let (adaptive, adaptive_elapsed) = run(Some(AdaptiveWaitConfig::default()));
    for (a, f) in adaptive.iter().zip(&fixed) {
        assert_eq!(a.to_bits(), f.to_bits(), "adaptive changed an estimate");
    }
    // Fixed policy stalls every 1-deep batch for the full window; the
    // adaptive one closes after a ~20 µs gap. Huge margin: require 2x.
    assert!(
        fixed_elapsed >= max_wait * (queries.len() as u32 - 1),
        "fixed policy should hold each starved batch for max_wait ({fixed_elapsed:?})"
    );
    assert!(
        adaptive_elapsed * 2 < fixed_elapsed,
        "adaptive ({adaptive_elapsed:?}) should be far faster than fixed ({fixed_elapsed:?})"
    );
}

/// Serve a workload, checkpoint, restart from disk: the restored service
/// must produce bit-identical estimates. Covers both the explicit
/// checkpoint and the implicit shutdown checkpoint.
#[test]
fn snapshot_round_trip_preserves_estimates_bitwise() {
    let dims = 2;
    let sample = sample(128, dims, 5);
    let queries = regions(32, dims, 6);
    let dir = temp_dir("roundtrip");
    let key = ModelKey::new("orders", &["price", "qty"]);
    let policy = CheckpointPolicy::in_dir(&dir);
    let build = |tuned_bandwidth: Option<Vec<f64>>| {
        let mut estimator = KdeEstimator::new(
            Device::new(Backend::CpuPar),
            &sample,
            dims,
            KernelFn::Gaussian,
        );
        if let Some(bw) = tuned_bandwidth {
            estimator.set_bandwidth(bw);
        }
        Service::builder(ServeConfig {
            checkpoint: Some(policy.clone()),
            ..ServeConfig::default()
        })
        .register(key.clone(), ServedModel::fixed(estimator))
        .build()
        .unwrap()
    };

    // First life: a hand-tuned bandwidth stands in for adaptive tuning.
    let tuned = vec![0.123_456_789, 0.987_654_321];
    let service = build(Some(tuned.clone()));
    let handle = service.handle();
    let first_life: Vec<f64> = queries
        .iter()
        .map(|q| handle.estimate(&key, q).unwrap())
        .collect();
    handle.checkpoint(&key).unwrap();
    service.shutdown().unwrap(); // also writes the shutdown checkpoint

    // Second life: registered with the UNtuned default bandwidth; restore
    // must bring back the tuned one from disk.
    let service = build(None);
    let handle = service.handle();
    let report = handle.report(&key).unwrap();
    assert_eq!(report.bandwidth, tuned, "restored bandwidth");
    for (q, expected) in queries.iter().zip(&first_life) {
        let restored = handle.estimate(&key, q).unwrap();
        assert_eq!(
            restored.to_bits(),
            expected.to_bits(),
            "restored estimate diverged"
        );
    }
    service.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted checkpoint must fail the build loudly (never a silent cold
/// start), and `ModelSnapshot::from_json` must reject malformed JSON.
#[test]
fn malformed_snapshots_are_rejected() {
    let dims = 2;
    let sample = sample(32, dims, 7);
    let dir = temp_dir("malformed");
    let key = ModelKey::new("orders", &["price", "qty"]);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        kdesel::serve::snapshot::snapshot_path(&dir, &key),
        "{\"sample\":[0.1,0.2],\"dims\":1,", // truncated mid-object
    )
    .unwrap();
    let result = Service::builder(ServeConfig {
        checkpoint: Some(CheckpointPolicy::in_dir(&dir)),
        ..ServeConfig::default()
    })
    .register(
        key.clone(),
        ServedModel::fixed(KdeEstimator::new(
            Device::new(Backend::CpuSeq),
            &sample,
            dims,
            KernelFn::Gaussian,
        )),
    )
    .build();
    match result {
        Err(ServeError::Snapshot(what)) => {
            assert!(what.contains("malformed"), "unexpected message {what:?}")
        }
        Err(other) => panic!("wrong error for malformed checkpoint: {other}"),
        Ok(_) => panic!("malformed checkpoint accepted"),
    }
    // The same classes of corruption via the JSON API directly.
    for bad in [
        "",
        "{",
        "{\"dims\":2}",
        "{\"sample\":[1.0],\"dims\":1,\"kernel\":\"gaussian\",\"bandwidth\":[1.0]}trailing",
        "{\"mystery\":1}",
    ] {
        assert!(ModelSnapshot::from_json(bad).is_err(), "accepted {bad:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Submitting through the service must error cleanly (not hang, not panic)
/// on unknown keys and dimension mismatches.
#[test]
fn request_validation_errors_are_clean() {
    let dims = 2;
    let sample = sample(32, dims, 8);
    let key = ModelKey::new("t", &["a", "b"]);
    let service = Service::builder(ServeConfig::default())
        .register(
            key.clone(),
            ServedModel::fixed(KdeEstimator::new(
                Device::new(Backend::CpuSeq),
                &sample,
                dims,
                KernelFn::Gaussian,
            )),
        )
        .build()
        .unwrap();
    let handle = service.handle();
    let unknown = ModelKey::new("nope", &["a"]);
    assert!(matches!(
        handle.estimate(&unknown, &Rect::cube(2, 0.0, 1.0)),
        Err(ServeError::UnknownModel(_))
    ));
    assert!(matches!(
        handle.estimate(&key, &Rect::cube(3, 0.0, 1.0)),
        Err(ServeError::DimensionMismatch {
            expected: 2,
            got: 3
        })
    ));
    assert_eq!(handle.dims(&key).unwrap(), 2);
    assert_eq!(handle.keys(), vec![key.clone()]);
    service.shutdown().unwrap();
    // After shutdown the handle reports Disconnected instead of hanging.
    assert!(matches!(
        handle.estimate(&key, &Rect::cube(2, 0.0, 1.0)),
        Err(ServeError::Disconnected(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized coalescing correctness: arbitrary sample, arbitrary
    /// query set, three backends, concurrent producers — always bitwise
    /// equal to the sequential loop.
    #[test]
    fn serve_matches_sequential_for_random_workloads(
        seed in 0u64..1000,
        points in 16usize..64,
        query_count in 4usize..24,
        max_batch in 1usize..9,
    ) {
        let dims = 2;
        let sample = sample(points, dims, seed);
        let queries = regions(query_count, dims, seed.wrapping_add(1));
        for backend in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let mut reference =
                KdeEstimator::new(Device::new(backend), &sample, dims, KernelFn::Gaussian);
            let expected: Vec<f64> = queries.iter().map(|q| reference.estimate(q)).collect();
            let key = ModelKey::new("t", &["a", "b"]);
            let service = Service::builder(ServeConfig {
                max_batch,
                max_wait: Duration::from_micros(50),
                ..ServeConfig::default()
            })
            .register(
                key.clone(),
                ServedModel::fixed(KdeEstimator::new(
                    Device::new(backend),
                    &sample,
                    dims,
                    KernelFn::Gaussian,
                )),
            )
            .build()
            .unwrap();
            let handle = service.handle();
            let got: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..3)
                    .map(|p| {
                        let handle = handle.clone();
                        let key = &key;
                        let queries = &queries;
                        scope.spawn(move || {
                            queries
                                .iter()
                                .enumerate()
                                .skip(p)
                                .step_by(3)
                                .map(|(i, q)| (i, handle.estimate(key, q).unwrap()))
                                .collect()
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().unwrap()).collect()
            });
            for (i, value) in got.into_iter().flatten() {
                prop_assert_eq!(
                    value.to_bits(),
                    expected[i].to_bits(),
                    "{:?} max_batch={}: query {} diverged",
                    backend, max_batch, i
                );
            }
            service.shutdown().unwrap();
        }
    }
}
