//! End-to-end integration tests asserting the paper's qualitative claims
//! at reduced scale. Each test mirrors one claim from the evaluation (§6);
//! the full-scale versions live in the `kdesel-bench` binaries.

use kdesel::data::{generate_workload, Dataset, WorkloadKind, WorkloadSpec};
use kdesel::engine::estimators::{AnyEstimator, BuildConfig, EstimatorKind};
use kdesel::engine::run_query;
use kdesel::storage::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared mini-protocol: build each estimator on the same sample/training
/// set and return its mean absolute error over the same test queries.
fn mean_errors(
    dataset: Dataset,
    dims: usize,
    rows: usize,
    workload: WorkloadKind,
    kinds: &[EstimatorKind],
    seed: u64,
) -> Vec<(EstimatorKind, f64)> {
    let table = dataset.generate_projected(dims, rows, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xaa);
    // Quick profile: reduced optimizer budgets and a 256-point sample keep
    // this suite fast on a single core; the qualitative claims are scale-
    // stable (the bench binaries run the paper-scale versions).
    let mut build = BuildConfig::paper_default(dims).with_fast_optimizers();
    build.budget = kdesel::MemoryBudget::from_bytes(256 * dims * build.precision.bytes());
    let sample = sampling::sample_rows(&table, build.sample_points(dims), &mut rng);
    let spec = WorkloadSpec::paper(workload);
    let train = generate_workload(&table, spec, 60, &mut rng);
    let test = generate_workload(&table, spec, 80, &mut rng);
    kinds
        .iter()
        .map(|&kind| {
            let mut est_rng = StdRng::seed_from_u64(seed ^ kind.name().len() as u64);
            let mut est = AnyEstimator::build(kind, &table, &sample, &train, &build, &mut est_rng);
            if kind == EstimatorKind::Adaptive {
                for q in &train {
                    run_query(&table, &mut est, &q.region, &mut est_rng);
                }
            }
            let err = test
                .iter()
                .map(|q| run_query(&table, &mut est, &q.region, &mut est_rng).absolute_error())
                .sum::<f64>()
                / test.len() as f64;
            (kind, err)
        })
        .collect()
}

fn error_of(errors: &[(EstimatorKind, f64)], kind: EstimatorKind) -> f64 {
    errors.iter().find(|(k, _)| *k == kind).expect("present").1
}

/// §6.2: "Batch performed better than Heuristic in over 90% of all
/// experiments" — on the clustered synthetic dataset the gap is large and
/// must hold per-run.
#[test]
fn batch_beats_heuristic_on_synthetic() {
    for seed in [1, 2, 3] {
        let errors = mean_errors(
            Dataset::Synthetic,
            3,
            8_000,
            WorkloadKind::DataTarget,
            &[EstimatorKind::Heuristic, EstimatorKind::Batch],
            seed,
        );
        let h = error_of(&errors, EstimatorKind::Heuristic);
        let b = error_of(&errors, EstimatorKind::Batch);
        assert!(b < h, "seed {seed}: batch {b} vs heuristic {h}");
    }
}

/// §6.2: the adaptive estimator "clearly outperform[s] Heuristic".
#[test]
fn adaptive_beats_heuristic_on_synthetic() {
    let mut wins = 0;
    for seed in [4, 5, 6] {
        let errors = mean_errors(
            Dataset::Synthetic,
            3,
            8_000,
            WorkloadKind::DataTarget,
            &[EstimatorKind::Heuristic, EstimatorKind::Adaptive],
            seed,
        );
        if error_of(&errors, EstimatorKind::Adaptive) < error_of(&errors, EstimatorKind::Heuristic)
        {
            wins += 1;
        }
    }
    assert!(wins >= 2, "adaptive won only {wins}/3 runs");
}

/// §6.2: Batch is "clearly superior" to STHoles on most cells (84% in the
/// paper). Checked on the strongly clustered synthetic data where the
/// margin is widest.
#[test]
fn batch_competitive_with_stholes() {
    let mut wins = 0;
    for seed in [7, 8, 9] {
        let errors = mean_errors(
            Dataset::Synthetic,
            3,
            8_000,
            WorkloadKind::DataTarget,
            &[EstimatorKind::SthHoles, EstimatorKind::Batch],
            seed,
        );
        if error_of(&errors, EstimatorKind::Batch) < error_of(&errors, EstimatorKind::SthHoles) {
            wins += 1;
        }
    }
    assert!(wins >= 2, "batch won only {wins}/3 runs against stholes");
}

/// All five estimators run on a real-ish dataset without panicking and
/// produce sane errors (the full Figure 4/5 grid at tiny scale).
#[test]
fn full_estimator_grid_runs_on_every_dataset() {
    for dataset in Dataset::ALL {
        let errors = mean_errors(
            dataset,
            3,
            3_000,
            WorkloadKind::DataVolume,
            &EstimatorKind::ALL,
            10,
        );
        for (kind, err) in &errors {
            assert!(
                (0.0..=1.0).contains(err),
                "{} on {}: error {err}",
                kind.name(),
                dataset.name()
            );
        }
    }
}

/// §2.3: "compared to methods that 'naïvely' evaluate the query on a
/// sample, KDE has been shown to consistently offer superior estimation
/// quality" — the optimized KDE must beat raw sample counting.
#[test]
fn optimized_kde_beats_naive_sampling() {
    let mut wins = 0;
    for seed in [13, 14, 15] {
        let errors = mean_errors(
            Dataset::Synthetic,
            3,
            8_000,
            WorkloadKind::DataVolume,
            &[EstimatorKind::Sampling, EstimatorKind::Batch],
            seed,
        );
        if error_of(&errors, EstimatorKind::Batch) < error_of(&errors, EstimatorKind::Sampling) {
            wins += 1;
        }
    }
    assert!(wins >= 2, "batch beat sampling only {wins}/3 runs");
}

/// §2.2: "this attribute-value independence assumption often leads to
/// significant estimation errors" — AVI must lose badly to every
/// correlation-aware estimator on correlated data. The protein simulacrum
/// has the strongest correlations of the evaluation datasets.
#[test]
fn avi_loses_on_correlated_data() {
    let errors = mean_errors(
        Dataset::Protein,
        3,
        8_000,
        WorkloadKind::DataTarget,
        &[
            EstimatorKind::Avi,
            EstimatorKind::Batch,
            EstimatorKind::SthHoles,
        ],
        16,
    );
    let avi = error_of(&errors, EstimatorKind::Avi);
    let batch = error_of(&errors, EstimatorKind::Batch);
    assert!(batch < avi, "batch {batch} must beat AVI {avi}");
}

/// Memory-budget fairness (§6.2): every estimator's model fits within the
/// paper's d·4 KiB budget at the paper's f32 accounting (our f64 storage
/// doubles the bytes; the *logical* model sizes are what the budget fixes).
#[test]
fn estimators_respect_logical_memory_budget() {
    let dims = 3;
    let table = Dataset::Synthetic.generate_projected(dims, 4_000, 11);
    let mut rng = StdRng::seed_from_u64(12);
    let build = BuildConfig::paper_default(dims).with_fast_optimizers();
    let sample = sampling::sample_rows(&table, build.sample_points(dims), &mut rng);
    let train = generate_workload(
        &table,
        WorkloadSpec::paper(WorkloadKind::DataVolume),
        30,
        &mut rng,
    );
    let logical_budget = build.budget.bytes();
    for kind in EstimatorKind::ALL {
        let est = AnyEstimator::build(kind, &table, &sample, &train, &build, &mut rng);
        // f64 storage uses 2× the logical f32 bytes; allow a small slack for
        // auxiliary state (bandwidth vector, karma scores).
        let max = 2 * logical_budget + 4096 * 8;
        assert!(
            est.memory_bytes() <= max,
            "{}: {} bytes exceeds 2×budget {max}",
            kind.name(),
            est.memory_bytes()
        );
    }
}
