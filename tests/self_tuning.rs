//! Integration tests for the self-tuning machinery (§4) across crates:
//! reservoir sampling + Karma maintenance + adaptive bandwidth, driven
//! through the engine against a live, mutating table.

use kdesel::engine::estimators::{AnyEstimator, BuildConfig, EstimatorKind};
use kdesel::engine::run_query;
use kdesel::storage::{sampling, Table};
use kdesel::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered_table(
    centers: &[[f64; 2]],
    per_cluster: usize,
    seed: u64,
) -> (Table, Vec<Vec<usize>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::new(2);
    let mut rows = Vec::new();
    for c in centers {
        let ids: Vec<usize> = (0..per_cluster)
            .map(|_| {
                table.insert(&[
                    c[0] + rng.gen_range(-2.0..2.0),
                    c[1] + rng.gen_range(-2.0..2.0),
                ])
            })
            .collect();
        rows.push(ids);
    }
    (table, rows)
}

/// Karma maintenance must purge sample points belonging to deleted data
/// once queries reveal the region is empty, restoring estimation quality.
#[test]
fn karma_recovers_after_bulk_delete() {
    let (mut table, cluster_rows) = clustered_table(&[[20.0, 20.0], [80.0, 80.0]], 800, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let build = BuildConfig::paper_default(2);
    let sample = sampling::sample_rows(&table, build.sample_points(2), &mut rng);
    let mut adaptive = AnyEstimator::build(
        EstimatorKind::Adaptive,
        &table,
        &sample,
        &[],
        &build,
        &mut rng,
    );

    // Delete the first cluster entirely.
    for &row in &cluster_rows[0] {
        table.delete(row);
    }
    let deleted_region = Rect::centered(&[20.0, 20.0], &[4.0, 4.0]);
    let first = run_query(&table, &mut adaptive, &deleted_region, &mut rng);
    assert!(
        first.estimate > 0.05,
        "stale sample should initially overestimate: {}",
        first.estimate
    );
    // Repeated queries on the emptied region trigger Karma replacement.
    let mut last = first.clone();
    for _ in 0..100 {
        last = run_query(&table, &mut adaptive, &deleted_region, &mut rng);
        if last.estimate < 0.01 {
            break;
        }
    }
    assert!(
        last.estimate < 0.01,
        "estimate should converge to ~0 after replacement, got {}",
        last.estimate
    );
}

/// The static heuristic model cannot recover in the same scenario — the
/// contrast that motivates §4.2.
#[test]
fn heuristic_stays_stale_after_bulk_delete() {
    let (mut table, cluster_rows) = clustered_table(&[[20.0, 20.0], [80.0, 80.0]], 800, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let build = BuildConfig::paper_default(2);
    let sample = sampling::sample_rows(&table, build.sample_points(2), &mut rng);
    let mut heuristic = AnyEstimator::build(
        EstimatorKind::Heuristic,
        &table,
        &sample,
        &[],
        &build,
        &mut rng,
    );
    for &row in &cluster_rows[0] {
        table.delete(row);
    }
    let deleted_region = Rect::centered(&[20.0, 20.0], &[4.0, 4.0]);
    let mut estimate = 0.0;
    for _ in 0..30 {
        estimate = run_query(&table, &mut heuristic, &deleted_region, &mut rng).estimate;
    }
    assert!(
        estimate > 0.05,
        "heuristic should stay stale (got {estimate})"
    );
}

/// Reservoir sampling keeps the adaptive model tracking insert-only growth
/// into a new region (§4.2's first scenario).
#[test]
fn reservoir_tracks_insert_only_growth() {
    let (mut table, _) = clustered_table(&[[30.0, 30.0]], 1000, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let build = BuildConfig::paper_default(2);
    let sample = sampling::sample_rows(&table, build.sample_points(2), &mut rng);
    let mut adaptive = AnyEstimator::build(
        EstimatorKind::Adaptive,
        &table,
        &sample,
        &[],
        &build,
        &mut rng,
    );

    // Insert a new, equally sized cluster far away.
    for _ in 0..1000 {
        let t = vec![
            70.0 + rng.gen_range(-2.0..2.0),
            70.0 + rng.gen_range(-2.0..2.0),
        ];
        table.insert(&t);
        adaptive.handle_insert(&t, &mut rng);
    }
    let new_region = Rect::centered(&[70.0, 70.0], &[4.0, 4.0]);
    let out = run_query(&table, &mut adaptive, &new_region, &mut rng);
    // True selectivity is ~0.5; a model with no maintenance would say ~0.
    assert!(
        out.estimate > 0.2,
        "reservoir should surface the new cluster: estimate {}",
        out.estimate
    );
}

/// STHoles tracks the same churn through feedback-driven refinement.
#[test]
fn stholes_adapts_through_feedback() {
    let (mut table, cluster_rows) = clustered_table(&[[20.0, 20.0], [80.0, 80.0]], 600, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let build = BuildConfig::paper_default(2);
    let sample = sampling::sample_rows(&table, 64, &mut rng);
    let mut sth = AnyEstimator::build(
        EstimatorKind::SthHoles,
        &table,
        &sample,
        &[],
        &build,
        &mut rng,
    );
    for &row in &cluster_rows[0] {
        table.delete(row);
    }
    let deleted_region = Rect::centered(&[20.0, 20.0], &[4.0, 4.0]);
    // First query may be wrong; refinement makes the repeat nearly exact.
    run_query(&table, &mut sth, &deleted_region, &mut rng);
    let second = run_query(&table, &mut sth, &deleted_region, &mut rng);
    assert!(
        second.absolute_error() < 1e-6,
        "stholes should be exact on a repeated query: {}",
        second.absolute_error()
    );
}
