//! Zero-allocation steady state: once the device buffer pool is warm,
//! a serve-style batch loop must perform no further large heap
//! allocations — every per-batch device buffer (staged bounds, strided
//! contribution matrix, retained contributions) is recycled through the
//! pool's size-class free lists.
//!
//! Pinned with a counting global allocator: allocations at or above
//! [`LARGE`] bytes are counted, small transients (result vectors of a
//! few hundred bytes, query bookkeeping) are ignored since they never
//! touch the device data plane. The device's own `pool_hits` /
//! `pool_misses` counters are cross-checked so a pass can't come from
//! the loop silently bypassing the pool.

use kdesel::device::{Backend, Device};
use kdesel::kde::{KdeEstimator, KernelFn};
use kdesel::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Allocations of at least this many bytes count as "large" — device
/// buffers at n=1024 are two orders of magnitude above it, per-batch
/// host transients stay well below.
const LARGE: usize = 4096;

static LARGE_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Forwards to the system allocator, counting large allocations.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= LARGE {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= LARGE {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_batches_reuse_pooled_buffers_without_allocating() {
    let (n, dims, batch) = (1024, 4, 16);
    let mut rng = StdRng::seed_from_u64(0x9001);
    let sample: Vec<f64> = (0..n * dims).map(|_| rng.gen_range(0.0..100.0)).collect();
    let mut est = KdeEstimator::new(
        Device::new(Backend::SimGpu),
        &sample,
        dims,
        KernelFn::Gaussian,
    );
    let queries: Vec<Rect> = (0..batch)
        .map(|_| {
            let spans: Vec<(f64, f64)> = (0..dims)
                .map(|_| {
                    let lo = rng.gen_range(0.0..60.0);
                    (lo, lo + rng.gen_range(5.0..40.0))
                })
                .collect();
            Rect::from_intervals(&spans)
        })
        .collect();

    // One serve-style round: a coalesced batch, a fused tuning sweep,
    // and a retained single estimate (the Karma input).
    let round = |est: &mut KdeEstimator| {
        let sels = est.estimate_batch(&queries);
        assert_eq!(sels.len(), batch);
        let _ = est.estimate_with_gradient(&queries[0]);
        let _ = est.estimate(&queries[1]);
    };

    // Warmup populates every size class the loop will ever need.
    for _ in 0..3 {
        round(&mut est);
    }

    let allocs_before = LARGE_ALLOCS.load(Ordering::Relaxed);
    let stats_before = est.device().stats();
    for _ in 0..32 {
        round(&mut est);
    }
    let allocs_after = LARGE_ALLOCS.load(Ordering::Relaxed);
    let stats_after = est.device().stats();

    assert_eq!(
        allocs_after,
        allocs_before,
        "steady-state batches performed {} large heap allocations",
        allocs_after - allocs_before
    );
    assert_eq!(
        stats_after.pool_misses, stats_before.pool_misses,
        "steady-state batches missed the buffer pool"
    );
    assert!(
        stats_after.pool_hits > stats_before.pool_hits,
        "steady-state batches never exercised the pool"
    );
}
