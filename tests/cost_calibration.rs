//! Cost-model calibration: end-to-end fit quality plus properties the
//! analytical model must keep for the calibrated parameters to mean
//! anything.
//!
//! The wall-clock test drives the full `kdesel-calibrate` pipeline
//! (microbenchmark sweep → log-space least-squares fit) against the
//! sequential CPU backend and pins the acceptance criterion: the fit
//! converges and the median relative residual between modeled and
//! measured time stays within 20%. The property tests pin the shape of
//! the model itself — monotonicity in work, and the existence of the
//! paper's CPU/GPU crossover (§6.4, Figure 7) for the published device
//! profiles.

use kdesel::device::calibrate::{calibrate, CalibrationConfig};
use kdesel::device::{Backend, CostModel, CostProfile};
use proptest::prelude::*;

/// Acceptance criterion: a quick CpuSeq calibration converges and models
/// its own measurements to within 20% median relative residual.
///
/// Wall-clock sensitive; `reps: 5` takes the per-point median so a
/// concurrently scheduled test stealing the core for one rep does not
/// fail the gate.
#[test]
fn cpu_seq_calibration_fits_within_twenty_percent() {
    let config = CalibrationConfig {
        reps: 5,
        quick: true,
    };
    let (measured, report) = calibrate(Backend::CpuSeq, &config);
    assert!(
        report.converged,
        "fit did not converge: {:?} after {} iterations (objective {})",
        report.outcome, report.iterations, report.objective
    );
    assert!(
        measured.median_residual <= 0.20,
        "median residual {:.1}% exceeds the 20% acceptance bound",
        measured.median_residual * 100.0
    );
    // The fitted parameters are physical: positive latencies, positive
    // finite rates.
    let p = &measured.profile;
    assert!(p.kernel_launch_latency > 0.0 && p.kernel_launch_latency.is_finite());
    assert!(p.transfer_latency > 0.0 && p.transfer_latency.is_finite());
    assert!(p.transfer_bandwidth > 0.0 && p.transfer_bandwidth.is_finite());
    assert!(p.compute_throughput > 0.0 && p.compute_throughput.is_finite());
    assert!(p.vector_width > 0.0 && p.vector_width.is_finite());
    // Every sweep point carries its own residual, and the JSON survives a
    // round trip bit-exactly (what `kdesel-calibrate --out` writes is what
    // `DeviceGroup` / the serve scheduler will read back).
    assert!(!measured.points.is_empty());
    for pt in &measured.points {
        assert!(pt.residual.is_finite() && pt.residual >= 0.0);
    }
    let reparsed = kdesel::device::MeasuredProfile::from_json(&measured.to_json())
        .expect("calibration JSON round-trips");
    assert_eq!(reparsed.profile, measured.profile);
}

/// Strategy: a physically plausible cost profile spanning embedded-CPU to
/// datacenter-GPU regimes.
fn profile_strategy() -> impl Strategy<Value = CostProfile> {
    (
        1e-7f64..1e-3, // kernel launch latency (s)
        1e-7f64..1e-3, // transfer latency (s)
        1e8f64..1e12,  // transfer bandwidth (B/s)
        1e8f64..1e13,  // compute throughput (FLOP/s)
        1.0f64..16.0,  // vector width (lanes)
    )
        .prop_map(|(kl, tl, bw, ct, vw)| CostProfile {
            kernel_launch_latency: kl,
            transfer_latency: tl,
            transfer_bandwidth: bw,
            compute_throughput: ct,
            vector_width: vw,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More items can never be modeled as cheaper, for any profile: the
    /// calibrated scheduler relies on this to pick batch windows.
    #[test]
    fn kernel_cost_is_monotone_in_items(
        profile in profile_strategy(),
        items in 1usize..1 << 22,
        extra in 1usize..1 << 22,
        flops in 1.0f64..1e4,
    ) {
        let m = CostModel::new(profile);
        prop_assert!(m.kernel(items + extra, flops) >= m.kernel(items, flops));
        prop_assert!(
            m.kernel_vectorized(items + extra, flops) >= m.kernel_vectorized(items, flops)
        );
    }

    /// More work per item can never be modeled as cheaper.
    #[test]
    fn kernel_cost_is_monotone_in_flops(
        profile in profile_strategy(),
        items in 1usize..1 << 22,
        flops in 1.0f64..1e4,
        extra_flops in 0.0f64..1e4,
    ) {
        let m = CostModel::new(profile);
        prop_assert!(m.kernel(items, flops + extra_flops) >= m.kernel(items, flops));
        prop_assert!(
            m.kernel_vectorized(items, flops + extra_flops)
                >= m.kernel_vectorized(items, flops)
        );
    }

    /// The vectorized kernel is never modeled slower than the scalar one
    /// (vector_width ≥ 1), and collapses to it exactly at width 1.
    #[test]
    fn vectorized_kernel_never_slower_than_scalar(
        profile in profile_strategy(),
        items in 1usize..1 << 22,
        flops in 1.0f64..1e4,
    ) {
        let m = CostModel::new(profile);
        prop_assert!(m.kernel_vectorized(items, flops) <= m.kernel(items, flops) + 1e-15);
        let unit = CostModel::new(CostProfile { vector_width: 1.0, ..profile });
        prop_assert!((unit.kernel_vectorized(items, flops) - unit.kernel(items, flops)).abs() < 1e-15);
    }

    /// For the paper's published profiles there is a CPU/GPU crossover in
    /// model size (Figure 7): any estimation mix with at least a few
    /// transfers per kernel starts CPU-cheaper (the GTX-460 pays 25 µs per
    /// PCIe hop vs the Xeon's 10 µs) and ends GPU-cheaper (4× the
    /// arithmetic throughput), and the cost difference is monotone in n —
    /// so the crossover point is unique.
    #[test]
    fn gtx460_xeon_crossover_exists_and_is_unique(
        transfers_per_kernel in 4usize..16,
        flops in 16.0f64..1024.0,
        bytes in 8usize..4096,
    ) {
        let gpu = CostModel::new(CostProfile::gtx460());
        let cpu = CostModel::new(CostProfile::xeon_e5620_opencl());
        // One estimation step: `transfers_per_kernel` small host↔device
        // hops (query bounds, result readback, ...) plus one kernel over
        // the n-point model.
        let mix = |m: &CostModel, n: usize| {
            m.transfer(bytes) * transfers_per_kernel as f64 + m.kernel(n, flops)
        };
        // Latency regime: the fixed per-op costs dominate and the CPU's
        // cheaper transfers win.
        prop_assert!(mix(&cpu, 1) < mix(&gpu, 1), "CPU must win tiny models");
        // Compute regime: 4x throughput wins.
        let huge = 1 << 26;
        prop_assert!(mix(&gpu, huge) < mix(&cpu, huge), "GPU must win huge models");
        // The difference cpu - gpu is strictly increasing in n (the
        // per-item compute gap 1/30e9 - 1/120e9 > 0 is the only n-term),
        // so exactly one sign change exists: binary-search it.
        let diff = |n: usize| mix(&cpu, n) - mix(&gpu, n);
        let (mut lo, mut hi) = (1usize, huge);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if diff(mid) < 0.0 { lo = mid } else { hi = mid }
        }
        // `lo` is the last CPU-cheaper size, `hi` the first GPU-cheaper
        // one; monotonicity of the difference makes this crossover unique.
        prop_assert!(diff(lo) < 0.0 && diff(hi) >= 0.0);
        for step in [2usize, 4, 16, 256] {
            if let Some(n) = hi.checked_mul(step) {
                prop_assert!(diff(n) > diff(hi), "difference must keep growing past the crossover");
            }
        }
    }
}
