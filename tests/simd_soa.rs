//! SoA/SIMD sweep pins: the columnar staging plus vectorized kernel
//! sweeps must be one formulation shared by every backend and every
//! estimate path.
//!
//! Two layers of guarantee, matching `crates/kde/src/sweep.rs`:
//!
//! * **Bitwise across backends and paths.** CpuSeq, CpuPar and SimGpu
//!   run the identical lane arithmetic (CpuPar only changes how row
//!   blocks are scheduled, SimGpu only adds modeled cost), so
//!   estimates, fused gradients, batched estimates and the retained
//!   per-point contributions must agree bit-for-bit.
//! * **Tolerance against the row-major reference.** The sweeps hoist
//!   bandwidth reciprocals out of the inner loop (division-free SIMD
//!   body), so they agree with the scalar AoS reference
//!   (`KdeEstimator::estimate_host`, which divides per point) to
//!   ~1 ulp per factor — pinned here at the estimator's own 1e-12
//!   band.

// The proptest inputs are 4-tuples, which trips clippy's type-complexity
// threshold inside the macro expansion.
#![allow(clippy::type_complexity)]

use kdesel::device::{Backend, Device};
use kdesel::kde::{KdeEstimator, KernelFn};
use kdesel::Rect;
use proptest::prelude::*;

const BACKENDS: [Backend; 3] = [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu];

/// Strategy: dimensionality, a flat row-major sample over [0, 100)^d
/// (row count not a multiple of the lane width more often than not, so
/// the scalar tails are exercised), a kernel, and a query box.
fn scenario_strategy() -> impl Strategy<Value = (usize, Vec<f64>, KernelFn, Rect)> {
    (1usize..5).prop_flat_map(|d| {
        (
            Just(d),
            proptest::collection::vec(0.0f64..100.0, 11 * d..140 * d).prop_map(move |mut v| {
                v.truncate(v.len() / d * d);
                v
            }),
            (0usize..2).prop_map(|k| {
                if k == 0 {
                    KernelFn::Gaussian
                } else {
                    KernelFn::Epanechnikov
                }
            }),
            proptest::collection::vec((-10.0f64..110.0, 0.0f64..70.0), d..d + 1).prop_map(
                |intervals| {
                    let spans: Vec<(f64, f64)> =
                        intervals.iter().map(|&(a, w)| (a, a + w)).collect();
                    Rect::from_intervals(&spans)
                },
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every backend produces bitwise-identical results on every SoA
    /// path: plain estimate, fused value+gradient, batched estimates,
    /// and the retained per-point contributions (the Karma input).
    #[test]
    fn soa_paths_are_bitwise_identical_across_backends(
        (dims, sample, kernel, query) in scenario_strategy(),
    ) {
        let grown = query.inflated(5.0);
        let queries = [query.clone(), grown];
        let mut reference: Option<(f64, Vec<f64>, Vec<f64>, Vec<f64>)> = None;
        for backend in BACKENDS {
            let mut est = KdeEstimator::new(Device::new(backend), &sample, dims, kernel);
            let value = est.estimate(&query);
            let contributions = est
                .device()
                .download(est.last_contributions().expect("estimate retains"));
            let (_, gradient) = est.estimate_with_gradient(&query);
            let batch = est.estimate_batch(&queries);
            prop_assert_eq!(batch.len(), queries.len());
            match &reference {
                None => reference = Some((value, gradient, batch, contributions)),
                Some((v0, g0, b0, c0)) => {
                    prop_assert_eq!(value.to_bits(), v0.to_bits(), "{backend:?} estimate");
                    for (a, b) in gradient.iter().zip(g0) {
                        prop_assert_eq!(a.to_bits(), b.to_bits(), "{backend:?} gradient");
                    }
                    for (a, b) in batch.iter().zip(b0) {
                        prop_assert_eq!(a.to_bits(), b.to_bits(), "{backend:?} batch");
                    }
                    prop_assert_eq!(contributions.len(), c0.len());
                    for (a, b) in contributions.iter().zip(c0) {
                        prop_assert_eq!(a.to_bits(), b.to_bits(), "{backend:?} contributions");
                    }
                }
            }
        }
    }

    /// The vectorized SoA estimate stays within 1e-12 of the scalar
    /// row-major reference, and the batch sweep reproduces the
    /// per-query sweep bitwise.
    #[test]
    fn soa_estimate_matches_aos_reference(
        (dims, sample, kernel, query) in scenario_strategy(),
    ) {
        let mut est = KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, dims, kernel);
        let soa = est.estimate(&query);
        let aos = KdeEstimator::estimate_host(&sample, dims, est.bandwidth(), kernel, &query);
        prop_assert!(
            (soa - aos).abs() <= 1e-12,
            "SoA {soa} vs AoS reference {aos}"
        );
        let batch = est.estimate_batch(std::slice::from_ref(&query));
        prop_assert_eq!(batch[0].to_bits(), soa.to_bits(), "batch vs per-query");
    }
}
