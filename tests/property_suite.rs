//! Cross-crate property tests: invariants that must hold through the whole
//! stack, exercised with randomized inputs.

use kdesel::device::{Backend, Device};
use kdesel::hist::{SthConfig, SthHoles};
use kdesel::kde::{KdeEstimator, KernelFn};
use kdesel::storage::Table;
use kdesel::Rect;
use proptest::prelude::*;

/// Strategy: a small random 2D table with values in [0, 100).
fn table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 10..120).prop_map(|points| {
        let mut data = Vec::with_capacity(points.len() * 2);
        for (x, y) in points {
            data.push(x);
            data.push(y);
        }
        Table::from_rows(2, &data)
    })
}

/// Strategy: a random query box over roughly the same domain.
fn rect_strategy() -> impl Strategy<Value = Rect> {
    (-10.0f64..110.0, -10.0f64..110.0, 0.0f64..60.0, 0.0f64..60.0)
        .prop_map(|(x, y, w, h)| Rect::from_intervals(&[(x, x + w), (y, y + h)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The KDE estimate is always a valid selectivity and is monotone under
    /// query growth, for any sample and any query.
    #[test]
    fn kde_estimates_are_valid_and_monotone(
        table in table_strategy(),
        q in rect_strategy(),
        grow in 0.0f64..20.0,
    ) {
        let sample: Vec<f64> = table.rows().flat_map(|(_, r)| r.to_vec()).collect();
        let mut est = KdeEstimator::new(
            Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let small = est.estimate(&q);
        let large = est.estimate(&q.inflated(grow));
        prop_assert!((0.0..=1.0).contains(&small));
        prop_assert!(large >= small - 1e-12);
    }

    /// True table selectivity is monotone under query growth and bounded by
    /// the estimate of the whole domain.
    #[test]
    fn table_selectivity_is_monotone(
        table in table_strategy(),
        q in rect_strategy(),
        grow in 0.0f64..20.0,
    ) {
        let small = table.selectivity(&q);
        let large = table.selectivity(&q.inflated(grow));
        prop_assert!(large >= small);
        prop_assert!((0.0..=1.0).contains(&small));
    }

    /// STHoles never breaks its structural invariants, whatever the query
    /// stream, and its estimates remain selectivities.
    #[test]
    fn stholes_invariants_hold_under_random_refinement(
        table in table_strategy(),
        queries in proptest::collection::vec(rect_strategy(), 1..15),
    ) {
        let mut hist = SthHoles::new(
            table.bounding_box().expect("non-empty"),
            table.row_count() as u64,
            SthConfig { max_buckets: 12 },
        );
        for q in &queries {
            let est = hist.estimate_selectivity(q);
            prop_assert!((0.0..=1.0).contains(&est));
            hist.refine(q, |r| table.count_in(r));
            prop_assert!(hist.bucket_count() <= 12);
            if let Err(e) = hist.check_invariants() {
                return Err(TestCaseError::fail(e));
            }
        }
    }

    /// A refined STHoles histogram answers the refining query (when
    /// repeated immediately) with low error.
    #[test]
    fn stholes_repeated_query_is_accurate(
        table in table_strategy(),
        q in rect_strategy(),
    ) {
        let mut hist = SthHoles::new(
            table.bounding_box().expect("non-empty"),
            table.row_count() as u64,
            SthConfig { max_buckets: 64 },
        );
        hist.refine(&q, |r| table.count_in(r));
        let est = hist.estimate_selectivity(&q);
        let truth = table.selectivity(&q);
        // One refinement drills exact counts; small residue can remain when
        // the candidate was shrunk around pre-existing children (none here,
        // fresh histogram), so this must be nearly exact.
        prop_assert!((est - truth).abs() < 1e-6, "est {} truth {}", est, truth);
    }

    /// The device layer is a pure executor: uploading and downloading any
    /// buffer roundtrips exactly on every backend.
    #[test]
    fn device_buffers_roundtrip(
        data in proptest::collection::vec(-1e9f64..1e9, 0..200),
    ) {
        for backend in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let d = Device::new(backend);
            let buf = d.upload(&data);
            prop_assert_eq!(d.download(&buf), data.clone());
        }
    }
}
