//! End-to-end tests for the estimator bake-off subsystem: router
//! determinism (a choice is a pure function of router state and modeled
//! costs), exact-scan bitwise equality with the scalar reference over
//! adversarial rectangles, and the hybrid estimator served behind
//! `kdesel-serve` with checkpoint round-trips and Prometheus counters.

use kdesel::device::{Backend, CostProfile, Device};
use kdesel::estimators::router::qerror;
use kdesel::estimators::{
    ExactScanEstimator, Family, HybridConfig, HybridEstimator, HybridRouter, RouterConfig,
};
use kdesel::serve::{CheckpointPolicy, ModelKey, ServeConfig, ServedModel, Service};
use kdesel::types::SelectivityEstimator;
use kdesel::{QueryFeedback, Rect};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn sample(points: usize, dims: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..points * dims)
        .map(|_| rng.gen_range(0.0..100.0))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdesel-bakeoff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A router decision is a pure function of (router state, modeled
    /// costs): two routers fed the same observation stream agree on
    /// every choice, and a third restored from a state snapshot picks
    /// up with the identical next choice.
    #[test]
    fn router_choice_is_a_pure_function_of_state_and_costs(
        observations in proptest::collection::vec(
            (0usize..3, 1.0f64..1e4, 0u8..2), 0..120),
        kde_cost in 1e-6f64..1e-2,
        learned_cost in 1e-6f64..1e-2,
        exact_cost in 1e-6f64..1e-2,
    ) {
        let costs = [kde_cost, learned_cost, exact_cost];
        let config = RouterConfig { window: 16, ..RouterConfig::default() };
        let mut a = HybridRouter::new(config.clone());
        let mut b = HybridRouter::new(config.clone());
        for &(family, error, choose) in &observations {
            let family = Family::ALL[family];
            a.record(family, error);
            b.record(family, error);
            if choose == 1 {
                prop_assert_eq!(a.choose(&costs), b.choose(&costs));
            }
        }
        // A restored replica continues exactly where the original is.
        let mut c = HybridRouter::new(config);
        c.restore(&a.state()).expect("state round-trip");
        prop_assert_eq!(c.choose(&costs), a.choose(&costs));
        prop_assert_eq!(c.state(), a.state());
    }

    /// The exact scan's fused device sweep is bitwise equal to the
    /// scalar host loop on every backend, including adversarial
    /// rectangles whose bounds sit exactly on data coordinates (the
    /// 0/1 containment indicator admits no rounding slack).
    #[test]
    fn exact_scan_matches_scalar_reference_bitwise(
        points in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0), 1..160),
        bounds in proptest::collection::vec((-10.0f64..110.0, -10.0f64..110.0), 3),
        snap_mask in 0u8..8,
        snap_index in 0usize..usize::MAX,
    ) {
        let dims = 3;
        let mut data = Vec::with_capacity(points.len() * dims);
        for (x, y, z) in &points {
            data.extend_from_slice(&[*x, *y, *z]);
        }
        let intervals: Vec<(f64, f64)> = (0..dims)
            .map(|d| {
                let (a, b) = bounds[d];
                let (mut lo, mut hi) = (a.min(b), a.max(b));
                if snap_mask & (1 << d) != 0 {
                    // Pin this dimension's bounds to an actual data
                    // coordinate: a zero-width boundary-equality box.
                    let row = snap_index % points.len();
                    lo = data[row * dims + d];
                    hi = lo;
                }
                (lo, hi)
            })
            .collect();
        let region = Rect::from_intervals(&intervals);
        let want = ExactScanEstimator::scalar_reference(&data, dims, &region);
        for backend in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let est = ExactScanEstimator::new(Device::new(backend), &data, dims);
            let got = est.estimate(&region);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "{:?}: {} vs {}", backend, got, want);
        }
    }

    /// The whole hybrid routes identically on every backend when the
    /// devices share one cost profile: estimates are bitwise equal and
    /// the decision streams match (the determinism the replay layer
    /// depends on).
    #[test]
    fn hybrid_routing_is_deterministic_across_backends(
        seed in 0u64..1_000,
        queries in proptest::collection::vec(
            (0.0f64..90.0, 0.0f64..90.0, 1.0f64..40.0), 1..12),
    ) {
        let dims = 2;
        let sample = sample(64, dims, seed);
        let config = HybridConfig::default();
        let profile = CostProfile::gtx460();
        let mut runs: Vec<(Vec<u64>, Vec<Family>)> = Vec::new();
        for backend in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let device = Device::with_profile(backend, profile);
            let mut hybrid = HybridEstimator::from_sample(device, &sample, dims, &config);
            let mut estimates = Vec::new();
            let mut families = Vec::new();
            for &(x, y, w) in &queries {
                let region = Rect::from_intervals(&[(x, x + w), (y, y + w)]);
                let (estimate, family) = hybrid.estimate_routed(&region);
                estimates.push(estimate.to_bits());
                families.push(family);
                hybrid.observe(&QueryFeedback {
                    region,
                    estimate,
                    actual: (estimate * 0.5).min(1.0),
                    cardinality: 0,
                });
            }
            runs.push((estimates, families));
        }
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }
}

/// Serve a hybrid model, checkpoint it, restart from disk: the restored
/// service resumes the router state and the tuned KDE member, answering
/// follow-up queries bitwise identically to an in-process hybrid that
/// went through the same snapshot/restore cycle.
#[test]
fn hybrid_snapshot_roundtrip_through_serve() {
    let dims = 2;
    let sample = sample(96, dims, 11);
    let config = HybridConfig::default();
    let dir = temp_dir("roundtrip");
    let key = ModelKey::new("orders", &["price", "qty"]);
    let policy = CheckpointPolicy::in_dir(&dir);
    let build_service = || {
        Service::builder(ServeConfig {
            checkpoint: Some(policy.clone()),
            ..ServeConfig::default()
        })
        .register(
            key.clone(),
            ServedModel::hybrid(HybridEstimator::from_sample(
                Device::new(Backend::CpuSeq),
                &sample,
                dims,
                &config,
            )),
        )
        .build()
        .unwrap()
    };
    let mut rng = StdRng::seed_from_u64(12);
    let phase1: Vec<Rect> = (0..24)
        .map(|_| {
            let lo: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..60.0)).collect();
            Rect::from_intervals(&lo.iter().map(|&l| (l, l + 25.0)).collect::<Vec<_>>())
        })
        .collect();
    let phase2: Vec<Rect> = (0..12)
        .map(|_| {
            let lo: Vec<f64> = (0..dims).map(|_| rng.gen_range(10.0..70.0)).collect();
            Rect::from_intervals(&lo.iter().map(|&l| (l, l + 15.0)).collect::<Vec<_>>())
        })
        .collect();
    // Feedback that skews against whoever answered, so the router's
    // windows (and hence its post-restore choices) carry real signal.
    let truth =
        |estimate: f64, i: usize| (estimate * if i.is_multiple_of(3) { 0.2 } else { 0.9 }).min(1.0);

    // First life: serve phase 1 with feedback, then shut down (which
    // writes the checkpoint).
    let service = build_service();
    let handle = service.handle();
    for (i, region) in phase1.iter().enumerate() {
        let estimate = handle.estimate(&key, region).unwrap();
        handle
            .feedback(
                &key,
                QueryFeedback {
                    region: region.clone(),
                    estimate,
                    actual: truth(estimate, i),
                    cardinality: 0,
                },
            )
            .unwrap();
    }
    handle.flush(&key).unwrap();
    service.shutdown().unwrap();

    // Control: the same history driven directly through a hybrid, then
    // through its own snapshot/restore — exactly what the second life's
    // restore performs.
    let mut control =
        HybridEstimator::from_sample(Device::new(Backend::CpuSeq), &sample, dims, &config);
    for (i, region) in phase1.iter().enumerate() {
        let (estimate, _) = control.estimate_routed(region);
        control.observe(&QueryFeedback {
            region: region.clone(),
            estimate,
            actual: truth(estimate, i),
            cardinality: 0,
        });
    }
    let snapshot = control.snapshot();
    control.restore_from_snapshot(&snapshot).unwrap();
    let expected: Vec<u64> = phase2
        .iter()
        .map(|r| control.estimate_routed(r).0.to_bits())
        .collect();

    // Second life: a freshly registered hybrid is restored from disk and
    // must continue exactly where the control does.
    let service = build_service();
    let handle = service.handle();
    for (region, want) in phase2.iter().zip(&expected) {
        let got = handle.estimate(&key, region).unwrap();
        assert_eq!(
            got.to_bits(),
            *want,
            "restored hybrid diverged: {got} vs {}",
            f64::from_bits(*want)
        );
    }
    service.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The router's decision counters surface through the Prometheus text
/// exposition, per family, and feed the serve handle's snapshot.
#[test]
fn router_decision_counters_reach_prometheus() {
    kdesel::telemetry::set_enabled(true);
    let dims = 2;
    let sample = sample(64, dims, 21);
    let key = ModelKey::new("t", &["a", "b"]);
    let service = Service::builder(ServeConfig::default())
        .register(
            key.clone(),
            ServedModel::hybrid(HybridEstimator::from_sample(
                Device::new(Backend::CpuSeq),
                &sample,
                dims,
                &HybridConfig::default(),
            )),
        )
        .build()
        .unwrap();
    let handle = service.handle();
    for i in 0..20 {
        let lo = f64::from(i) * 2.0;
        handle
            .estimate(
                &key,
                &Rect::from_intervals(&[(lo, lo + 20.0), (lo, lo + 20.0)]),
            )
            .unwrap();
    }
    let text = handle.prometheus();
    service.shutdown().unwrap();
    kdesel::telemetry::set_enabled(false);
    assert!(
        text.contains("router_decisions_"),
        "no router decision counters in exposition:\n{text}"
    );
    // Every decision lands in exactly one per-family counter; at least
    // one of them must have counted the 20 estimates above.
    let total: u64 = ["kde", "learned", "exact"]
        .iter()
        .filter_map(|family| {
            text.lines()
                .find(|l| l.starts_with(&format!("kdesel_router_decisions_{family}")))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse::<u64>().ok())
        })
        .sum();
    assert!(total >= 20, "decision counters sum {total} < 20");
}

/// Smoothed q-error sanity on the public helper: symmetric, ≥ 1, and
/// exactly 1 on perfect estimates (the gate metric of `bench_bakeoff`).
#[test]
fn qerror_is_symmetric_and_grounded() {
    assert_eq!(qerror(0.25, 0.25), 1.0);
    let over = qerror(0.5, 0.05);
    let under = qerror(0.05, 0.5);
    assert!((over - under).abs() < 1e-12);
    assert!(over > 1.0);
    assert!(qerror(0.0, 0.0) == 1.0);
}
