//! Join selectivity estimation over a PK-FK join (the paper's §8 outlook).
//!
//! Builds a KDE model over a sample of the join result `orders ⋈ customers`
//! and estimates a predicate spanning both tables. The textbook
//! independence assumption multiplies per-table selectivities and misses
//! the cross-table correlation completely; the joint model captures it.
//!
//! Run with `cargo run --release --example join_estimation`.

use kdesel::device::{Backend, Device};
use kdesel::engine::join::{join_truth, JoinKde};
use kdesel::kde::KernelFn;
use kdesel::storage::Table;
use kdesel::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // customers(customer_id, tier): 300 customers in 4 loyalty tiers.
    let mut customers = Table::new(2);
    for c in 0..300 {
        customers.insert(&[c as f64, (c % 4) as f64]);
    }
    // orders(order_id, customer_fk, amount): amount scales with the
    // customer's tier — a strong cross-table correlation.
    let mut orders = Table::new(3);
    for o in 0..10_000 {
        let c = rng.gen_range(0..300);
        let tier = (c % 4) as f64;
        let amount = 120.0 * tier + rng.gen_range(0.0..60.0);
        orders.insert(&[o as f64, c as f64, amount]);
    }

    // KDE over the join result (orders ⋈ customers on customer id).
    let mut joint = JoinKde::new(
        Device::new(Backend::CpuPar),
        &orders,
        1, // fk column in orders
        &customers,
        0, // pk column in customers
        1024,
        KernelFn::Gaussian,
        &mut rng,
    );

    // Predicate over the join: premium customers (tier ≥ 2.5) with large
    // orders (amount ≥ 300) — nearly the same rows, so the joint
    // selectivity is ≈ P(tier=3) = 25%, not 25% × 25%.
    let unb = (f64::NEG_INFINITY, f64::INFINITY);
    let joined_pred = Rect::from_intervals(&[unb, unb, (300.0, 1e6), unb, (2.5, 3.5)]);
    let amount_pred = Rect::from_intervals(&[unb, unb, (300.0, 1e6), unb, unb]);
    let tier_pred = Rect::from_intervals(&[unb, unb, unb, unb, (2.5, 3.5)]);

    let (join_size, matching) = join_truth(&orders, 1, &customers, 0, &joined_pred);
    let truth = matching as f64 / join_size as f64;
    let kde = joint.estimate(&joined_pred);
    let independence = joint.estimate(&amount_pred) * joint.estimate(&tier_pred);

    println!("join size: {join_size} tuples");
    println!("predicate: amount ≥ 300 AND customer tier = 3\n");
    println!("  true selectivity:            {truth:.4}");
    println!(
        "  joint KDE estimate:          {kde:.4}   (|error| {:.4})",
        (kde - truth).abs()
    );
    println!(
        "  independence assumption:     {independence:.4}   (|error| {:.4})",
        (independence - truth).abs()
    );
    assert!((kde - truth).abs() < (independence - truth).abs());
    println!("\nThe joint model captures the cross-table correlation the");
    println!("independence assumption destroys — the paper's §8 motivation.");
}
