//! The paper's Figures 1 & 2 as an ASCII demo: how the bandwidth controls
//! over- vs. under-smoothing of a KDE model.
//!
//! Renders the estimated density of a clustered 2D dataset on a character
//! grid for three bandwidths: too small (spiky, overfit), Scott's rule,
//! and too large (washed out, underfit), and prints the resulting
//! selectivity errors for a probe query.
//!
//! Run with `cargo run --release --example bandwidth_effects`.

use kdesel::device::{Backend, Device};
use kdesel::kde::{scott_bandwidth, KdeEstimator, KernelFn};
use kdesel::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 28;
const SHADES: &[u8] = b" .:-=+*#%@";

fn render(sample: &[f64], bandwidth: &[f64], label: &str) {
    println!(
        "\n{label}  (h = [{:.2}, {:.2}])",
        bandwidth[0], bandwidth[1]
    );
    let cell = 100.0 / GRID as f64;
    let mut rows = Vec::new();
    let mut max_p = f64::MIN_POSITIVE;
    let mut grid = vec![0.0; GRID * GRID];
    for gy in 0..GRID {
        for gx in 0..GRID {
            let q = Rect::from_intervals(&[
                (gx as f64 * cell, (gx + 1) as f64 * cell),
                (gy as f64 * cell, (gy + 1) as f64 * cell),
            ]);
            let p = KdeEstimator::estimate_host(sample, 2, bandwidth, KernelFn::Gaussian, &q);
            grid[gy * GRID + gx] = p;
            max_p = max_p.max(p);
        }
    }
    for gy in (0..GRID).rev() {
        let mut line = String::new();
        for gx in 0..GRID {
            let p = grid[gy * GRID + gx] / max_p;
            let idx = ((p * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            line.push(SHADES[idx] as char);
            line.push(SHADES[idx] as char);
        }
        rows.push(line);
    }
    for r in rows {
        println!("  {r}");
    }
}

fn main() {
    // Three clusters, as in the paper's Figure 1(a).
    let mut rng = StdRng::seed_from_u64(11);
    let centers = [(25.0, 30.0), (65.0, 70.0), (75.0, 20.0)];
    let mut sample = Vec::new();
    for _ in 0..600 {
        let (cx, cy) = centers[rng.gen_range(0..centers.len())];
        sample.push(cx + rng.gen_range(-6.0..6.0));
        sample.push(cy + rng.gen_range(-6.0..6.0));
    }

    let scott = scott_bandwidth(&sample, 2);
    let small: Vec<f64> = scott.iter().map(|h| h / 12.0).collect();
    let large: Vec<f64> = scott.iter().map(|h| h * 12.0).collect();

    render(
        &sample,
        &small,
        "bandwidth too small — overfits the sample (Fig. 2a)",
    );
    render(&sample, &scott, "Scott's rule — balanced (Fig. 1d)");
    render(
        &sample,
        &large,
        "bandwidth too large — loses local structure (Fig. 2b)",
    );

    // Quantify: selectivity of a box centered on one cluster.
    let probe = Rect::from_intervals(&[(19.0, 31.0), (24.0, 36.0)]);
    let truth = sample.chunks_exact(2).filter(|r| probe.contains(r)).count() as f64
        / (sample.len() / 2) as f64;
    println!("\nprobe query on the first cluster (true selectivity {truth:.4}):");
    for (label, bw) in [("small", &small), ("scott", &scott), ("large", &large)] {
        let mut est =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        est.set_bandwidth(bw.clone());
        let p = est.estimate(&probe);
        println!(
            "  {label:>5}: estimate {p:.4}  |error| {:.4}",
            (p - truth).abs()
        );
    }
}
