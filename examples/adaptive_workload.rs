//! Self-tuning under database churn (the paper's §6.5 scenario, condensed).
//!
//! An evolving table: clusters of tuples appear and old ones are archived.
//! A static (heuristic) KDE model goes stale; the adaptive model follows
//! the changes through reservoir sampling, Karma-based sample maintenance,
//! and online bandwidth learning.
//!
//! Run with `cargo run --release --example adaptive_workload`.

use kdesel::engine::estimators::{AnyEstimator, BuildConfig, EstimatorKind};
use kdesel::engine::run_query;
use kdesel::storage::{sampling, Table};
use kdesel::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cluster_tuple(center: &[f64; 2], rng: &mut StdRng) -> Vec<f64> {
    vec![
        center[0] + rng.gen_range(-3.0..3.0),
        center[1] + rng.gen_range(-3.0..3.0),
    ]
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut table = Table::new(2);
    let mut clusters: Vec<([f64; 2], Vec<usize>)> = Vec::new();

    // Initial load: three clusters.
    for _ in 0..3 {
        let center = [rng.gen_range(10.0..90.0), rng.gen_range(10.0..90.0)];
        let rows = (0..600)
            .map(|_| table.insert(&cluster_tuple(&center, &mut rng)))
            .collect();
        clusters.push((center, rows));
    }

    let build = BuildConfig::paper_default(2);
    let sample = sampling::sample_rows(&table, build.sample_points(2), &mut rng);
    let mut heuristic = AnyEstimator::build(
        EstimatorKind::Heuristic,
        &table,
        &sample,
        &[],
        &build,
        &mut rng,
    );
    let mut adaptive = AnyEstimator::build(
        EstimatorKind::Adaptive,
        &table,
        &sample,
        &[],
        &build,
        &mut rng,
    );

    println!("cycle  tuples  heuristic_err  adaptive_err");
    for cycle in 0..8 {
        // A new cluster appears...
        let center = [rng.gen_range(10.0..90.0), rng.gen_range(10.0..90.0)];
        let rows: Vec<usize> = (0..600)
            .map(|_| {
                let t = cluster_tuple(&center, &mut rng);
                let id = table.insert(&t);
                heuristic.handle_insert(&t, &mut rng);
                adaptive.handle_insert(&t, &mut rng);
                id
            })
            .collect();
        clusters.push((center, rows));
        // ...and the oldest one is archived.
        let (_, old_rows) = clusters.remove(0);
        for row in old_rows {
            table.delete(row);
        }

        // Users query recent clusters.
        let mut err_h = 0.0;
        let mut err_a = 0.0;
        let queries = 40;
        for _ in 0..queries {
            let pick = clusters.len() - 1 - rng.gen_range(0..2.min(clusters.len()));
            let (c, _) = &clusters[pick];
            let center = [
                c[0] + rng.gen_range(-2.0..2.0),
                c[1] + rng.gen_range(-2.0..2.0),
            ];
            let region = Rect::centered(&center, &[4.0, 4.0]);
            err_h += run_query(&table, &mut heuristic, &region, &mut rng).absolute_error();
            err_a += run_query(&table, &mut adaptive, &region, &mut rng).absolute_error();
        }
        println!(
            "{cycle:>5}  {:>6}  {:>13.5}  {:>12.5}",
            table.row_count(),
            err_h / queries as f64,
            err_a / queries as f64
        );
    }
    println!("\nThe adaptive estimator keeps its error low as the data drifts;");
    println!("the static heuristic model degrades (its sample no longer exists).");
}
