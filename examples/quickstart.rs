//! Quickstart: build a KDE selectivity estimator over a table and compare
//! the heuristic (Scott's rule) against the workload-optimized bandwidth.
//!
//! Run with `cargo run --release --example quickstart`.

use kdesel::data::{generate_workload, Dataset, WorkloadKind, WorkloadSpec};
use kdesel::device::{Backend, Device};
use kdesel::kde::{BatchConfig, BatchKde, HeuristicKde, KernelFn};
use kdesel::storage::sampling;
use kdesel::SelectivityEstimator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A "database": the paper's synthetic clustered dataset, 3D, 50k rows.
    let table = Dataset::Synthetic.generate_projected(3, 50_000, 7);
    println!(
        "table: {} rows × {} attributes",
        table.row_count(),
        table.dims()
    );

    // 2. ANALYZE: draw the model's data sample (1024 points, the paper's
    //    d·4 KiB budget at f32 accounting).
    let sample = sampling::sample_rows(&table, 1024, &mut rng);

    // 3. A training workload with known true selectivities (query feedback).
    let train = generate_workload(
        &table,
        WorkloadSpec::paper(WorkloadKind::DataTarget),
        100,
        &mut rng,
    );

    // 4. Two estimators over the *same* sample.
    let mut heuristic =
        HeuristicKde::new(Device::new(Backend::CpuPar), &sample, 3, KernelFn::Gaussian);
    let mut batch = BatchKde::new(
        Device::new(Backend::CpuPar),
        &sample,
        3,
        KernelFn::Gaussian,
        &train,
        &BatchConfig::default(),
        &mut rng,
    );
    println!("scott bandwidth:     {:?}", heuristic.model().bandwidth());
    println!(
        "optimized bandwidth: {:?}  (training loss {:.2e})",
        batch.model().bandwidth(),
        batch.training_loss()
    );

    // 5. Compare on fresh test queries.
    let test = generate_workload(
        &table,
        WorkloadSpec::paper(WorkloadKind::DataTarget),
        200,
        &mut rng,
    );
    let mut err_h = 0.0;
    let mut err_b = 0.0;
    for q in &test {
        err_h += (heuristic.estimate(&q.region) - q.selectivity).abs();
        err_b += (batch.estimate(&q.region) - q.selectivity).abs();
    }
    err_h /= test.len() as f64;
    err_b /= test.len() as f64;
    println!("\nmean |error| over {} test queries:", test.len());
    println!("  kde-heuristic: {err_h:.5}");
    println!(
        "  kde-batch:     {err_b:.5}  ({:.1}x better)",
        err_h / err_b
    );

    assert!(err_b < err_h, "optimization should beat the heuristic");
}
