//! Device backends: identical results, different cost structure.
//!
//! Runs the same estimator on the sequential CPU, the multicore CPU, and
//! the simulated GPU, demonstrating (a) bit-identical estimates across
//! backends — the paper's quality results are hardware-independent — and
//! (b) the modeled cost structure behind Figure 7: the GPU has a higher
//! latency floor but ~4× the throughput.
//!
//! Run with `cargo run --release --example device_comparison`.

use kdesel::device::{Backend, Device};
use kdesel::kde::{KdeEstimator, KernelFn};
use kdesel::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let dims = 8;
    let mut rng = StdRng::seed_from_u64(5);
    let query = Rect::cube(dims, 25.0, 75.0);

    println!("model_size  backend  estimate            modeled_us/query  transfers");
    for log2 in [10u32, 14, 18] {
        let n = 1usize << log2;
        let sample: Vec<f64> = (0..n * dims).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut reference: Option<f64> = None;
        for backend in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let mut est =
                KdeEstimator::new(Device::new(backend), &sample, dims, KernelFn::Gaussian);
            est.device().reset_timing(); // exclude the one-time sample upload
            let queries = 20;
            let mut value = 0.0;
            for _ in 0..queries {
                value = est.estimate(&query);
            }
            match reference {
                None => reference = Some(value),
                Some(r) => assert_eq!(value, r, "backends must agree bitwise"),
            }
            let stats = est.device().stats();
            println!(
                "{n:>10}  {:<7}  {value:.15}  {:>16.2}  {} up / {} down",
                backend.name(),
                est.device().modeled_seconds() / queries as f64 * 1e6,
                stats.uploads,
                stats.downloads,
            );
        }
        println!();
    }
    println!("All backends return bit-identical estimates (pairwise-summed reductions).");
    println!("The simulated GPU's per-query cost is latency-bound for small models and");
    println!("~4x cheaper than the modeled CPU for large ones — the shape of Figure 7.");
}
