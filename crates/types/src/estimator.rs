//! The common estimator interface implemented by every technique compared in
//! the paper's evaluation (§6.1.1): the heuristic/SCV/batch/adaptive KDE
//! variants and the STHoles histogram.

use crate::feedback::QueryFeedback;
use crate::rect::Rect;

/// A multidimensional range-selectivity estimator.
///
/// The lifecycle mirrors the paper's query pipeline (Figure 3):
///
/// 1. the optimizer calls [`estimate`](Self::estimate) before execution,
/// 2. the executor runs the query and produces the true selectivity,
/// 3. the engine calls [`observe`](Self::observe) with the resulting
///    [`QueryFeedback`], which self-tuning estimators use to refine their
///    model (STHoles drills holes, the adaptive KDE updates its bandwidth
///    and Karma scores). Static estimators ignore it.
pub trait SelectivityEstimator {
    /// Estimates the fraction of tuples falling into `region`, in `[0, 1]`.
    fn estimate(&mut self, region: &Rect) -> f64;

    /// Delivers post-execution feedback for a query previously estimated.
    ///
    /// Implementations must tolerate feedback for queries they never saw
    /// (e.g. after a model rebuild).
    fn observe(&mut self, feedback: &QueryFeedback);

    /// Approximate model size in bytes, used to enforce the evaluation's
    /// `d · 4 KiB` fairness budget (§6.2).
    fn memory_bytes(&self) -> usize;

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> &str;
}

/// Blanket impl so `Box<dyn SelectivityEstimator>` composes transparently.
impl<T: SelectivityEstimator + ?Sized> SelectivityEstimator for Box<T> {
    fn estimate(&mut self, region: &Rect) -> f64 {
        (**self).estimate(region)
    }
    fn observe(&mut self, feedback: &QueryFeedback) {
        (**self).observe(feedback)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Trivial estimator that always predicts a constant selectivity.
///
/// Useful as a control in tests and as the "no statistics" fallback a real
/// optimizer would use (Postgres defaults to a fixed fraction for range
/// predicates without statistics).
#[derive(Debug, Clone)]
pub struct ConstantEstimator {
    value: f64,
    name: String,
}

impl ConstantEstimator {
    /// Creates a constant estimator clamped to `[0, 1]`.
    pub fn new(value: f64) -> Self {
        Self {
            value: value.clamp(0.0, 1.0),
            name: format!("constant({value})"),
        }
    }
}

impl SelectivityEstimator for ConstantEstimator {
    fn estimate(&mut self, _region: &Rect) -> f64 {
        self.value
    }
    fn observe(&mut self, _feedback: &QueryFeedback) {}
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<f64>()
    }
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_estimator_is_constant_and_clamped() {
        let mut e = ConstantEstimator::new(2.0);
        assert_eq!(e.estimate(&Rect::cube(3, 0.0, 1.0)), 1.0);
        let mut e = ConstantEstimator::new(0.005);
        assert_eq!(e.estimate(&Rect::cube(1, -5.0, 5.0)), 0.005);
    }

    #[test]
    fn boxed_estimator_dispatches() {
        let mut e: Box<dyn SelectivityEstimator> = Box::new(ConstantEstimator::new(0.5));
        assert_eq!(e.estimate(&Rect::cube(2, 0.0, 1.0)), 0.5);
        assert_eq!(e.memory_bytes(), 8);
        e.observe(&QueryFeedback::from_counts(
            Rect::cube(2, 0.0, 1.0),
            0.5,
            1,
            2,
        ));
        assert!(e.name().starts_with("constant"));
    }
}
