//! Query feedback records.
//!
//! After the database executes a range query, the estimator receives the
//! *true* selectivity alongside its own prediction. This triple drives both
//! self-tuning mechanisms of the paper: adaptive bandwidth learning (§4.1)
//! and Karma-based sample maintenance (§4.2).

use crate::rect::Rect;

/// Feedback for one executed range query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFeedback {
    /// The queried region `Ω`.
    pub region: Rect,
    /// The selectivity the estimator predicted before execution, in `[0, 1]`.
    pub estimate: f64,
    /// The true selectivity `|σ_{x∈Ω}(R)| / |R|` observed after execution.
    pub actual: f64,
    /// Absolute number of qualifying tuples (redundant with `actual` given
    /// `|R|`, kept because STHoles consumes raw counts).
    pub cardinality: u64,
}

impl QueryFeedback {
    /// Builds a feedback record, deriving `actual` from counts.
    ///
    /// # Panics
    /// Panics if `table_rows == 0` or `cardinality > table_rows`.
    pub fn from_counts(region: Rect, estimate: f64, cardinality: u64, table_rows: u64) -> Self {
        assert!(table_rows > 0, "feedback for an empty relation");
        assert!(
            cardinality <= table_rows,
            "cardinality {cardinality} exceeds relation size {table_rows}"
        );
        Self {
            region,
            estimate,
            actual: cardinality as f64 / table_rows as f64,
            cardinality,
        }
    }

    /// Signed estimation error `p̂(Ω) − p(Ω)`.
    #[inline]
    pub fn signed_error(&self) -> f64 {
        self.estimate - self.actual
    }

    /// Absolute selectivity estimation error — the paper's headline quality
    /// metric (Figures 4, 5, 6, 8).
    #[inline]
    pub fn absolute_error(&self) -> f64 {
        self.signed_error().abs()
    }
}

/// A labelled training/test query: region plus true selectivity. Used by the
/// batch bandwidth optimizer (§3.4) where the estimate is recomputed during
/// optimization and only the ground truth matters.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledQuery {
    /// The queried region `Ω`.
    pub region: Rect,
    /// True selectivity of the region.
    pub selectivity: f64,
}

impl LabelledQuery {
    /// Creates a labelled query.
    ///
    /// # Panics
    /// Panics if selectivity is outside `[0, 1]`.
    pub fn new(region: Rect, selectivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&selectivity),
            "selectivity {selectivity} out of [0,1]"
        );
        Self {
            region,
            selectivity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_derives_selectivity() {
        let fb = QueryFeedback::from_counts(Rect::cube(2, 0.0, 1.0), 0.3, 25, 100);
        assert_eq!(fb.actual, 0.25);
        assert!((fb.signed_error() - 0.05).abs() < 1e-15);
        assert!((fb.absolute_error() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn absolute_error_is_symmetric() {
        let a = QueryFeedback::from_counts(Rect::cube(1, 0.0, 1.0), 0.2, 30, 100);
        let b = QueryFeedback::from_counts(Rect::cube(1, 0.0, 1.0), 0.4, 30, 100);
        assert!((a.absolute_error() - b.absolute_error()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "empty relation")]
    fn zero_rows_panics() {
        QueryFeedback::from_counts(Rect::cube(1, 0.0, 1.0), 0.0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds relation size")]
    fn cardinality_above_rows_panics() {
        QueryFeedback::from_counts(Rect::cube(1, 0.0, 1.0), 0.0, 5, 4);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn labelled_query_validates() {
        LabelledQuery::new(Rect::cube(1, 0.0, 1.0), 1.5);
    }
}
