//! Persistable hybrid-router state.
//!
//! The hybrid cost/error router (crate `kdesel-estimators`) picks an
//! estimator family per query from the calibrated cost model plus a
//! rolling per-family q-error window. This type captures everything the
//! router needs to resume after a restart: the family names, their
//! q-error windows (oldest first), the per-family decision counters,
//! and the family that answered most recently. It lives in
//! `kdesel-types` so the KDE persistence layer can embed it in a model
//! snapshot without depending on the estimator crate.

/// Snapshot of a hybrid router's adaptive state.
///
/// Invariants (checked by [`validate`](RouterState::validate)):
/// `families`, `windows`, and `decisions` are index-aligned and equal
/// length; window entries are finite q-errors `>= 1`; `last`, when
/// present, names one of the families.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterState {
    /// Family names in router order (e.g. `["kde", "learned", "exact"]`).
    pub families: Vec<String>,
    /// Rolling q-error window per family, oldest observation first.
    pub windows: Vec<Vec<f64>>,
    /// Queries routed to each family since construction.
    pub decisions: Vec<u64>,
    /// Family that answered the most recent routed query, if any.
    pub last: Option<String>,
}

impl RouterState {
    /// Checks structural consistency; returns a human-readable reason
    /// on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.families.is_empty() {
            return Err("router state has no families".into());
        }
        if self.windows.len() != self.families.len() {
            return Err(format!(
                "router state has {} families but {} windows",
                self.families.len(),
                self.windows.len()
            ));
        }
        if self.decisions.len() != self.families.len() {
            return Err(format!(
                "router state has {} families but {} decision counters",
                self.families.len(),
                self.decisions.len()
            ));
        }
        for (family, window) in self.families.iter().zip(&self.windows) {
            for &q in window {
                if !q.is_finite() || q < 1.0 {
                    return Err(format!(
                        "router window for {family:?} holds invalid q-error {q}"
                    ));
                }
            }
        }
        if let Some(last) = &self.last {
            if !self.families.iter().any(|f| f == last) {
                return Err(format!("router last family {last:?} is not a known family"));
            }
        }
        Ok(())
    }

    /// Serializes the state as one JSON object. Floats use Rust's
    /// round-trip (`{:?}`) formatting, so [`from_json`](Self::from_json)
    /// recovers them bit-exactly. Family names must be plain
    /// identifiers (they are `Family::name` values).
    pub fn to_json(&self) -> String {
        let ident = |s: &str| {
            assert!(
                !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "family name {s:?} is not a plain identifier"
            );
        };
        let mut out = String::from("{\"families\":[");
        for (i, f) in self.families.iter().enumerate() {
            ident(f);
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{f}\""));
        }
        out.push_str("],\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, q) in w.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{q:?}"));
            }
            out.push(']');
        }
        out.push_str("],\"decisions\":[");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_string());
        }
        out.push_str("],\"last\":");
        match &self.last {
            Some(f) => {
                ident(f);
                out.push_str(&format!("\"{f}\""));
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Parses a state serialized by [`to_json`](Self::to_json) and
    /// validates it. Keys may appear in any order; unknown keys are an
    /// error.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let (state, end) = Self::parse_embedded(json.as_bytes(), 0)?;
        if !json.as_bytes()[end..]
            .iter()
            .all(|b| b.is_ascii_whitespace())
        {
            return Err("trailing data after router state object".to_string());
        }
        state.validate()?;
        Ok(state)
    }

    /// Parses a router-state object embedded in a larger document,
    /// starting at byte `pos`. Returns the validated state and the
    /// position just past its closing brace, so an enclosing parser
    /// (the model snapshot's) can resume where the object ends.
    pub fn parse_embedded(bytes: &[u8], pos: usize) -> Result<(Self, usize), String> {
        let mut p = json::Parser::new(bytes, pos);
        let state = p.router_state()?;
        state.validate()?;
        Ok((state, p.pos()))
    }
}

/// Minimal parser for the router state's own JSON dialect (escape-free
/// strings, non-negative integers, floats, one level of array nesting).
mod json {
    use super::RouterState;

    pub struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        pub fn new(bytes: &'a [u8], pos: usize) -> Self {
            Self { bytes, pos }
        }

        pub fn pos(&self) -> usize {
            self.pos
        }

        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn next(&mut self) -> Result<u8, String> {
            let b = *self.bytes.get(self.pos).ok_or("unexpected end of input")?;
            self.pos += 1;
            Ok(b)
        }

        fn expect(&mut self, want: u8) -> Result<(), String> {
            let got = self.next()?;
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "expected {:?}, found {:?}",
                    want as char, got as char
                ))
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.pos;
            loop {
                match self.next()? {
                    b'"' => break,
                    b'\\' => return Err("escapes are not used in router states".to_string()),
                    _ => {}
                }
            }
            String::from_utf8(self.bytes[start..self.pos - 1].to_vec())
                .map_err(|_| "invalid UTF-8 in string".to_string())
        }

        fn number(&mut self) -> Result<f64, String> {
            let start = self.pos;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| "invalid number".to_string())
        }

        /// `[a, b, ...]` with one element parser; handles `[]`.
        fn array<T>(
            &mut self,
            mut elem: impl FnMut(&mut Self) -> Result<T, String>,
        ) -> Result<Vec<T>, String> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(out);
            }
            loop {
                self.skip_ws();
                out.push(elem(self)?);
                self.skip_ws();
                match self.next()? {
                    b',' => continue,
                    b']' => break,
                    c => return Err(format!("expected ',' or ']', found {:?}", c as char)),
                }
            }
            Ok(out)
        }

        /// The router-state object itself, starting at the current
        /// position and consuming exactly through its closing brace —
        /// callers embedding the object (the model snapshot) can keep
        /// parsing after it.
        pub fn router_state(&mut self) -> Result<RouterState, String> {
            self.skip_ws();
            self.expect(b'{')?;
            let mut families = None;
            let mut windows = None;
            let mut decisions = None;
            let mut last = None;
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                match key.as_str() {
                    "families" => families = Some(self.array(|p| p.string())?),
                    "windows" => windows = Some(self.array(|p| p.array(|q| q.number()))?),
                    "decisions" => {
                        decisions = Some(
                            self.array(|p| p.number())?
                                .into_iter()
                                .map(|d| {
                                    if d >= 0.0 && d.fract() == 0.0 {
                                        Ok(d as u64)
                                    } else {
                                        Err(format!("decision counter {d} is not a count"))
                                    }
                                })
                                .collect::<Result<Vec<u64>, String>>()?,
                        )
                    }
                    "last" => {
                        last = Some(if self.bytes[self.pos..].starts_with(b"null") {
                            self.pos += 4;
                            None
                        } else {
                            Some(self.string()?)
                        })
                    }
                    other => return Err(format!("unknown router state key {other:?}")),
                }
                self.skip_ws();
                match self.next()? {
                    b',' => continue,
                    b'}' => break,
                    c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
                }
            }
            Ok(RouterState {
                families: families.ok_or("missing key \"families\"")?,
                windows: windows.ok_or("missing key \"windows\"")?,
                decisions: decisions.ok_or("missing key \"decisions\"")?,
                last: last.ok_or("missing key \"last\"")?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> RouterState {
        RouterState {
            families: vec!["kde".into(), "learned".into(), "exact".into()],
            windows: vec![vec![1.0, 2.5], vec![], vec![1.0]],
            decisions: vec![2, 0, 1],
            last: Some("kde".into()),
        }
    }

    #[test]
    fn validates_consistent_state() {
        assert_eq!(good().validate(), Ok(()));
        let mut none_last = good();
        none_last.last = None;
        assert_eq!(none_last.validate(), Ok(()));
    }

    #[test]
    fn rejects_misaligned_lengths() {
        let mut s = good();
        s.windows.pop();
        assert!(s.validate().is_err());
        let mut s = good();
        s.decisions.pop();
        assert!(s.validate().is_err());
        assert!(RouterState {
            families: vec![],
            windows: vec![],
            decisions: vec![],
            last: None,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn json_roundtrips_bit_exactly() {
        let mut state = good();
        state.windows[0].push(1.0 + f64::EPSILON);
        let back = RouterState::from_json(&state.to_json()).expect("parse");
        assert_eq!(back, state);
        let mut none_last = state.clone();
        none_last.last = None;
        let back = RouterState::from_json(&none_last.to_json()).expect("parse");
        assert_eq!(back, none_last);
    }

    #[test]
    fn json_accepts_whitespace_and_reordering() {
        let json = r#" { "last" : null , "decisions" : [ 1 , 0 ] ,
                         "windows" : [ [ 1.5 ] , [ ] ] ,
                         "families" : [ "kde" , "exact" ] } "#;
        let state = RouterState::from_json(json).expect("parse");
        assert_eq!(state.families, vec!["kde", "exact"]);
        assert_eq!(state.windows, vec![vec![1.5], vec![]]);
        assert_eq!(state.decisions, vec![1, 0]);
        assert_eq!(state.last, None);
    }

    #[test]
    fn json_rejects_garbage_and_invalid_states() {
        for bad in [
            "",
            "{",
            r#"{"families":["kde"]}"#,
            r#"{"families":["kde"],"windows":[[]],"decisions":[0],"last":null}x"#,
            r#"{"families":["kde"],"windows":[[0.5]],"decisions":[0],"last":null}"#,
            r#"{"families":["kde"],"windows":[[]],"decisions":[1.5],"last":null}"#,
            r#"{"families":["kde"],"windows":[[]],"decisions":[0],"last":"exact"}"#,
            r#"{"mystery":3}"#,
        ] {
            assert!(RouterState::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn embedded_parse_reports_resume_position() {
        let state = good();
        let doc = format!("{{\"router\":{},\"tail\":1}}", state.to_json());
        let start = doc.find('{').unwrap() + "{\"router\":".len();
        let (back, end) = RouterState::parse_embedded(doc.as_bytes(), start).expect("parse");
        assert_eq!(back, state);
        assert_eq!(&doc[end..end + 1], ",");
    }

    #[test]
    fn rejects_bad_window_values_and_unknown_last() {
        let mut s = good();
        s.windows[0].push(0.5);
        assert!(s.validate().is_err());
        let mut s = good();
        s.windows[1].push(f64::NAN);
        assert!(s.validate().is_err());
        let mut s = good();
        s.last = Some("stholes".into());
        assert!(s.validate().is_err());
    }
}
