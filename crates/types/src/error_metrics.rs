//! Estimation-error metrics (Appendix C.1 of the paper).
//!
//! The paper's bandwidth optimization minimizes a *differentiable loss*
//! (implemented, with gradients, in `kdesel-kde::loss`); the evaluation
//! *reports* errors with the metrics below. Keeping the report-side metrics
//! here lets every estimator and experiment share one definition.

/// Smoothing constant `λ` preventing division by zero in relative metrics
/// and the Q-error (Appendix C.1, footnote 6). The paper leaves the value
/// open; we use one tuple's worth of selectivity at the evaluation's typical
/// table sizes.
pub const QERROR_SMOOTHING: f64 = 1e-6;

/// A scalar error metric over (estimate, actual) selectivity pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMetric {
    /// `|p̂ − p|` — the paper's headline metric (Figures 4, 5, 6, 8).
    Absolute,
    /// `(p̂ − p)²`.
    Squared,
    /// `|p̂ − p| / (λ + p)`.
    Relative,
    /// `((p̂ − p) / (λ + p))²`.
    SquaredRelative,
    /// `(log(λ + p̂) − log(λ + p))²` — the squared Q-error of Moerkotte et
    /// al., symmetric in over-/under-estimation factors.
    SquaredQ,
}

impl ErrorMetric {
    /// Evaluates the metric for one query.
    pub fn eval(self, estimate: f64, actual: f64) -> f64 {
        let d = estimate - actual;
        match self {
            ErrorMetric::Absolute => d.abs(),
            ErrorMetric::Squared => d * d,
            ErrorMetric::Relative => d.abs() / (QERROR_SMOOTHING + actual),
            ErrorMetric::SquaredRelative => {
                let r = d / (QERROR_SMOOTHING + actual);
                r * r
            }
            ErrorMetric::SquaredQ => {
                let q = (QERROR_SMOOTHING + estimate).ln() - (QERROR_SMOOTHING + actual).ln();
                q * q
            }
        }
    }

    /// Mean metric value over a set of (estimate, actual) pairs.
    ///
    /// Returns 0 for an empty slice.
    pub fn mean(self, pairs: &[(f64, f64)]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        pairs.iter().map(|&(e, a)| self.eval(e, a)).sum::<f64>() / pairs.len() as f64
    }

    /// All metrics, for sweeps.
    pub const ALL: [ErrorMetric; 5] = [
        ErrorMetric::Absolute,
        ErrorMetric::Squared,
        ErrorMetric::Relative,
        ErrorMetric::SquaredRelative,
        ErrorMetric::SquaredQ,
    ];

    /// Stable identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            ErrorMetric::Absolute => "absolute",
            ErrorMetric::Squared => "squared",
            ErrorMetric::Relative => "relative",
            ErrorMetric::SquaredRelative => "squared_relative",
            ErrorMetric::SquaredQ => "squared_q",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_and_squared() {
        assert!((ErrorMetric::Absolute.eval(0.3, 0.1) - 0.2).abs() < 1e-15);
        assert!((ErrorMetric::Squared.eval(0.3, 0.1) - 0.04).abs() < 1e-15);
    }

    #[test]
    fn exact_estimate_has_zero_error_in_all_metrics() {
        for m in ErrorMetric::ALL {
            assert_eq!(m.eval(0.25, 0.25), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn relative_error_is_smoothed_at_zero_actual() {
        let v = ErrorMetric::Relative.eval(0.1, 0.0);
        assert!(v.is_finite());
        assert!(v > 0.0);
    }

    #[test]
    fn squared_q_is_symmetric_in_log_space() {
        // Overestimating by 2x and underestimating by 2x should give the same
        // q-error when selectivities dominate the smoothing constant.
        let over = ErrorMetric::SquaredQ.eval(0.4, 0.2);
        let under = ErrorMetric::SquaredQ.eval(0.1, 0.2);
        assert!((over - under).abs() < 1e-4, "{over} vs {under}");
    }

    #[test]
    fn mean_over_pairs() {
        let pairs = [(0.2, 0.1), (0.1, 0.3)];
        assert!((ErrorMetric::Absolute.mean(&pairs) - 0.15).abs() < 1e-15);
        assert_eq!(ErrorMetric::Absolute.mean(&[]), 0.0);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<_> = ErrorMetric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ErrorMetric::ALL.len());
    }
}
