//! Hyper-rectangular query regions.
//!
//! The paper (§2.1) restricts query regions to axis-aligned hyper-rectangles
//! `Ω = (l₁,u₁) × … × (l_d,u_d)` over real-valued attributes. [`Rect`] is the
//! canonical representation used by the storage layer (range scans), the KDE
//! estimator (closed-form erf integration, Appendix B) and the STHoles
//! histogram (bucket boxes).

/// An axis-aligned hyper-rectangle in `ℝ^d`.
///
/// Invariant: `lo.len() == hi.len()` and `lo[i] <= hi[i]` for all `i`.
/// Degenerate (zero-width) intervals are allowed; they have zero volume but
/// can still contain points on the boundary (containment is closed on both
/// ends, matching how range predicates `l ≤ x ≤ u` are evaluated by the
/// storage engine).
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Creates a rectangle from lower and upper bounds.
    ///
    /// # Panics
    /// Panics if the bound vectors differ in length, are empty, contain NaN,
    /// or if any `lo[i] > hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound dimensionality mismatch");
        assert!(!lo.is_empty(), "zero-dimensional rectangle");
        for (i, (&l, &u)) in lo.iter().zip(&hi).enumerate() {
            assert!(!l.is_nan() && !u.is_nan(), "NaN bound in dimension {i}");
            assert!(l <= u, "inverted interval in dimension {i}: {l} > {u}");
        }
        Self { lo, hi }
    }

    /// Creates a rectangle from `(lo, hi)` interval pairs.
    pub fn from_intervals(intervals: &[(f64, f64)]) -> Self {
        let lo = intervals.iter().map(|&(l, _)| l).collect();
        let hi = intervals.iter().map(|&(_, u)| u).collect();
        Self::new(lo, hi)
    }

    /// The rectangle covering all of `ℝ^d` (useful as a neutral clip region).
    pub fn unbounded(dims: usize) -> Self {
        Self::new(vec![f64::NEG_INFINITY; dims], vec![f64::INFINITY; dims])
    }

    /// A cube `[lo, hi]^d`.
    pub fn cube(dims: usize, lo: f64, hi: f64) -> Self {
        Self::new(vec![lo; dims], vec![hi; dims])
    }

    /// A rectangle centered at `center` with per-dimension half-widths.
    ///
    /// # Panics
    /// Panics if lengths differ or any half-width is negative.
    pub fn centered(center: &[f64], half_widths: &[f64]) -> Self {
        assert_eq!(center.len(), half_widths.len());
        let lo = center
            .iter()
            .zip(half_widths)
            .map(|(&c, &w)| {
                assert!(w >= 0.0, "negative half-width");
                c - w
            })
            .collect();
        let hi = center
            .iter()
            .zip(half_widths)
            .map(|(&c, &w)| c + w)
            .collect();
        Self::new(lo, hi)
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds `l₁ … l_d`.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds `u₁ … u_d`.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Interval `(l_i, u_i)` of dimension `i`.
    #[inline]
    pub fn interval(&self, i: usize) -> (f64, f64) {
        (self.lo[i], self.hi[i])
    }

    /// Side length of dimension `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Geometric center point.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &u)| 0.5 * (l + u))
            .collect()
    }

    /// Volume `∏ (u_i − l_i)`. Zero for degenerate rectangles.
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(&l, &u)| u - l).product()
    }

    /// Closed containment test: `l_i ≤ x_i ≤ u_i` in every dimension.
    #[inline]
    pub fn contains(&self, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dims());
        point
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&x, (&l, &u))| l <= x && x <= u)
    }

    /// Whether `other` lies entirely inside `self` (closed on both ends).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo.iter().zip(&other.lo).all(|(&a, &b)| a <= b)
            && self.hi.iter().zip(&other.hi).all(|(&a, &b)| b <= a)
    }

    /// Whether the interiors of the rectangles overlap (shared boundary faces
    /// do not count as intersection, matching the STHoles paper's treatment
    /// of adjacent buckets).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&l1, &u1), (&l2, &u2))| l1 < u2 && l2 < u1)
    }

    /// Intersection of two rectangles, or `None` if their interiors are
    /// disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let lo = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(&a, &b)| a.max(b))
            .collect();
        let hi = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(&a, &b)| a.min(b))
            .collect();
        Some(Rect::new(lo, hi))
    }

    /// Volume of the intersection with `other` (zero when disjoint).
    pub fn intersection_volume(&self, other: &Rect) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.volume())
    }

    /// Smallest rectangle containing both inputs (bounding-box union).
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(other.dims(), self.dims());
        let lo = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(&a, &b)| a.min(b))
            .collect();
        let hi = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(&a, &b)| a.max(b))
            .collect();
        Rect::new(lo, hi)
    }

    /// Clips this rectangle to `bounds`, returning `None` when the clipped
    /// region is empty.
    pub fn clipped_to(&self, bounds: &Rect) -> Option<Rect> {
        self.intersection(bounds)
    }

    /// Grows (or shrinks, for negative `amount`) every face by `amount`,
    /// clamping inverted intervals to their midpoint.
    pub fn inflated(&self, amount: f64) -> Rect {
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        for i in 0..self.dims() {
            let mut l = self.lo[i] - amount;
            let mut u = self.hi[i] + amount;
            if l > u {
                let mid = 0.5 * (self.lo[i] + self.hi[i]);
                l = mid;
                u = mid;
            }
            lo.push(l);
            hi.push(u);
        }
        Rect::new(lo, hi)
    }

    /// Smallest enclosing rectangle of a point set.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding_box<'a, I>(dims: usize, points: I) -> Option<Rect>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        let mut any = false;
        for p in points {
            debug_assert_eq!(p.len(), dims);
            any = true;
            for i in 0..dims {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        any.then(|| Rect::new(lo, hi))
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for i in 0..self.dims() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "({:.4},{:.4})", self.lo[i], self.hi[i])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(l1: f64, u1: f64, l2: f64, u2: f64) -> Rect {
        Rect::new(vec![l1, l2], vec![u1, u2])
    }

    #[test]
    fn volume_of_unit_cube() {
        assert_eq!(Rect::cube(3, 0.0, 1.0).volume(), 1.0);
        assert_eq!(Rect::cube(4, -1.0, 1.0).volume(), 16.0);
    }

    #[test]
    fn degenerate_interval_has_zero_volume_but_contains_boundary() {
        let r = Rect::new(vec![1.0, 0.0], vec![1.0, 2.0]);
        assert_eq!(r.volume(), 0.0);
        assert!(r.contains(&[1.0, 1.0]));
        assert!(!r.contains(&[1.1, 1.0]));
    }

    #[test]
    fn containment_is_closed() {
        let r = r2(0.0, 1.0, 0.0, 1.0);
        assert!(r.contains(&[0.0, 0.0]));
        assert!(r.contains(&[1.0, 1.0]));
        assert!(r.contains(&[0.5, 0.5]));
        assert!(!r.contains(&[1.0 + 1e-12, 0.5]));
    }

    #[test]
    fn intersection_basic() {
        let a = r2(0.0, 2.0, 0.0, 2.0);
        let b = r2(1.0, 3.0, 1.0, 3.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r2(1.0, 2.0, 1.0, 2.0));
        assert!((a.intersection_volume(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn touching_faces_do_not_intersect() {
        let a = r2(0.0, 1.0, 0.0, 1.0);
        let b = r2(1.0, 2.0, 0.0, 1.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.intersection_volume(&b), 0.0);
    }

    #[test]
    fn disjoint_rects() {
        let a = r2(0.0, 1.0, 0.0, 1.0);
        let b = r2(5.0, 6.0, 5.0, 6.0);
        assert!(!a.intersects(&b));
        let u = a.bounding_union(&b);
        assert_eq!(u, r2(0.0, 6.0, 0.0, 6.0));
    }

    #[test]
    fn contains_rect_closed() {
        let outer = r2(0.0, 10.0, 0.0, 10.0);
        let inner = r2(0.0, 10.0, 2.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn centered_construction() {
        let r = Rect::centered(&[1.0, 2.0], &[0.5, 1.0]);
        assert_eq!(r, r2(0.5, 1.5, 1.0, 3.0));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 5.0], vec![2.0, 1.0], vec![-1.0, 3.0]];
        let bb = Rect::bounding_box(2, pts.iter().map(|p| p.as_slice())).unwrap();
        assert_eq!(bb, r2(-1.0, 2.0, 1.0, 5.0));
        assert!(Rect::bounding_box(2, std::iter::empty()).is_none());
    }

    #[test]
    fn inflate_and_deflate() {
        let r = r2(0.0, 2.0, 0.0, 2.0);
        assert_eq!(r.inflated(1.0), r2(-1.0, 3.0, -1.0, 3.0));
        // Deflating past the midpoint collapses to the center.
        let collapsed = r.inflated(-2.0);
        assert_eq!(collapsed.volume(), 0.0);
        assert_eq!(collapsed.center(), vec![1.0, 1.0]);
    }

    #[test]
    fn intersection_volume_commutes() {
        let a = r2(0.0, 4.0, 1.0, 3.0);
        let b = r2(2.0, 6.0, 0.0, 2.0);
        assert!((a.intersection_volume(&b) - b.intersection_volume(&a)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_bounds_panic() {
        Rect::new(vec![1.0], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mismatched_dims_panic() {
        Rect::new(vec![0.0, 0.0], vec![1.0]);
    }

    #[test]
    fn display_is_stable() {
        let r = r2(0.0, 1.0, 2.0, 3.0);
        assert_eq!(format!("{r}"), "[(0.0000,1.0000) × (2.0000,3.0000)]");
    }
}
