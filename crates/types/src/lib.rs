//! Core vocabulary types for the `kdesel` selectivity-estimation workspace.
//!
//! This crate defines the shared, dependency-light types used across the
//! reproduction of *Heimel, Kiefer, Markl: Self-Tuning, GPU-Accelerated
//! Kernel Density Models for Multidimensional Selectivity Estimation*
//! (SIGMOD 2015):
//!
//! * [`Rect`] — a hyper-rectangular query region `Ω = (l₁,u₁) × … × (l_d,u_d)`
//!   (§2.1 of the paper),
//! * [`QueryFeedback`] — the (region, estimate, true selectivity) triple that
//!   drives both bandwidth learning (§4.1) and sample maintenance (§4.2),
//! * [`SelectivityEstimator`] — the common trait implemented by every
//!   estimator in the evaluation (§6.1.1),
//! * error metrics and summary statistics used by the experiments (§6.2).

pub mod budget;
pub mod error_metrics;
pub mod estimator;
pub mod feedback;
pub mod rect;
pub mod router;
pub mod stats;

pub use budget::{MemoryBudget, Precision};
pub use error_metrics::{ErrorMetric, QERROR_SMOOTHING};
pub use estimator::{ConstantEstimator, SelectivityEstimator};
pub use feedback::{LabelledQuery, QueryFeedback};
pub use rect::Rect;
pub use router::RouterState;
pub use stats::{FiveNumberSummary, Summary};
