//! Memory-budget accounting for the evaluation's fairness constraint.
//!
//! §6.2 of the paper: *"in order to make the comparisons fair, we restricted
//! all estimators to use the same amount of memory. In particular, we allowed
//! d·4 kB, where d is the dimensionality of the dataset."* The paper's GPU
//! implementation stores samples in configurable floating-point precision;
//! this port defaults to `f64` but supports `f32` accounting so the original
//! point counts can be matched exactly.

/// Floating-point precision a model stores its state in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 4-byte floats (the paper's evaluation configuration).
    F32,
    /// 8-byte floats (this port's computational default).
    F64,
}

impl Precision {
    /// Bytes per scalar.
    pub const fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

/// A per-estimator memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// An explicit byte budget.
    pub const fn from_bytes(bytes: usize) -> Self {
        Self { bytes }
    }

    /// The paper's evaluation budget: `d · 4 KiB`.
    pub const fn paper_default(dims: usize) -> Self {
        Self {
            bytes: dims * 4 * 1024,
        }
    }

    /// Total bytes available.
    pub const fn bytes(self) -> usize {
        self.bytes
    }

    /// How many `d`-dimensional sample points fit, at the given precision.
    ///
    /// This is the KDE model size `s`: the model is "primarily a data sample"
    /// (§2.3), so the budget is spent almost entirely on the sample buffer.
    pub const fn kde_sample_points(self, dims: usize, precision: Precision) -> usize {
        self.bytes / (dims * precision.bytes())
    }

    /// How many STHoles buckets fit, at the given precision.
    ///
    /// Each bucket stores a `d`-dimensional box (2·d scalars), a frequency,
    /// and tree linkage; we charge `2·d + 2` scalars per bucket, matching the
    /// accounting used in the STHoles paper's experiments.
    pub const fn stholes_buckets(self, dims: usize, precision: Precision) -> usize {
        self.bytes / ((2 * dims + 2) * precision.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_scales_with_dims() {
        assert_eq!(MemoryBudget::paper_default(3).bytes(), 3 * 4096);
        assert_eq!(MemoryBudget::paper_default(8).bytes(), 8 * 4096);
    }

    #[test]
    fn kde_point_count_matches_paper_numbers() {
        // 8D, f32: 8·4096 bytes / (8 dims · 4 B) = 1024 points — consistent
        // with the paper's remark that the static experiments used ~32 KiB
        // samples.
        let b = MemoryBudget::paper_default(8);
        assert_eq!(b.kde_sample_points(8, Precision::F32), 1024);
        assert_eq!(b.kde_sample_points(8, Precision::F64), 512);
    }

    #[test]
    fn stholes_bucket_count() {
        let b = MemoryBudget::paper_default(3);
        // 3·4096 / ((2·3+2)·4) = 12288/32 = 384 buckets at f32.
        assert_eq!(b.stholes_buckets(3, Precision::F32), 384);
    }

    #[test]
    fn more_dims_do_not_reduce_point_count_under_paper_budget() {
        // The d·4 KiB budget exactly cancels the per-point growth in d, so
        // the point count is constant across dimensionalities.
        for d in 1..=16 {
            let b = MemoryBudget::paper_default(d);
            assert_eq!(b.kde_sample_points(d, Precision::F32), 1024);
        }
    }
}
