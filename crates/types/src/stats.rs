//! Summary statistics for experiment reporting.
//!
//! The paper reports estimation-error distributions as boxplots over 25
//! repetitions (Figures 4 and 5). [`Summary`] accumulates samples and
//! produces the five-number summary those plots are built from, plus the
//! mean values used in Figures 6 and 8.

/// Minimum, lower quartile, median, upper quartile, maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumberSummary {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

/// Accumulates scalar observations and answers summary queries.
///
/// Observations are stored (experiments collect at most a few thousand), so
/// exact quantiles are cheap; `mean`/`variance` use a numerically stable
/// two-pass formulation at query time.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a summary over the given values.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.add(v);
        }
        s
    }

    /// Records one observation.
    ///
    /// # Panics
    /// Panics on NaN — a NaN error would silently poison quantiles.
    pub fn add(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        self.values.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Exact quantile via linear interpolation between order statistics
    /// (type-7, the R/numpy default).
    ///
    /// # Panics
    /// Panics when empty or when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.values.is_empty(), "quantile of empty summary");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded on add"));
        let n = sorted.len();
        if n == 1 {
            return sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] + frac * (sorted[hi] - sorted[lo])
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Five-number summary for boxplots.
    ///
    /// # Panics
    /// Panics when empty.
    pub fn five_numbers(&self) -> FiveNumberSummary {
        FiveNumberSummary {
            min: self.quantile(0.0),
            q1: self.quantile(0.25),
            median: self.quantile(0.5),
            q3: self.quantile(0.75),
            max: self.quantile(1.0),
        }
    }

    /// Read-only view of recorded observations (insertion order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Merges another summary's observations into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.values.extend_from_slice(&other.values);
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        let fns = self.five_numbers();
        write!(
            f,
            "n={} mean={:.5} min={:.5} q1={:.5} med={:.5} q3={:.5} max={:.5}",
            self.count(),
            self.mean(),
            fns.min,
            fns.q1,
            fns.median,
            fns.q3,
            fns.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let s = Summary::from_values([1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean() - 2.5).abs() < 1e-15);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.std_dev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_values([10.0, 20.0, 30.0, 40.0]);
        assert!((s.quantile(0.0) - 10.0).abs() < 1e-15);
        assert!((s.quantile(1.0) - 40.0).abs() < 1e-15);
        assert!((s.median() - 25.0).abs() < 1e-15);
        assert!((s.quantile(0.25) - 17.5).abs() < 1e-15);
    }

    #[test]
    fn quantiles_do_not_depend_on_insertion_order() {
        let a = Summary::from_values([3.0, 1.0, 2.0]);
        let b = Summary::from_values([1.0, 2.0, 3.0]);
        assert_eq!(a.median(), b.median());
        assert_eq!(a.quantile(0.75), b.quantile(0.75));
    }

    #[test]
    fn five_numbers_are_ordered() {
        let s = Summary::from_values((0..100).map(|i| (i as f64 * 37.0) % 11.0));
        let f = s.five_numbers();
        assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
    }

    #[test]
    fn merge_combines_observations() {
        let mut a = Summary::from_values([1.0, 2.0]);
        let b = Summary::from_values([3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_values([7.0]);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.variance(), 0.0);
        let f = s.five_numbers();
        assert_eq!(f.min, 7.0);
        assert_eq!(f.max, 7.0);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_rejected() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn empty_quantile_panics() {
        Summary::new().quantile(0.5);
    }
}
