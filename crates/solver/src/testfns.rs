//! Standard optimization test functions.
//!
//! Used by the solver test suite and benchmarks; exposed publicly so
//! integration tests and Criterion benches can share them.

use crate::problem::FnObjective;

/// Sphere function `Σ xᵢ²`; global minimum 0 at the origin. Convex.
pub fn sphere(dims: usize) -> FnObjective<impl Fn(&[f64], &mut [f64]) -> f64> {
    FnObjective::new(dims, |x: &[f64], g: &mut [f64]| {
        for (gi, &xi) in g.iter_mut().zip(x) {
            *gi = 2.0 * xi;
        }
        x.iter().map(|&v| v * v).sum()
    })
}

/// Rosenbrock function; global minimum 0 at `(1, …, 1)`. Narrow curved
/// valley — the classic stress test for quasi-Newton methods.
pub fn rosenbrock(dims: usize) -> FnObjective<impl Fn(&[f64], &mut [f64]) -> f64> {
    assert!(dims >= 2);
    FnObjective::new(dims, |x: &[f64], g: &mut [f64]| {
        let n = x.len();
        let mut f = 0.0;
        for gi in g.iter_mut() {
            *gi = 0.0;
        }
        for i in 0..n - 1 {
            let a = x[i + 1] - x[i] * x[i];
            let b = 1.0 - x[i];
            f += 100.0 * a * a + b * b;
            g[i] += -400.0 * x[i] * a - 2.0 * b;
            g[i + 1] += 200.0 * a;
        }
        f
    })
}

/// Rastrigin function; global minimum 0 at the origin with a dense lattice
/// of local minima — the stress test for the global (multistart) phase.
pub fn rastrigin(dims: usize) -> FnObjective<impl Fn(&[f64], &mut [f64]) -> f64> {
    use std::f64::consts::PI;
    FnObjective::new(dims, move |x: &[f64], g: &mut [f64]| {
        let mut f = 10.0 * x.len() as f64;
        for (gi, &xi) in g.iter_mut().zip(x) {
            f += xi * xi - 10.0 * (2.0 * PI * xi).cos();
            *gi = 2.0 * xi + 20.0 * PI * (2.0 * PI * xi).sin();
        }
        f
    })
}

/// Booth function (2D); global minimum 0 at `(1, 3)`.
pub fn booth() -> FnObjective<impl Fn(&[f64], &mut [f64]) -> f64> {
    FnObjective::new(2, |x: &[f64], g: &mut [f64]| {
        let a = x[0] + 2.0 * x[1] - 7.0;
        let b = 2.0 * x[0] + x[1] - 5.0;
        g[0] = 2.0 * a + 4.0 * b;
        g[1] = 4.0 * a + 2.0 * b;
        a * a + b * b
    })
}

/// A two-minimum "double well" in 1D extended over `dims` by summation:
/// `Σ (xᵢ² − 1)² + 0.2·xᵢ`. The asymmetry makes `x ≈ −1` the global and
/// `x ≈ +1` a local minimum in every coordinate — mirrors the paper's
/// observation that the bandwidth objective typically has "only one or two"
/// minima (§3.3).
pub fn double_well(dims: usize) -> FnObjective<impl Fn(&[f64], &mut [f64]) -> f64> {
    FnObjective::new(dims, |x: &[f64], g: &mut [f64]| {
        let mut f = 0.0;
        for (gi, &xi) in g.iter_mut().zip(x) {
            let w = xi * xi - 1.0;
            f += w * w + 0.2 * xi;
            *gi = 4.0 * xi * w + 0.2;
        }
        f
    })
}

/// Verifies an objective's analytic gradient against central finite
/// differences at `x`; returns the maximum absolute component error.
pub fn gradient_check<O: crate::problem::Objective>(obj: &O, x: &[f64], h: f64) -> f64 {
    let mut analytic = vec![0.0; obj.dims()];
    obj.eval(x, &mut analytic);
    let mut worst = 0.0f64;
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        xp[i] = x[i] + h;
        let fp = obj.value(&xp);
        xp[i] = x[i] - h;
        let fm = obj.value(&xp);
        xp[i] = x[i];
        let fd = (fp - fm) / (2.0 * h);
        worst = worst.max((fd - analytic[i]).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Objective;

    #[test]
    fn known_minima() {
        let mut g = vec![0.0; 2];
        assert_eq!(sphere(2).eval(&[0.0, 0.0], &mut g), 0.0);
        assert_eq!(rosenbrock(2).eval(&[1.0, 1.0], &mut g), 0.0);
        assert_eq!(g, vec![0.0, 0.0]);
        assert_eq!(booth().eval(&[1.0, 3.0], &mut g), 0.0);
        let mut g3 = vec![0.0; 3];
        assert!(rastrigin(3).eval(&[0.0; 3], &mut g3).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let points: [&[f64]; 3] = [&[0.3, -0.7], &[1.5, 2.5], &[-1.2, 1.0]];
        for x in points {
            assert!(gradient_check(&sphere(2), x, 1e-6) < 1e-6);
            assert!(gradient_check(&rosenbrock(2), x, 1e-6) < 1e-3);
            assert!(gradient_check(&booth(), x, 1e-6) < 1e-5);
            assert!(gradient_check(&rastrigin(2), x, 1e-7) < 1e-4);
            assert!(gradient_check(&double_well(2), x, 1e-6) < 1e-6);
        }
    }

    #[test]
    fn double_well_global_vs_local() {
        let obj = double_well(1);
        // Global minimum near −1 should be lower than the local one near +1.
        let near_global = obj.value(&[-1.02]);
        let near_local = obj.value(&[0.97]);
        assert!(near_global < near_local);
    }
}
