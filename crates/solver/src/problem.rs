//! Problem interface shared by all solvers.

use rand::Rng;

/// A differentiable objective `f : ℝ^d → ℝ` with analytic gradient.
///
/// The bandwidth-selection objective (paper eq. 5 with the gradient of
/// eq. 17) implements this trait; solvers are generic over it.
pub trait Objective {
    /// Problem dimensionality.
    fn dims(&self) -> usize;

    /// Evaluates `f(x)` and writes `∇f(x)` into `grad`.
    ///
    /// `grad.len()` equals [`dims`](Self::dims).
    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64;

    /// Evaluates `f(x)` only. Default: evaluates gradient too and discards it;
    /// implementors with a cheaper value-only path should override.
    fn value(&self, x: &[f64]) -> f64 {
        let mut g = vec![0.0; self.dims()];
        self.eval(x, &mut g)
    }
}

/// Adapter turning a closure `(x, grad) -> f64` into an [`Objective`].
pub struct FnObjective<F> {
    dims: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64]) -> f64> FnObjective<F> {
    /// Wraps a closure.
    pub fn new(dims: usize, f: F) -> Self {
        Self { dims, f }
    }
}

impl<F: Fn(&[f64], &mut [f64]) -> f64> Objective for FnObjective<F> {
    fn dims(&self) -> usize {
        self.dims
    }
    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        (self.f)(x, grad)
    }
}

/// Box constraints `lo_i ≤ x_i ≤ hi_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Bounds {
    /// Creates bounds.
    ///
    /// # Panics
    /// Panics on length mismatch, empty bounds, NaN, or `lo_i > hi_i`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len());
        assert!(!lo.is_empty());
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(!l.is_nan() && !h.is_nan(), "NaN bound in dim {i}");
            assert!(l <= h, "inverted bound in dim {i}");
        }
        Self { lo, hi }
    }

    /// The same `[lo, hi]` interval in every dimension.
    pub fn uniform(dims: usize, lo: f64, hi: f64) -> Self {
        Self::new(vec![lo; dims], vec![hi; dims])
    }

    /// Unbounded in every dimension.
    pub fn unbounded(dims: usize) -> Self {
        Self::new(vec![f64::NEG_INFINITY; dims], vec![f64::INFINITY; dims])
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Projects `x` onto the box in place.
    pub fn project(&self, x: &mut [f64]) {
        kdesel_math::vecops::project_box(x, &self.lo, &self.hi);
    }

    /// Whether `x` satisfies the constraints.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&v, (&l, &h))| l <= v && v <= h)
    }

    /// Uniform sample inside the box. Infinite bounds are clamped to ±1e3
    /// for sampling purposes (the global phase only needs diverse starts).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| {
                let l = l.max(-1e3);
                let h = h.min(1e3);
                if l == h {
                    l
                } else {
                    rng.gen_range(l..h)
                }
            })
            .collect()
    }

    /// Diagonal length of the (sampling-clamped) box.
    pub fn diameter(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| {
                let d = h.min(1e3) - l.max(-1e3);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Why a solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptOutcome {
    /// Gradient (projected) infinity norm fell below tolerance.
    GradientConverged,
    /// Relative objective change fell below tolerance.
    ValueConverged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// Line search could not make progress (often: already at a minimum to
    /// numerical precision, or the gradient is inconsistent with f).
    LineSearchFailed,
}

/// Solver output.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Objective/gradient evaluations performed.
    pub evaluations: usize,
    /// Termination reason.
    pub outcome: OptOutcome,
}

impl OptResult {
    /// Whether the solver stopped because a convergence criterion was met.
    pub fn converged(&self) -> bool {
        matches!(
            self.outcome,
            OptOutcome::GradientConverged | OptOutcome::ValueConverged
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fn_objective_wraps_closure() {
        let obj = FnObjective::new(2, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            g[1] = 2.0 * x[1];
            x[0] * x[0] + x[1] * x[1]
        });
        let mut g = vec![0.0; 2];
        assert_eq!(obj.eval(&[3.0, 4.0], &mut g), 25.0);
        assert_eq!(g, vec![6.0, 8.0]);
        assert_eq!(obj.value(&[1.0, 0.0]), 1.0);
        assert_eq!(obj.dims(), 2);
    }

    #[test]
    fn bounds_project_and_contain() {
        let b = Bounds::uniform(3, -1.0, 1.0);
        let mut x = vec![-2.0, 0.0, 5.0];
        b.project(&mut x);
        assert_eq!(x, vec![-1.0, 0.0, 1.0]);
        assert!(b.contains(&x));
        assert!(!b.contains(&[0.0, 0.0, 1.1]));
    }

    #[test]
    fn bounds_sampling_stays_inside() {
        let b = Bounds::new(vec![0.0, -5.0], vec![1.0, -4.0]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = b.sample(&mut rng);
            assert!(b.contains(&x), "{x:?}");
        }
    }

    #[test]
    fn degenerate_bound_samples_exactly() {
        let b = Bounds::new(vec![2.0], vec![2.0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(b.sample(&mut rng), vec![2.0]);
    }

    #[test]
    fn diameter_of_unit_square() {
        let b = Bounds::uniform(2, 0.0, 1.0);
        assert!((b.diameter() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inverted bound")]
    fn inverted_bounds_rejected() {
        Bounds::new(vec![1.0], vec![0.0]);
    }
}
