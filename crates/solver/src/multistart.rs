//! MLSL-style clustered multistart for global optimization.
//!
//! The paper's batch bandwidth optimization "first run[s] a coarse global
//! optimization algorithm (e.g. MLSL) to get us into the right neighborhood,
//! followed by a local optimization algorithm" (§3.4). Multi-Level Single
//! Linkage [Rinnooy Kan & Timmer 1987] samples candidate starting points,
//! and launches a local search from a candidate only if no already-sampled
//! point with a *better* objective value lies within a critical distance
//! `r_k` that shrinks as the sample grows — clustering the starts so each
//! basin of attraction is searched roughly once.
//!
//! The paper also notes the bandwidth objective typically has "only one or
//! two" minima, so a modest sampling budget suffices.

use crate::lbfgs::{lbfgs, LbfgsConfig};
use crate::problem::{Bounds, Objective, OptResult};
use kdesel_math::vecops::dist_sq;
use rand::Rng;

/// Multistart configuration.
#[derive(Debug, Clone)]
pub struct MultistartConfig {
    /// Sampling rounds.
    pub rounds: usize,
    /// Candidate points sampled per round.
    pub samples_per_round: usize,
    /// Fraction of the best-valued points considered as start candidates
    /// each round (the "reduced sample" of MLSL).
    pub reduced_fraction: f64,
    /// Scale constant of the critical clustering radius.
    pub radius_scale: f64,
    /// Local-search configuration.
    pub local: LbfgsConfig,
}

impl Default for MultistartConfig {
    fn default() -> Self {
        Self {
            rounds: 4,
            samples_per_round: 16,
            reduced_fraction: 0.25,
            radius_scale: 0.5,
            local: LbfgsConfig::default(),
        }
    }
}

/// Globally minimizes `obj` over `bounds`.
///
/// `extra_starts` are always used as local-search seeds (the KDE optimizer
/// passes Scott's-rule bandwidth here so the heuristic solution is never
/// lost). Returns the best local-search result.
pub fn multistart<O: Objective, R: Rng + ?Sized>(
    obj: &O,
    bounds: &Bounds,
    extra_starts: &[Vec<f64>],
    config: &MultistartConfig,
    rng: &mut R,
) -> OptResult {
    let dims = obj.dims();
    assert_eq!(bounds.dims(), dims);

    let mut best: Option<OptResult> = None;
    let consider = |cand: OptResult, best: &mut Option<OptResult>| {
        if best.as_ref().is_none_or(|b| cand.f < b.f) {
            *best = Some(cand);
        }
    };
    // Every local search beyond the first is a "restart" in the MLSL sense.
    let mut local_runs: u64 = 0;
    let mut run_local = |start: &[f64], best: &mut Option<OptResult>| {
        local_runs += 1;
        let res = lbfgs(obj, bounds, start, &config.local);
        consider(res, best);
    };

    // Deterministic seeds first.
    for start in extra_starts {
        run_local(start, &mut best);
    }

    // Sampled points across all rounds: (x, f).
    let mut sampled: Vec<(Vec<f64>, f64)> = Vec::new();
    let diameter = bounds.diameter().max(1e-12);

    for round in 1..=config.rounds {
        for _ in 0..config.samples_per_round {
            let x = bounds.sample(rng);
            let f = obj.value(&x);
            if f.is_finite() {
                sampled.push((x, f));
            }
        }
        if sampled.is_empty() {
            continue;
        }
        sampled.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective values"));

        // MLSL critical radius: shrinks like (ln k / k)^(1/d).
        let k = sampled.len() as f64;
        let radius =
            config.radius_scale * diameter * ((k.ln().max(1.0)) / k).powf(1.0 / dims as f64);
        let radius_sq = radius * radius;

        let reduced = ((sampled.len() as f64 * config.reduced_fraction).ceil() as usize)
            .clamp(1, sampled.len());
        // Collect starts first (borrow of `sampled` ends before local runs).
        let starts: Vec<Vec<f64>> = sampled[..reduced]
            .iter()
            .enumerate()
            .filter(|(i, (xi, _))| {
                // Single-linkage rule: skip if a strictly better point lies
                // within the critical radius.
                !sampled[..*i]
                    .iter()
                    .any(|(xj, _)| dist_sq(xi, xj) < radius_sq)
            })
            .map(|(_, (x, _))| x.clone())
            .collect();

        for start in starts {
            run_local(&start, &mut best);
        }
        // Early exit once the remaining rounds cannot plausibly help: the
        // paper's objective has few minima, so two rounds agreeing on the
        // incumbent is a strong signal.
        if round >= 2 {
            if let Some(b) = &best {
                let best_sample = sampled.first().map(|(_, f)| *f).unwrap_or(f64::INFINITY);
                if b.f <= best_sample {
                    break;
                }
            }
        }
    }

    if kdesel_telemetry::enabled() && local_runs > 1 {
        kdesel_telemetry::counter("solver.multistart_restarts").add(local_runs - 1);
    }

    best.unwrap_or_else(|| {
        // Pathological case: every sampled value was non-finite and no extra
        // starts were given. Fall back to the box center.
        let mut x: Vec<f64> = bounds
            .lo()
            .iter()
            .zip(bounds.hi())
            .map(|(&l, &h)| 0.5 * (l.max(-1e3) + h.min(1e3)))
            .collect();
        bounds.project(&mut x);
        lbfgs(obj, bounds, &x, &config.local)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_global_minimum_of_double_well() {
        // Local search from +1 basin stays local; multistart must find −1.
        // The separable 2D double well has four local minima, so a start
        // must land in the (−,−) quadrant basin for both coordinates to
        // finish negative. Sample generously: the default 3×12 budget
        // leaves a nontrivial chance (for an unlucky RNG stream) that no
        // start hits that quadrant, which would test the seed, not the
        // algorithm.
        let obj = testfns::double_well(2);
        let bounds = Bounds::uniform(2, -3.0, 3.0);
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = MultistartConfig {
            rounds: 6,
            samples_per_round: 40,
            ..Default::default()
        };
        let res = multistart(&obj, &bounds, &[vec![1.0, 1.0]], &cfg, &mut rng);
        for v in &res.x {
            assert!(
                *v < 0.0,
                "should land in the global (negative) well: {:?}",
                res.x
            );
        }
    }

    #[test]
    fn rastrigin_2d_global_minimum() {
        let obj = testfns::rastrigin(2);
        let bounds = Bounds::uniform(2, -5.12, 5.12);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = MultistartConfig {
            rounds: 10,
            samples_per_round: 60,
            ..Default::default()
        };
        let res = multistart(&obj, &bounds, &[], &cfg, &mut rng);
        // Global optimum is 0 at origin; demanding < 1.0 means we found the
        // central basin (nearest local minima have value ≈ 1.0).
        assert!(res.f < 1.0, "f = {} at {:?}", res.f, res.x);
    }

    #[test]
    fn extra_starts_are_honoured() {
        // With zero sampling rounds, only the provided start is used.
        let obj = testfns::sphere(2);
        let bounds = Bounds::uniform(2, -10.0, 10.0);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MultistartConfig {
            rounds: 0,
            ..Default::default()
        };
        let res = multistart(&obj, &bounds, &[vec![5.0, 5.0]], &cfg, &mut rng);
        assert!(res.f < 1e-10);
    }

    #[test]
    fn no_starts_no_rounds_still_returns_a_point() {
        let obj = testfns::sphere(2);
        let bounds = Bounds::uniform(2, -1.0, 3.0);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MultistartConfig {
            rounds: 0,
            ..Default::default()
        };
        let res = multistart(&obj, &bounds, &[], &cfg, &mut rng);
        assert!(bounds.contains(&res.x));
        assert!(res.f < 1e-8);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let obj = testfns::rastrigin(2);
        let bounds = Bounds::uniform(2, -5.0, 5.0);
        let cfg = MultistartConfig::default();
        let r1 = multistart(&obj, &bounds, &[], &cfg, &mut StdRng::seed_from_u64(3));
        let r2 = multistart(&obj, &bounds, &[], &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.f, r2.f);
    }

    #[test]
    fn result_stays_in_bounds() {
        let obj = testfns::rosenbrock(2);
        // Exclude the true minimum (1,1) from the box.
        let bounds = Bounds::uniform(2, -2.0, 0.5);
        let mut rng = StdRng::seed_from_u64(11);
        let res = multistart(&obj, &bounds, &[], &MultistartConfig::default(), &mut rng);
        assert!(bounds.contains(&res.x), "{:?}", res.x);
    }
}
