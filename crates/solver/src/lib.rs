//! Numerical optimization stack for bandwidth selection.
//!
//! The paper (§3.4, §5.3) plugs its bandwidth objective into NLopt: a coarse
//! global pass (MLSL) followed by local refinement (L-BFGS-B). This crate
//! provides the same contract from scratch:
//!
//! * [`Objective`] / [`Bounds`] — the problem interface,
//! * [`lbfgs`] — projected-gradient L-BFGS for box-constrained problems,
//! * [`gradient_descent`] — a robust first-order fallback,
//! * [`multistart`] — an MLSL-style clustered-multistart global phase,
//! * [`online`] — the Rprop/RMSprop adaptive updaters driving the
//!   self-tuning bandwidth loop (paper §4.1, Listing 1),
//! * [`testfns`] — standard optimization test functions used by the test
//!   suite and benches.

pub mod gradient_descent;
pub mod lbfgs;
pub mod linesearch;
pub mod multistart;
pub mod online;
pub mod problem;
pub mod testfns;

pub use gradient_descent::{gradient_descent, GradientDescentConfig};
pub use lbfgs::{lbfgs, LbfgsConfig};
pub use multistart::{multistart, MultistartConfig};
pub use online::{RmsProp, RmsPropConfig, Rprop, RpropConfig};
pub use problem::{Bounds, FnObjective, Objective, OptOutcome, OptResult};
