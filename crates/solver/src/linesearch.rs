//! Line searches.
//!
//! Two strategies are provided: a projected backtracking (Armijo) search —
//! the workhorse for box-constrained L-BFGS, where every trial point is
//! projected back into the box before evaluation — and a strong-Wolfe
//! bracketing search (Nocedal & Wright, Alg. 3.5/3.6) used on unconstrained
//! steps where curvature information keeps the L-BFGS memory well-scaled.

use crate::problem::{Bounds, Objective};

/// Result of a line search.
#[derive(Debug, Clone)]
pub struct LineSearchResult {
    /// Accepted step length.
    pub alpha: f64,
    /// Accepted point (projected, for the projected search).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Gradient at `x`.
    pub grad: Vec<f64>,
    /// Number of objective evaluations used.
    pub evals: usize,
}

/// Armijo sufficient-decrease constant.
const C1: f64 = 1e-4;
/// Strong-Wolfe curvature constant.
const C2: f64 = 0.9;

/// Projected backtracking line search.
///
/// Walks `x(α) = P(x₀ + α·d)` for geometrically decreasing `α`, accepting
/// the first point satisfying the Armijo condition measured against the
/// actual (projected) displacement. Returns `None` when no step produces
/// sufficient decrease before `α` underflows.
pub fn backtracking_projected<O: Objective>(
    obj: &O,
    bounds: &Bounds,
    x0: &[f64],
    f0: f64,
    grad0: &[f64],
    dir: &[f64],
    alpha_init: f64,
) -> Option<LineSearchResult> {
    let mut alpha = alpha_init;
    let mut evals = 0;
    let n = x0.len();
    let mut grad = vec![0.0; n];
    for _ in 0..60 {
        let mut x: Vec<f64> = x0
            .iter()
            .zip(dir)
            .map(|(&xi, &di)| xi + alpha * di)
            .collect();
        bounds.project(&mut x);
        // Actual displacement after projection.
        let disp: Vec<f64> = x.iter().zip(x0).map(|(&a, &b)| a - b).collect();
        let disp_norm = kdesel_math::vecops::norm2(&disp);
        if disp_norm < 1e-16 {
            alpha *= 0.5;
            continue;
        }
        let f = obj.eval(&x, &mut grad);
        evals += 1;
        // Armijo against the projected displacement's directional derivative.
        let dd = kdesel_math::vecops::dot(grad0, &disp);
        if f <= f0 + C1 * dd.min(0.0) && f < f0 {
            return Some(LineSearchResult {
                alpha,
                x,
                f,
                grad,
                evals,
            });
        }
        alpha *= 0.5;
        if alpha < 1e-20 {
            break;
        }
    }
    None
}

/// Strong-Wolfe line search (bracket + zoom).
///
/// Assumes `dir` is a descent direction (`grad0ᵀdir < 0`); returns `None`
/// otherwise or when bracketing fails.
pub fn strong_wolfe<O: Objective>(
    obj: &O,
    x0: &[f64],
    f0: f64,
    grad0: &[f64],
    dir: &[f64],
    alpha_init: f64,
) -> Option<LineSearchResult> {
    let d0 = kdesel_math::vecops::dot(grad0, dir);
    if d0 >= 0.0 {
        return None;
    }
    let n = x0.len();
    let mut evals = 0;
    let phi = |alpha: f64, grad: &mut [f64]| -> (f64, f64) {
        let x: Vec<f64> = x0
            .iter()
            .zip(dir)
            .map(|(&xi, &di)| xi + alpha * di)
            .collect();
        let f = obj.eval(&x, grad);
        let d = kdesel_math::vecops::dot(grad, dir);
        (f, d)
    };

    let mut grad = vec![0.0; n];
    let mut alpha_prev = 0.0;
    let mut f_prev = f0;
    let mut alpha = alpha_init.max(1e-16);
    const ALPHA_MAX: f64 = 1e6;

    // Bracketing phase.
    let mut bracket: Option<(f64, f64, f64)> = None; // (lo, f_lo, hi)
    for i in 0..30 {
        let (f, d) = phi(alpha, &mut grad);
        evals += 1;
        if f > f0 + C1 * alpha * d0 || (i > 0 && f >= f_prev) {
            bracket = Some((alpha_prev, f_prev, alpha));
            break;
        }
        if d.abs() <= -C2 * d0 {
            let x: Vec<f64> = x0
                .iter()
                .zip(dir)
                .map(|(&xi, &di)| xi + alpha * di)
                .collect();
            return Some(LineSearchResult {
                alpha,
                x,
                f,
                grad,
                evals,
            });
        }
        if d >= 0.0 {
            bracket = Some((alpha, f, alpha_prev));
            break;
        }
        alpha_prev = alpha;
        f_prev = f;
        alpha = (2.0 * alpha).min(ALPHA_MAX);
        if alpha >= ALPHA_MAX {
            return None;
        }
    }
    let (mut lo, mut f_lo, mut hi) = bracket?;

    // Zoom phase: bisection (robust; quadratic interpolation gains little on
    // the noisy bandwidth objectives this is used for).
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let (f, d) = phi(mid, &mut grad);
        evals += 1;
        if f > f0 + C1 * mid * d0 || f >= f_lo {
            hi = mid;
        } else {
            if d.abs() <= -C2 * d0 {
                let x: Vec<f64> = x0.iter().zip(dir).map(|(&xi, &di)| xi + mid * di).collect();
                return Some(LineSearchResult {
                    alpha: mid,
                    x,
                    f,
                    grad,
                    evals,
                });
            }
            if d * (hi - lo) >= 0.0 {
                hi = lo;
            }
            lo = mid;
            f_lo = f;
        }
        if (hi - lo).abs() < 1e-14 {
            break;
        }
    }
    // Fall back to the best bracketed point with plain Armijo acceptance.
    let (f, _) = phi(lo, &mut grad);
    evals += 1;
    if lo > 0.0 && f < f0 {
        let x: Vec<f64> = x0.iter().zip(dir).map(|(&xi, &di)| xi + lo * di).collect();
        return Some(LineSearchResult {
            alpha: lo,
            x,
            f,
            grad,
            evals,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnObjective;

    fn quadratic() -> FnObjective<impl Fn(&[f64], &mut [f64]) -> f64> {
        FnObjective::new(2, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 1.0);
            g[1] = 2.0 * (x[1] + 2.0);
            (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2)
        })
    }

    #[test]
    fn wolfe_on_quadratic_finds_good_step() {
        let obj = quadratic();
        let x0 = [0.0, 0.0];
        let mut g0 = vec![0.0; 2];
        let f0 = obj.eval(&x0, &mut g0);
        let dir: Vec<f64> = g0.iter().map(|&g| -g).collect();
        let res = strong_wolfe(&obj, &x0, f0, &g0, &dir, 1.0).expect("wolfe step");
        assert!(res.f < f0);
        // Exact minimizer along -g from origin for this quadratic is α=0.5.
        assert!((res.alpha - 0.5).abs() < 0.2, "alpha={}", res.alpha);
    }

    #[test]
    fn wolfe_rejects_ascent_direction() {
        let obj = quadratic();
        let x0 = [0.0, 0.0];
        let mut g0 = vec![0.0; 2];
        let f0 = obj.eval(&x0, &mut g0);
        assert!(strong_wolfe(&obj, &x0, f0, &g0, &g0.clone(), 1.0).is_none());
    }

    #[test]
    fn projected_backtracking_respects_bounds() {
        let obj = quadratic();
        // Minimum is at (1,-2) but box forbids x1 < 0.
        let bounds = Bounds::new(vec![-10.0, 0.0], vec![10.0, 10.0]);
        let x0 = [0.0, 5.0];
        let mut g0 = vec![0.0; 2];
        let f0 = obj.eval(&x0, &mut g0);
        let dir: Vec<f64> = g0.iter().map(|&g| -g).collect();
        let res = backtracking_projected(&obj, &bounds, &x0, f0, &g0, &dir, 1.0).expect("step");
        assert!(res.f < f0);
        assert!(bounds.contains(&res.x));
    }

    #[test]
    fn projected_backtracking_none_at_constrained_minimum() {
        let obj = quadratic();
        let bounds = Bounds::new(vec![-10.0, 0.0], vec![10.0, 10.0]);
        // (1, 0) is the box-constrained minimum; any projected step fails.
        let x0 = [1.0, 0.0];
        let mut g0 = vec![0.0; 2];
        let f0 = obj.eval(&x0, &mut g0);
        let dir: Vec<f64> = g0.iter().map(|&g| -g).collect();
        assert!(backtracking_projected(&obj, &bounds, &x0, f0, &g0, &dir, 1.0).is_none());
    }

    #[test]
    fn wolfe_handles_rosenbrock_valley() {
        let obj = crate::testfns::rosenbrock(2);
        let x0 = [-1.2, 1.0];
        let mut g0 = vec![0.0; 2];
        let f0 = obj.eval(&x0, &mut g0);
        let dir: Vec<f64> = g0.iter().map(|&g| -g).collect();
        let res = strong_wolfe(&obj, &x0, f0, &g0, &dir, 1e-3).expect("step");
        assert!(res.f < f0);
    }
}
