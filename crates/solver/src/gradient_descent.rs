//! Projected gradient descent with backtracking.
//!
//! A deliberately simple first-order method: the test suite uses it as an
//! independent cross-check for L-BFGS results, and the KDE batch optimizer
//! falls back to it when the quasi-Newton line search stalls on a noisy
//! objective.

use crate::linesearch::backtracking_projected;
use crate::problem::{Bounds, Objective, OptOutcome, OptResult};

/// Gradient-descent configuration.
#[derive(Debug, Clone)]
pub struct GradientDescentConfig {
    /// Iteration budget.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient infinity norm.
    pub gradient_tolerance: f64,
    /// Convergence threshold on relative objective decrease.
    pub value_tolerance: f64,
    /// Initial trial step for the first iteration.
    pub initial_step: f64,
}

impl Default for GradientDescentConfig {
    fn default() -> Self {
        Self {
            max_iterations: 1000,
            gradient_tolerance: 1e-8,
            value_tolerance: 1e-14,
            initial_step: 1.0,
        }
    }
}

/// Minimizes `obj` over `bounds` from `x0` by steepest descent.
pub fn gradient_descent<O: Objective>(
    obj: &O,
    bounds: &Bounds,
    x0: &[f64],
    config: &GradientDescentConfig,
) -> OptResult {
    let n = obj.dims();
    assert_eq!(x0.len(), n);
    let mut x = x0.to_vec();
    bounds.project(&mut x);
    let mut grad = vec![0.0; n];
    let mut f = obj.eval(&x, &mut grad);
    let mut evaluations = 1;
    let mut alpha = config.initial_step;

    for iter in 0..config.max_iterations {
        if kdesel_math::vecops::norm_inf(&grad) <= config.gradient_tolerance {
            return OptResult {
                x,
                f,
                iterations: iter,
                evaluations,
                outcome: OptOutcome::GradientConverged,
            };
        }
        let dir: Vec<f64> = grad.iter().map(|&g| -g).collect();
        let Some(step) = backtracking_projected(obj, bounds, &x, f, &grad, &dir, alpha) else {
            return OptResult {
                x,
                f,
                iterations: iter,
                evaluations,
                outcome: OptOutcome::LineSearchFailed,
            };
        };
        evaluations += step.evals;
        // Barzilai–Borwein-flavoured warm start for the next trial step.
        alpha = (step.alpha * 2.0).clamp(1e-12, 1e6);

        let f_prev = f;
        x = step.x;
        f = step.f;
        grad = step.grad;

        if (f_prev - f).abs() / f_prev.abs().max(1.0) <= config.value_tolerance {
            return OptResult {
                x,
                f,
                iterations: iter + 1,
                evaluations,
                outcome: OptOutcome::ValueConverged,
            };
        }
    }
    OptResult {
        x,
        f,
        iterations: config.max_iterations,
        evaluations,
        outcome: OptOutcome::MaxIterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns;

    #[test]
    fn minimizes_sphere() {
        let res = gradient_descent(
            &testfns::sphere(4),
            &Bounds::unbounded(4),
            &[1.0, -2.0, 3.0, -4.0],
            &GradientDescentConfig::default(),
        );
        assert!(res.f < 1e-10, "f = {}", res.f);
    }

    #[test]
    fn stays_inside_box() {
        let obj = crate::problem::FnObjective::new(1, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 5.0);
            (x[0] - 5.0).powi(2)
        });
        let bounds = Bounds::uniform(1, 0.0, 2.0);
        let res = gradient_descent(&obj, &bounds, &[1.0], &GradientDescentConfig::default());
        assert!((res.x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn agrees_with_lbfgs_on_booth() {
        let gd = gradient_descent(
            &testfns::booth(),
            &Bounds::unbounded(2),
            &[0.0, 0.0],
            &GradientDescentConfig {
                max_iterations: 5000,
                ..Default::default()
            },
        );
        let lb = crate::lbfgs::lbfgs(
            &testfns::booth(),
            &Bounds::unbounded(2),
            &[0.0, 0.0],
            &crate::lbfgs::LbfgsConfig::default(),
        );
        assert!((gd.x[0] - lb.x[0]).abs() < 1e-3, "{:?} vs {:?}", gd.x, lb.x);
        assert!((gd.x[1] - lb.x[1]).abs() < 1e-3);
    }

    #[test]
    fn rosenbrock_makes_progress_slowly() {
        // GD is expected to be slow in the valley but must monotonically
        // decrease the objective.
        let obj = testfns::rosenbrock(2);
        let res = gradient_descent(
            &obj,
            &Bounds::unbounded(2),
            &[-1.2, 1.0],
            &GradientDescentConfig {
                max_iterations: 200,
                value_tolerance: 0.0,
                ..Default::default()
            },
        );
        let mut g = vec![0.0; 2];
        let f0 = obj.eval(&[-1.2, 1.0], &mut g);
        assert!(res.f < f0 * 0.05, "f = {} (start {})", res.f, f0);
    }
}
