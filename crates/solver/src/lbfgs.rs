//! Projected-gradient L-BFGS for box-constrained minimization.
//!
//! Plays the role of L-BFGS-B [Byrd et al. 1995] in the paper's pipeline
//! (§3.4: "a local optimization algorithm (e.g. L-BFGS-B) to refine the
//! bandwidth"). The implementation is the standard two-loop recursion with
//! a gradient-projection treatment of the box: trial points are projected
//! into the box, curvature pairs are only stored when they satisfy a
//! positive-definiteness guard, and the memory is dropped whenever the
//! active set changes (the curvature collected on a different face is
//! stale).

use crate::linesearch::{backtracking_projected, strong_wolfe};
use crate::problem::{Bounds, Objective, OptOutcome, OptResult};
use std::collections::VecDeque;

/// L-BFGS configuration.
#[derive(Debug, Clone)]
pub struct LbfgsConfig {
    /// History size `m` (number of curvature pairs).
    pub memory: usize,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Convergence threshold on the projected-gradient infinity norm.
    pub gradient_tolerance: f64,
    /// Convergence threshold on relative objective decrease.
    pub value_tolerance: f64,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        Self {
            memory: 8,
            max_iterations: 200,
            gradient_tolerance: 1e-8,
            value_tolerance: 1e-12,
        }
    }
}

/// Component mask of bound constraints active at `x` against gradient `g`
/// (at a bound and the negative gradient points outside).
fn active_set(x: &[f64], g: &[f64], bounds: &Bounds) -> Vec<bool> {
    x.iter()
        .zip(g)
        .zip(bounds.lo().iter().zip(bounds.hi()))
        .map(|((&xi, &gi), (&l, &h))| (xi <= l && gi > 0.0) || (xi >= h && gi < 0.0))
        .collect()
}

/// Projected gradient: zero where a bound blocks descent.
fn projected_gradient(g: &[f64], active: &[bool]) -> Vec<f64> {
    g.iter()
        .zip(active)
        .map(|(&gi, &a)| if a { 0.0 } else { gi })
        .collect()
}

/// Minimizes `obj` over the box `bounds`, starting from `x0`.
///
/// # Panics
/// Panics if `x0.len()` disagrees with the objective or bounds
/// dimensionality, or if `x0` contains NaN.
pub fn lbfgs<O: Objective>(
    obj: &O,
    bounds: &Bounds,
    x0: &[f64],
    config: &LbfgsConfig,
) -> OptResult {
    let res = lbfgs_inner(obj, bounds, x0, config);
    if kdesel_telemetry::enabled() {
        kdesel_telemetry::counter("solver.lbfgs_iterations").add(res.iterations as u64);
        if matches!(res.outcome, OptOutcome::LineSearchFailed) {
            kdesel_telemetry::counter("solver.linesearch_failures").inc();
        }
    }
    res
}

fn lbfgs_inner<O: Objective>(
    obj: &O,
    bounds: &Bounds,
    x0: &[f64],
    config: &LbfgsConfig,
) -> OptResult {
    let n = obj.dims();
    assert_eq!(x0.len(), n);
    assert_eq!(bounds.dims(), n);
    assert!(x0.iter().all(|v| !v.is_nan()), "NaN in starting point");

    let mut x = x0.to_vec();
    bounds.project(&mut x);
    let mut grad = vec![0.0; n];
    let mut f = obj.eval(&x, &mut grad);
    let mut evaluations = 1;

    // Curvature history (s, y, 1/yᵀs).
    let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();
    let mut prev_active = active_set(&x, &grad, bounds);

    let unconstrained = bounds
        .lo()
        .iter()
        .zip(bounds.hi())
        .all(|(&l, &h)| l == f64::NEG_INFINITY && h == f64::INFINITY);

    for iter in 0..config.max_iterations {
        let active = active_set(&x, &grad, bounds);
        let pg = projected_gradient(&grad, &active);
        if kdesel_math::vecops::norm_inf(&pg) <= config.gradient_tolerance {
            return OptResult {
                x,
                f,
                iterations: iter,
                evaluations,
                outcome: OptOutcome::GradientConverged,
            };
        }
        if active != prev_active {
            history.clear();
        }

        // Two-loop recursion on the projected gradient.
        let mut q = pg.clone();
        let mut alphas = Vec::with_capacity(history.len());
        for (s, y, rho) in history.iter().rev() {
            let a = rho * kdesel_math::vecops::dot(s, &q);
            kdesel_math::vecops::axpy(-a, y, &mut q);
            alphas.push(a);
        }
        // Initial Hessian scaling γ = sᵀy / yᵀy from the newest pair.
        if let Some((s, y, _)) = history.back() {
            let sy = kdesel_math::vecops::dot(s, y);
            let yy = kdesel_math::vecops::dot(y, y);
            if yy > 0.0 {
                kdesel_math::vecops::scale(sy / yy, &mut q);
            }
        }
        for ((s, y, rho), a) in history.iter().zip(alphas.iter().rev()) {
            let b = rho * kdesel_math::vecops::dot(y, &q);
            kdesel_math::vecops::axpy(a - b, s, &mut q);
        }
        let mut dir: Vec<f64> = q.iter().map(|&v| -v).collect();
        // Keep active components pinned.
        for (di, &a) in dir.iter_mut().zip(&active) {
            if a {
                *di = 0.0;
            }
        }
        // Safeguard: fall back to steepest descent on a non-descent direction.
        if kdesel_math::vecops::dot(&dir, &pg) >= 0.0 {
            dir = pg.iter().map(|&v| -v).collect();
            history.clear();
        }

        let alpha_init = if history.is_empty() {
            // First step: unit displacement along the gradient scale.
            (1.0 / kdesel_math::vecops::norm2(&dir).max(1e-12)).min(1.0)
        } else {
            1.0
        };

        let ls = if unconstrained {
            strong_wolfe(obj, &x, f, &grad, &dir, alpha_init)
        } else {
            backtracking_projected(obj, bounds, &x, f, &grad, &dir, alpha_init)
        };
        let Some(step) = ls else {
            return OptResult {
                x,
                f,
                iterations: iter,
                evaluations,
                outcome: OptOutcome::LineSearchFailed,
            };
        };
        evaluations += step.evals;

        let s = kdesel_math::vecops::sub(&step.x, &x);
        let y = kdesel_math::vecops::sub(&step.grad, &grad);
        let sy = kdesel_math::vecops::dot(&s, &y);
        // Curvature guard: only store pairs that keep the implicit Hessian
        // positive definite.
        if sy > 1e-10 * kdesel_math::vecops::norm2(&s) * kdesel_math::vecops::norm2(&y) {
            if history.len() == config.memory {
                history.pop_front();
            }
            history.push_back((s, y, 1.0 / sy));
        }

        let f_prev = f;
        x = step.x;
        f = step.f;
        grad = step.grad;
        prev_active = active;

        let rel_decrease = (f_prev - f).abs() / f_prev.abs().max(1.0);
        if rel_decrease <= config.value_tolerance {
            return OptResult {
                x,
                f,
                iterations: iter + 1,
                evaluations,
                outcome: OptOutcome::ValueConverged,
            };
        }
    }

    OptResult {
        x,
        f,
        iterations: config.max_iterations,
        evaluations,
        outcome: OptOutcome::MaxIterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns;

    #[test]
    fn minimizes_sphere() {
        let obj = testfns::sphere(5);
        let res = lbfgs(
            &obj,
            &Bounds::unbounded(5),
            &[3.0, -2.0, 1.0, 4.0, -5.0],
            &LbfgsConfig::default(),
        );
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.f < 1e-12, "f = {}", res.f);
        for v in &res.x {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let obj = testfns::rosenbrock(2);
        let res = lbfgs(
            &obj,
            &Bounds::unbounded(2),
            &[-1.2, 1.0],
            &LbfgsConfig {
                max_iterations: 500,
                ..Default::default()
            },
        );
        assert!(res.f < 1e-8, "f = {} after {} iters", res.f, res.iterations);
        assert!((res.x[0] - 1.0).abs() < 1e-3);
        assert!((res.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn minimizes_rosenbrock_10d() {
        let obj = testfns::rosenbrock(10);
        let res = lbfgs(
            &obj,
            &Bounds::unbounded(10),
            &[0.5; 10],
            &LbfgsConfig {
                max_iterations: 1000,
                ..Default::default()
            },
        );
        assert!(res.f < 1e-6, "f = {}", res.f);
    }

    #[test]
    fn respects_box_constraints() {
        // Sphere shifted so the unconstrained minimum (2, 2) is outside the
        // box [−1,1]²; the constrained solution is (1, 1).
        let obj = crate::problem::FnObjective::new(2, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 2.0);
            g[1] = 2.0 * (x[1] - 2.0);
            (x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2)
        });
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let res = lbfgs(&obj, &bounds, &[0.0, 0.0], &LbfgsConfig::default());
        assert!(bounds.contains(&res.x));
        assert!((res.x[0] - 1.0).abs() < 1e-6, "{:?}", res.x);
        assert!((res.x[1] - 1.0).abs() < 1e-6, "{:?}", res.x);
        assert!((res.f - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_active_constraints() {
        // Minimum at (2, 0.5): x0 hits its bound, x1 interior.
        let obj = crate::problem::FnObjective::new(2, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 2.0);
            g[1] = 2.0 * (x[1] - 0.5);
            (x[0] - 2.0).powi(2) + (x[1] - 0.5).powi(2)
        });
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let res = lbfgs(&obj, &bounds, &[-0.5, -0.5], &LbfgsConfig::default());
        assert!((res.x[0] - 1.0).abs() < 1e-6);
        assert!((res.x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn starting_point_outside_box_is_projected() {
        let obj = testfns::sphere(2);
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let res = lbfgs(&obj, &bounds, &[100.0, -100.0], &LbfgsConfig::default());
        assert!(res.f < 1e-10);
    }

    #[test]
    fn converges_immediately_at_minimum() {
        let obj = testfns::sphere(3);
        let res = lbfgs(
            &obj,
            &Bounds::unbounded(3),
            &[0.0; 3],
            &LbfgsConfig::default(),
        );
        assert_eq!(res.iterations, 0);
        assert_eq!(res.outcome, OptOutcome::GradientConverged);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let obj = testfns::rosenbrock(2);
        let res = lbfgs(
            &obj,
            &Bounds::unbounded(2),
            &[-1.2, 1.0],
            &LbfgsConfig {
                max_iterations: 3,
                gradient_tolerance: 0.0,
                value_tolerance: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(res.iterations, 3);
        assert_eq!(res.outcome, OptOutcome::MaxIterations);
    }

    #[test]
    fn booth_function() {
        let res = lbfgs(
            &testfns::booth(),
            &Bounds::unbounded(2),
            &[0.0, 0.0],
            &LbfgsConfig::default(),
        );
        assert!((res.x[0] - 1.0).abs() < 1e-5);
        assert!((res.x[1] - 3.0).abs() < 1e-5);
    }
}
