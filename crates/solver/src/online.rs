//! Online (stochastic) first-order updaters.
//!
//! The paper's adaptive bandwidth loop (§4.1, Listing 1) updates the model
//! after each mini-batch of query feedback with RMSprop [Tieleman & Hinton
//! 2012], "the mini-batch variant of the earlier Rprop": per-dimension
//! learning rates grow when consecutive mini-batch gradients agree in sign
//! and shrink when they disagree, and the gradient is normalized by a
//! running average of its squared magnitude before being applied. Both
//! Rprop and RMSprop are implemented; the paper's parameter choices are the
//! defaults.

/// RMSprop configuration. Defaults are the paper's (§4.1): smoothing
/// `α = 0.9`, rates clamped to `[10⁻⁶, 50]`, multiplicative adjustment
/// `×1.2 / ×0.5`.
#[derive(Debug, Clone)]
pub struct RmsPropConfig {
    /// Smoothing rate `α` of the running squared-gradient average.
    pub smoothing: f64,
    /// Initial per-dimension learning rate.
    pub rate_init: f64,
    /// Smallest allowed learning rate `λ_min`.
    pub rate_min: f64,
    /// Largest allowed learning rate `λ_max`.
    pub rate_max: f64,
    /// Multiplicative increase `λ_inc` on sign agreement.
    pub rate_inc: f64,
    /// Multiplicative decrease `λ_dec` on sign disagreement.
    pub rate_dec: f64,
    /// Numerical floor inside the √ of the normalizer.
    pub epsilon: f64,
}

impl Default for RmsPropConfig {
    fn default() -> Self {
        Self {
            smoothing: 0.9,
            rate_init: 1.0,
            rate_min: 1e-6,
            rate_max: 50.0,
            rate_inc: 1.2,
            rate_dec: 0.5,
            epsilon: 1e-12,
        }
    }
}

/// RMSprop state.
#[derive(Debug, Clone)]
pub struct RmsProp {
    config: RmsPropConfig,
    rates: Vec<f64>,
    mean_sq: Vec<f64>,
    prev_grad: Vec<f64>,
    steps: u64,
}

impl RmsProp {
    /// Creates an updater for `dims` parameters.
    pub fn new(dims: usize, config: RmsPropConfig) -> Self {
        assert!(dims > 0);
        assert!(config.rate_min <= config.rate_max);
        assert!((0.0..1.0).contains(&config.smoothing));
        Self {
            rates: vec![config.rate_init.clamp(config.rate_min, config.rate_max); dims],
            mean_sq: vec![0.0; dims],
            prev_grad: vec![0.0; dims],
            steps: 0,
            config,
        }
    }

    /// Consumes one (mini-batch-averaged) gradient and returns the update
    /// vector `Δ` to be **added** to the parameters (the negative scaled
    /// gradient).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn step(&mut self, grad: &[f64]) -> Vec<f64> {
        assert_eq!(grad.len(), self.rates.len());
        self.steps += 1;
        let c = &self.config;
        let mut delta = Vec::with_capacity(grad.len());
        #[allow(clippy::needless_range_loop)] // parallel indexing of state arrays
        for i in 0..grad.len() {
            let g = grad[i];
            // Running average of squared magnitudes (Listing 1, line 14).
            self.mean_sq[i] = c.smoothing * self.mean_sq[i] + (1.0 - c.smoothing) * g * g;
            // Rprop-style rate adaptation on sign agreement (lines 15-16).
            let agreement = g * self.prev_grad[i];
            if agreement > 0.0 {
                self.rates[i] = (self.rates[i] * c.rate_inc).min(c.rate_max);
            } else if agreement < 0.0 {
                self.rates[i] = (self.rates[i] * c.rate_dec).max(c.rate_min);
            }
            self.prev_grad[i] = g;
            // Scaled update (line 17).
            let norm = (self.mean_sq[i] + c.epsilon).sqrt();
            let d = if norm > 0.0 {
                -self.rates[i] * g / norm
            } else {
                0.0
            };
            delta.push(d);
        }
        delta
    }

    /// Per-dimension learning rates (for diagnostics/ablations).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of updates performed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Resets adaptation state (used after model rebuilds).
    pub fn reset(&mut self) {
        let dims = self.rates.len();
        let init = self
            .config
            .rate_init
            .clamp(self.config.rate_min, self.config.rate_max);
        self.rates = vec![init; dims];
        self.mean_sq = vec![0.0; dims];
        self.prev_grad = vec![0.0; dims];
        self.steps = 0;
    }
}

/// Rprop configuration [Riedmiller & Braun 1993].
#[derive(Debug, Clone)]
pub struct RpropConfig {
    /// Initial step size.
    pub step_init: f64,
    /// Smallest step size.
    pub step_min: f64,
    /// Largest step size.
    pub step_max: f64,
    /// Multiplicative increase on sign agreement (`η⁺`).
    pub step_inc: f64,
    /// Multiplicative decrease on sign change (`η⁻`).
    pub step_dec: f64,
}

impl Default for RpropConfig {
    fn default() -> Self {
        Self {
            step_init: 0.1,
            step_min: 1e-8,
            step_max: 50.0,
            step_inc: 1.2,
            step_dec: 0.5,
        }
    }
}

/// Rprop state (iRprop⁻ variant: on sign change the step shrinks and the
/// update is skipped for that dimension).
#[derive(Debug, Clone)]
pub struct Rprop {
    config: RpropConfig,
    steps_sizes: Vec<f64>,
    prev_grad: Vec<f64>,
}

impl Rprop {
    /// Creates an updater for `dims` parameters.
    pub fn new(dims: usize, config: RpropConfig) -> Self {
        assert!(dims > 0);
        Self {
            steps_sizes: vec![config.step_init; dims],
            prev_grad: vec![0.0; dims],
            config,
        }
    }

    /// Consumes one gradient, returns the update `Δ` to add to parameters.
    pub fn step(&mut self, grad: &[f64]) -> Vec<f64> {
        assert_eq!(grad.len(), self.steps_sizes.len());
        let c = &self.config;
        let mut delta = Vec::with_capacity(grad.len());
        #[allow(clippy::needless_range_loop)] // parallel indexing of state arrays
        for i in 0..grad.len() {
            let g = grad[i];
            let agreement = g * self.prev_grad[i];
            if agreement > 0.0 {
                self.steps_sizes[i] = (self.steps_sizes[i] * c.step_inc).min(c.step_max);
                delta.push(-g.signum() * self.steps_sizes[i]);
                self.prev_grad[i] = g;
            } else if agreement < 0.0 {
                self.steps_sizes[i] = (self.steps_sizes[i] * c.step_dec).max(c.step_min);
                // iRprop⁻: skip the update, forget the gradient sign.
                delta.push(0.0);
                self.prev_grad[i] = 0.0;
            } else {
                delta.push(-g.signum() * self.steps_sizes[i]);
                self.prev_grad[i] = g;
            }
        }
        delta
    }
}

/// Accumulates per-query gradients into mini-batches (§4.1: "we average the
/// gradients from a small number of queries before updating the model";
/// `N = 10` in the paper).
#[derive(Debug, Clone)]
pub struct GradientBatch {
    sum: Vec<f64>,
    count: usize,
    batch_size: usize,
}

impl GradientBatch {
    /// Creates an accumulator that releases an averaged gradient every
    /// `batch_size` submissions.
    pub fn new(dims: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        Self {
            sum: vec![0.0; dims],
            count: 0,
            batch_size,
        }
    }

    /// Adds one gradient. Returns the averaged mini-batch gradient when the
    /// batch fills, resetting the accumulator.
    pub fn push(&mut self, grad: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(grad.len(), self.sum.len());
        for (s, &g) in self.sum.iter_mut().zip(grad) {
            *s += g;
        }
        self.count += 1;
        if self.count == self.batch_size {
            let avg: Vec<f64> = self
                .sum
                .iter()
                .map(|&s| s / self.batch_size as f64)
                .collect();
            self.sum.iter_mut().for_each(|s| *s = 0.0);
            self.count = 0;
            Some(avg)
        } else {
            None
        }
    }

    /// Observations in the current (partial) batch.
    pub fn pending(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs an updater against the 2D quadratic `f(x) = ½‖x − t‖²`.
    fn run_quadratic<F: FnMut(&[f64]) -> Vec<f64>>(
        mut step: F,
        start: [f64; 2],
        target: [f64; 2],
        iters: usize,
    ) -> [f64; 2] {
        let mut x = start;
        for _ in 0..iters {
            let grad = [x[0] - target[0], x[1] - target[1]];
            let d = step(&grad);
            x[0] += d[0];
            x[1] += d[1];
        }
        x
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let mut opt = RmsProp::new(
            2,
            RmsPropConfig {
                rate_init: 0.1,
                ..Default::default()
            },
        );
        let x = run_quadratic(|g| opt.step(g), [5.0, -3.0], [1.0, 2.0], 500);
        assert!((x[0] - 1.0).abs() < 0.05, "{x:?}");
        assert!((x[1] - 2.0).abs() < 0.05, "{x:?}");
    }

    #[test]
    fn rprop_converges_on_quadratic() {
        let mut opt = Rprop::new(2, RpropConfig::default());
        let x = run_quadratic(|g| opt.step(g), [5.0, -3.0], [1.0, 2.0], 300);
        assert!((x[0] - 1.0).abs() < 0.05, "{x:?}");
        assert!((x[1] - 2.0).abs() < 0.05, "{x:?}");
    }

    #[test]
    fn rmsprop_rates_grow_on_agreement_and_shrink_on_flip() {
        let mut opt = RmsProp::new(1, RmsPropConfig::default());
        let r0 = opt.rates()[0];
        opt.step(&[1.0]);
        opt.step(&[1.0]); // same sign → rate grows
        let grown = opt.rates()[0];
        assert!(grown > r0, "{grown} <= {r0}");
        opt.step(&[-1.0]); // flip → rate shrinks
        assert!(opt.rates()[0] < grown);
    }

    #[test]
    fn rmsprop_rates_respect_clamps() {
        let cfg = RmsPropConfig {
            rate_init: 1.0,
            rate_min: 0.5,
            rate_max: 2.0,
            ..Default::default()
        };
        let mut opt = RmsProp::new(1, cfg);
        for _ in 0..50 {
            opt.step(&[1.0]);
        }
        assert!(opt.rates()[0] <= 2.0);
        for i in 0..50 {
            opt.step(&[if i % 2 == 0 { 1.0 } else { -1.0 }]);
        }
        assert!(opt.rates()[0] >= 0.5);
    }

    #[test]
    fn rmsprop_normalizes_gradient_scale() {
        // Whatever the gradient magnitude, the normalized step magnitude
        // approaches rate·|g|/√mean(g²) = rate for a constant gradient.
        for scale in [1e-3, 1.0, 1e6] {
            let mut opt = RmsProp::new(
                1,
                RmsPropConfig {
                    rate_init: 0.1,
                    rate_inc: 1.0, // freeze rate adaptation
                    ..Default::default()
                },
            );
            let mut last = 0.0;
            for _ in 0..200 {
                last = opt.step(&[scale])[0];
            }
            assert!(
                (last.abs() - 0.1).abs() < 0.01,
                "scale {scale}: step {last}"
            );
        }
    }

    #[test]
    fn rmsprop_zero_gradient_is_noop() {
        let mut opt = RmsProp::new(3, RmsPropConfig::default());
        let d = opt.step(&[0.0, 0.0, 0.0]);
        assert_eq!(d, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut opt = RmsProp::new(2, RmsPropConfig::default());
        opt.step(&[1.0, -1.0]);
        opt.step(&[1.0, 1.0]);
        opt.reset();
        assert_eq!(opt.steps(), 0);
        assert!(opt.rates().iter().all(|&r| (r - 1.0).abs() < 1e-12));
    }

    #[test]
    fn gradient_batch_averages() {
        let mut batch = GradientBatch::new(2, 3);
        assert!(batch.push(&[3.0, 0.0]).is_none());
        assert!(batch.push(&[0.0, 3.0]).is_none());
        assert_eq!(batch.pending(), 2);
        let avg = batch.push(&[3.0, 3.0]).expect("batch full");
        assert_eq!(avg, vec![2.0, 2.0]);
        assert_eq!(batch.pending(), 0);
        // The accumulator must be clean for the next batch.
        assert!(batch.push(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn rprop_skips_update_on_sign_change() {
        let mut opt = Rprop::new(1, RpropConfig::default());
        opt.step(&[1.0]);
        let d = opt.step(&[-1.0]);
        assert_eq!(d[0], 0.0);
    }
}
