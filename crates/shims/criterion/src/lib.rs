//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros — on a simple
//! wall-clock harness: a warm-up pass sizes the iteration count toward a
//! target measurement time, then the median of several measurement
//! batches is reported as ns/iter (plus derived element throughput).
//!
//! No statistical regression machinery, HTML reports, or CLI filtering —
//! run with `cargo bench` and read the table from stdout.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display value.
    pub fn new<P: std::fmt::Display>(function_name: impl Into<String>, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    /// Target wall time per measurement batch.
    measurement_time: Duration,
    /// Measurement batches per benchmark (median is reported).
    batches: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(400),
            batches: 5,
        }
    }
}

impl Criterion {
    /// Sets the measurement batch count (upstream's statistical sample
    /// size; here the median-of-batches count). Values below 2 are
    /// clamped so a median still exists.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.batches = (n as u32).max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let (ns, _) = run_benchmark(self, f);
        report(&id.to_string(), ns, None);
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let (ns, _) = run_benchmark(self.criterion, f);
        report(&id.to_string(), ns, self.throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let (ns, _) = run_benchmark(self.criterion, |b| f(b, input));
        report(&id.to_string(), ns, self.throughput);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Runs warm-up, sizes the batch, then returns (median ns/iter, iters).
fn run_benchmark<F: FnMut(&mut Bencher)>(criterion: &Criterion, mut f: F) -> (f64, u64) {
    // Warm-up with one iteration to estimate the per-iter cost.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iterations =
        (criterion.measurement_time.as_nanos() / criterion.batches as u128 / per_iter.as_nanos())
            .clamp(1, 1_000_000_000) as u64;

    let mut samples: Vec<f64> = (0..criterion.batches)
        .map(|_| {
            let mut b = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iterations as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], iterations)
}

fn report(id: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("  {id:<40} {ns_per_iter:>14.1} ns/iter{rate}");
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    // Upstream's configured form.
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_closure() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(10),
            batches: 3,
        };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        let mut runs = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(
            BenchmarkId::new("backend", 1024).to_string(),
            "backend/1024"
        );
    }
}
