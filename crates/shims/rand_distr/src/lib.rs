//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Normal`] distribution (the only one kdesel uses) via
//! the inverse-CDF transform: one uniform draw per sample, mapped through
//! Acklam's rational approximation of the standard normal quantile with
//! one Halley refinement step (relative error well below 1e-12 — far
//! tighter than any statistical use here requires). The upstream crate
//! samples with a ziggurat, so streams are not bit-compatible; behavior
//! within this workspace is deterministic per seed.

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error from invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Standard deviation was negative or non-finite.
    BadVariance,
    /// Mean was non-finite.
    BadMean,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            Error::BadMean => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() {
            return Err(Error::BadMean);
        }
        if !(std_dev.is_finite() && std_dev >= 0.0) {
            return Err(Error::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Uniform in the open interval (0, 1): offsetting by half an ulp
        // of the 2^-53 grid keeps the quantile finite at both ends.
        let u = ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        self.mean + self.std_dev * standard_normal_quantile(u)
    }
}

/// Standard normal quantile Φ⁻¹(p) for p ∈ (0, 1): Acklam's rational
/// approximation polished with one Halley step on Φ.
fn standard_normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement against Φ(x) − p.
    let e = 0.5 * erfc_local(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Complementary error function (Press et al. rational Chebyshev fit,
/// |ε| < 1.2e-7, then squared by the Halley step above). Local copy to
/// keep this shim dependency-free beyond `rand`.
fn erfc_local(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn quantile_hits_known_points() {
        assert!((standard_normal_quantile(0.5)).abs() < 1e-12);
        assert!((standard_normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((standard_normal_quantile(0.025) + 1.959_963_984_540_054).abs() < 1e-9);
        assert!((standard_normal_quantile(0.841_344_746_068_543) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_match_moments() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let normal = Normal::new(1.5, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 1.5);
        }
    }
}
