//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] for numeric ranges, tuples, and `collection::vec`, plus
//! `prop_flat_map`/`prop_map` combinators and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs in the message (each strategy value is
//! `Debug`), which is enough to reproduce — generation is deterministic
//! per test name.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the (large) suite fast
        // while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// The deterministic generator driving a property test.
pub type TestRng = StdRng;

/// Derives a per-test seed from the test's name (FNV-1a).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values for one property-test input.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a new strategy from each generated value (dependent
    /// generation, e.g. paired vectors of equal length).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Maps generated values through a function.
    fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let seed = self.base.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + std::fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`].
    pub trait IntoLen {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of `element` values with length drawn from
    /// `len` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
    pub use rand::Rng;
}

/// Explicit test-case failure, for bodies that `return Err(..)` instead
/// of asserting.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Asserts a property, reporting the failing expression on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn` runs `cases` times over values
/// drawn from its binder strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // The body runs inside a `Result` closure so tests can
                    // `return Err(TestCaseError::fail(..))` as upstream
                    // proptest allows; assertion panics propagate as-is.
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property failed on case {case}: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::rng_for("ranges_generate_in_bounds");
        for _ in 0..1000 {
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (1usize..9).generate(&mut rng);
            assert!((1..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::rng_for("vec_strategy_respects_length_range");
        let s = crate::collection::vec(0.0f64..1.0, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn flat_map_supports_dependent_generation() {
        let mut rng = crate::rng_for("flat_map_supports_dependent_generation");
        let pair = (1usize..10).prop_flat_map(|n| {
            (
                crate::collection::vec(0.0f64..1.0, n),
                crate::collection::vec(0.0f64..1.0, n),
            )
        });
        for _ in 0..50 {
            let (a, b) = pair.generate(&mut rng);
            assert_eq!(a.len(), b.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_with_config_runs(x in 0.0f64..1.0, n in 1usize..4) {
            prop_assert!(x >= 0.0 && x < 1.0);
            prop_assert!(n >= 1 && n < 4);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_runs(x in -5i64..5) {
            prop_assert!((-5..5).contains(&x));
        }

        #[test]
        fn tuple_pattern_binders((a, b) in (0u64..10, 0u64..10)) {
            prop_assert!(a < 10 && b < 10);
        }
    }
}
