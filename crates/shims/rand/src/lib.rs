//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of the `rand 0.8` API that kdesel uses, implemented
//! from scratch on top of xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64. The *API* is compatible; the generated streams are not
//! bit-identical to upstream `rand`, so seeds are only reproducible
//! within this workspace (which is all the experiments require).
//!
//! Supported surface:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` (half-open and
//!   inclusive ranges over the float and integer types the repo uses),
//!   `gen_bool`, and `fill` (unused but cheap);
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`seq::SliceRandom`] with `shuffle` and `choose`;
//! * [`distributions::Distribution`], re-exported by the `rand_distr`
//!   shim.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling for `gen()`.
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// `u64` bits → `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform in `[0, range)` via 128-bit multiply with rejection
/// (Lemire's method). `range` must be nonzero.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let threshold = range.wrapping_neg() % range; // 2^64 mod range
    loop {
        let m = (rng.next_u64() as u128) * (range as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types usable with `gen_range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`; `[low, high]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        let x = low + (high - low) * unit_f64(rng.next_u64());
        if !inclusive && x >= high {
            // Rounding pushed us onto the open endpoint: step back one ulp.
            f64::from_bits(high.to_bits() - 1).max(low)
        } else {
            x.clamp(low, high)
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                let span = if inclusive { span + 1 } else { span };
                if span == 0 {
                    // Inclusive full-width range wrapped to zero.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u64, usize, u32, u16, u8);

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                let span = if inclusive { span + 1 } else { span };
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i64 as u64, i32 as u32, isize as usize);

/// Ranges acceptable to `gen_range`.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range on empty range");
        T::sample_uniform(rng, low, high, true)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator upstream `rand` uses — streams differ
    /// from upstream for equal seeds, but are stable within this
    /// workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro
            // authors; avoids the all-zero state for every seed.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::{Rng, RngCore, SampleUniform};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the first `amount` elements into place (a partial
        /// Fisher–Yates pass), returning `(shuffled, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_uniform(rng, 0, i + 1, false);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let take = amount.min(self.len());
            for i in 0..take {
                let j = usize::sample_uniform(rng, i, self.len(), false);
                self.swap(i, j);
            }
            self.split_at_mut(take)
        }
    }
}

pub mod distributions {
    //! The distribution abstraction (`rand_distr` builds on this).

    use super::RngCore;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(0..13usize);
            assert!(i < 13);
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
            let inc = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&inc));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.as_slice().choose(&mut rng).unwrap();
            seen[x / 10 - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
