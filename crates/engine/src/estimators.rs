//! Unified estimator construction and feedback plumbing.

use kdesel_device::{Backend, Device};
use kdesel_estimators::{
    ExactScanEstimator, HybridEstimator, LearnedConfig, LearnedEstimator, RouterConfig,
};
use kdesel_hist::{AviEstimator, SthConfig, SthHoles};
use kdesel_kde::{
    AdaptiveConfig, AdaptiveKde, BatchConfig, BatchKde, CvConfig, HeuristicKde, KarmaConfig,
    KernelFn, ScvKde,
};
use kdesel_sample::{ReservoirDecision, ReservoirSampler, SampleEstimator};
use kdesel_storage::{sampling, Table};
use kdesel_types::{LabelledQuery, MemoryBudget, Precision, QueryFeedback, Rect};
use rand::Rng;

/// The five estimators of the paper's evaluation (§6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// KDE with Scott's-rule bandwidth.
    Heuristic,
    /// KDE with smoothed-cross-validation bandwidth.
    Scv,
    /// KDE with workload-optimized bandwidth (§3).
    Batch,
    /// Self-tuning KDE (§4): online bandwidth + Karma maintenance.
    Adaptive,
    /// The STHoles multidimensional histogram.
    SthHoles,
    /// Attribute-value-independence baseline (per-dim equi-depth
    /// histograms, multiplied) — §2.2's strawman.
    Avi,
    /// Naive sample-counting baseline (§2.3's "naïve" sampling estimator).
    Sampling,
    /// Naru-style autoregressive learned estimator (bake-off family).
    Learned,
    /// Exact scan over a staged table snapshot (bake-off family).
    Exact,
    /// KDE + learned + exact behind the hybrid cost/error router.
    Hybrid,
}

impl EstimatorKind {
    /// All kinds of the paper's evaluation (§6.1.1), in its order.
    pub const ALL: [EstimatorKind; 5] = [
        EstimatorKind::SthHoles,
        EstimatorKind::Heuristic,
        EstimatorKind::Scv,
        EstimatorKind::Batch,
        EstimatorKind::Adaptive,
    ];

    /// The paper's five plus the §2 baselines (AVI, naive sampling).
    pub const EXTENDED: [EstimatorKind; 7] = [
        EstimatorKind::Avi,
        EstimatorKind::Sampling,
        EstimatorKind::SthHoles,
        EstimatorKind::Heuristic,
        EstimatorKind::Scv,
        EstimatorKind::Batch,
        EstimatorKind::Adaptive,
    ];

    /// The bake-off line-up: the paper's self-tuning KDE against the
    /// learned and exact families, plus the hybrid router over all three.
    pub const BAKEOFF: [EstimatorKind; 4] = [
        EstimatorKind::Adaptive,
        EstimatorKind::Learned,
        EstimatorKind::Exact,
        EstimatorKind::Hybrid,
    ];

    /// Every kind the engine can build: the extended paper line-up plus
    /// the bake-off families.
    pub const FULL: [EstimatorKind; 10] = [
        EstimatorKind::Avi,
        EstimatorKind::Sampling,
        EstimatorKind::SthHoles,
        EstimatorKind::Heuristic,
        EstimatorKind::Scv,
        EstimatorKind::Batch,
        EstimatorKind::Adaptive,
        EstimatorKind::Learned,
        EstimatorKind::Exact,
        EstimatorKind::Hybrid,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Heuristic => "heuristic",
            EstimatorKind::Scv => "scv",
            EstimatorKind::Batch => "batch",
            EstimatorKind::Adaptive => "adaptive",
            EstimatorKind::SthHoles => "stholes",
            EstimatorKind::Avi => "avi",
            EstimatorKind::Sampling => "sampling",
            EstimatorKind::Learned => "learned",
            EstimatorKind::Exact => "exact",
            EstimatorKind::Hybrid => "hybrid",
        }
    }

    /// Parses a report name back to its kind (the inverse of
    /// [`name`](Self::name)); `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        EstimatorKind::FULL.into_iter().find(|k| k.name() == name)
    }
}

/// Construction parameters shared by the experiments.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Memory budget (defaults to the paper's `d · 4 KiB`).
    pub budget: MemoryBudget,
    /// Precision assumed by the budget accounting. The paper's GPU buffers
    /// are f32; this port computes in f64 but sizes models by f32
    /// accounting by default so model scales match the paper.
    pub precision: Precision,
    /// Device backend for the KDE estimators.
    pub backend: Backend,
    /// Kernel function.
    pub kernel: KernelFn,
    /// Batch-optimizer settings.
    pub batch: BatchConfig,
    /// CV-selector settings.
    pub cv: CvConfig,
    /// Adaptive-tuner settings.
    pub adaptive: AdaptiveConfig,
    /// Karma-maintenance settings.
    pub karma: KarmaConfig,
    /// Learned-estimator settings (bake-off families).
    pub learned: LearnedConfig,
    /// Hybrid-router settings (bake-off families).
    pub router: RouterConfig,
}

impl BuildConfig {
    /// The paper's configuration for dimensionality `d`.
    pub fn paper_default(dims: usize) -> Self {
        Self {
            budget: MemoryBudget::paper_default(dims),
            precision: Precision::F32,
            backend: Backend::CpuPar,
            kernel: KernelFn::Gaussian,
            batch: BatchConfig::default(),
            cv: CvConfig::default(),
            adaptive: AdaptiveConfig::default(),
            karma: KarmaConfig::default(),
            learned: LearnedConfig::default(),
            router: RouterConfig::default(),
        }
    }

    /// Reduces the optimizer budgets (multistart rounds, CV sample caps)
    /// for quick runs on weak machines. Preserves every qualitative result;
    /// the paper-scale profile is the default.
    pub fn with_fast_optimizers(mut self) -> Self {
        self.batch.multistart.rounds = 1;
        self.batch.multistart.samples_per_round = 6;
        self.batch.multistart.local.max_iterations = 40;
        self.cv.multistart.rounds = 1;
        self.cv.multistart.samples_per_round = 4;
        self.cv.max_points = 384;
        self
    }

    /// KDE sample size under this budget.
    pub fn sample_points(&self, dims: usize) -> usize {
        self.budget.kde_sample_points(dims, self.precision).max(2)
    }

    /// STHoles bucket budget under this budget.
    pub fn stholes_buckets(&self, dims: usize) -> usize {
        self.budget.stholes_buckets(dims, self.precision).max(4)
    }
}

/// One estimator of any kind, with the feedback plumbing it needs.
// Variant sizes differ by design: the enum is built a handful of times
// per experiment, so boxing the large variants buys nothing.
#[allow(clippy::large_enum_variant)]
pub enum AnyEstimator {
    /// Scott's-rule KDE.
    Heuristic(HeuristicKde),
    /// SCV-bandwidth KDE.
    Scv(ScvKde),
    /// Workload-optimized KDE.
    Batch(BatchKde),
    /// Self-tuning KDE plus its host-side reservoir state.
    Adaptive {
        /// The estimator.
        kde: AdaptiveKde,
        /// Host-side reservoir decision procedure for inserts.
        reservoir: ReservoirSampler,
    },
    /// STHoles histogram.
    SthHoles(SthHoles),
    /// Independence-assumption baseline.
    Avi(AviEstimator),
    /// Sample-counting baseline.
    Sampling(SampleEstimator),
    /// Naru-style autoregressive learned estimator.
    Learned(LearnedEstimator),
    /// Exact scan over a staged snapshot of the full table.
    Exact(ExactScanEstimator),
    /// Hybrid bake-off estimator plus the reservoir state its KDE
    /// member needs for inserts.
    Hybrid {
        /// The routed three-family estimator.
        hybrid: Box<HybridEstimator>,
        /// Host-side reservoir decision procedure for inserts.
        reservoir: ReservoirSampler,
    },
}

impl AnyEstimator {
    /// Builds an estimator of `kind` over `table`, using `sample`
    /// (row-major, as produced by ANALYZE) for the KDE variants and
    /// `training` for the workload-driven ones.
    pub fn build<R: Rng + ?Sized>(
        kind: EstimatorKind,
        table: &Table,
        sample: &[f64],
        training: &[LabelledQuery],
        config: &BuildConfig,
        rng: &mut R,
    ) -> Self {
        let dims = table.dims();
        let device = || Device::new(config.backend);
        match kind {
            EstimatorKind::Heuristic => {
                AnyEstimator::Heuristic(HeuristicKde::new(device(), sample, dims, config.kernel))
            }
            EstimatorKind::Scv => AnyEstimator::Scv(ScvKde::new(
                device(),
                sample,
                dims,
                config.kernel,
                &config.cv,
                rng,
            )),
            EstimatorKind::Batch => AnyEstimator::Batch(BatchKde::new(
                device(),
                sample,
                dims,
                config.kernel,
                training,
                &config.batch,
                rng,
            )),
            EstimatorKind::Adaptive => {
                let kde = AdaptiveKde::new(
                    device(),
                    sample,
                    dims,
                    config.kernel,
                    config.adaptive.clone(),
                    config.karma.clone(),
                );
                let capacity = kde.model().sample_size();
                let seen = (table.row_count() as u64).max(capacity as u64);
                AnyEstimator::Adaptive {
                    kde,
                    reservoir: ReservoirSampler::new(capacity, seen),
                }
            }
            EstimatorKind::SthHoles => {
                let domain = table
                    .bounding_box()
                    .unwrap_or_else(|| Rect::cube(dims, 0.0, 1.0));
                let mut hist = SthHoles::new(
                    domain,
                    table.row_count() as u64,
                    SthConfig {
                        max_buckets: config.stholes_buckets(dims),
                    },
                );
                // STHoles trains from feedback: replay the training workload
                // so the comparison to Batch (which consumes the same
                // queries) is fair, as in §6.2.
                for q in training {
                    hist.refine(&q.region, |r| table.count_in(r));
                }
                AnyEstimator::SthHoles(hist)
            }
            EstimatorKind::Avi => {
                // Fair budget: the same scalar count the KDE sample uses,
                // spent on histogram boundaries instead.
                let scalars = config.budget.bytes() / config.precision.bytes();
                let buckets = (scalars / dims).saturating_sub(1).max(8);
                AnyEstimator::Avi(AviEstimator::build(sample, dims, buckets))
            }
            EstimatorKind::Sampling => AnyEstimator::Sampling(SampleEstimator::new(sample, dims)),
            EstimatorKind::Learned => {
                AnyEstimator::Learned(LearnedEstimator::train(sample, dims, &config.learned))
            }
            EstimatorKind::Exact => {
                AnyEstimator::Exact(ExactScanEstimator::new(device(), &flat_rows(table), dims))
            }
            EstimatorKind::Hybrid => {
                // The KDE and learned members work from the ANALYZE sample
                // like their standalone kinds; the exact member scans the
                // full table — that is its whole value proposition.
                let kde = AdaptiveKde::new(
                    device(),
                    sample,
                    dims,
                    config.kernel,
                    config.adaptive.clone(),
                    config.karma.clone(),
                );
                let learned = LearnedEstimator::train(sample, dims, &config.learned);
                let exact = ExactScanEstimator::new(device(), &flat_rows(table), dims);
                let capacity = kde.model().sample_size();
                let seen = (table.row_count() as u64).max(capacity as u64);
                let hybrid = HybridEstimator::new(kde, learned, exact, config.router.clone())
                    .with_learned_config(config.learned.clone());
                AnyEstimator::Hybrid {
                    hybrid: Box::new(hybrid),
                    reservoir: ReservoirSampler::new(capacity, seen),
                }
            }
        }
    }

    /// Which kind this estimator is.
    pub fn kind(&self) -> EstimatorKind {
        match self {
            AnyEstimator::Heuristic(_) => EstimatorKind::Heuristic,
            AnyEstimator::Scv(_) => EstimatorKind::Scv,
            AnyEstimator::Batch(_) => EstimatorKind::Batch,
            AnyEstimator::Adaptive { .. } => EstimatorKind::Adaptive,
            AnyEstimator::SthHoles(_) => EstimatorKind::SthHoles,
            AnyEstimator::Avi(_) => EstimatorKind::Avi,
            AnyEstimator::Sampling(_) => EstimatorKind::Sampling,
            AnyEstimator::Learned(_) => EstimatorKind::Learned,
            AnyEstimator::Exact(_) => EstimatorKind::Exact,
            AnyEstimator::Hybrid { .. } => EstimatorKind::Hybrid,
        }
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Estimates the selectivity of `region`.
    pub fn estimate(&mut self, region: &Rect) -> f64 {
        match self {
            AnyEstimator::Heuristic(e) => kdesel_types::SelectivityEstimator::estimate(e, region),
            AnyEstimator::Scv(e) => kdesel_types::SelectivityEstimator::estimate(e, region),
            AnyEstimator::Batch(e) => kdesel_types::SelectivityEstimator::estimate(e, region),
            AnyEstimator::Adaptive { kde, .. } => {
                kdesel_types::SelectivityEstimator::estimate(kde, region)
            }
            AnyEstimator::SthHoles(h) => h.estimate_selectivity(region),
            AnyEstimator::Avi(a) => a.estimate(region),
            AnyEstimator::Sampling(s) => s.estimate(region),
            AnyEstimator::Learned(e) => e.estimate(region),
            AnyEstimator::Exact(e) => e.estimate(region),
            AnyEstimator::Hybrid { hybrid, .. } => hybrid.estimate_routed(region).0,
        }
    }

    /// Delivers post-execution feedback, performing any maintenance the
    /// estimator requires against the live table (Karma replacements for
    /// Adaptive, per-bucket counts for STHoles).
    pub fn handle_feedback<R: Rng + ?Sized>(
        &mut self,
        table: &Table,
        feedback: &QueryFeedback,
        rng: &mut R,
    ) {
        match self {
            AnyEstimator::Heuristic(_)
            | AnyEstimator::Scv(_)
            | AnyEstimator::Batch(_)
            | AnyEstimator::Avi(_)
            | AnyEstimator::Sampling(_)
            | AnyEstimator::Learned(_)
            | AnyEstimator::Exact(_) => {}
            AnyEstimator::Adaptive { kde, .. } => {
                kdesel_types::SelectivityEstimator::observe(kde, feedback);
                for index in kde.take_pending_replacements() {
                    if let Some(row) = sampling::sample_one(table, rng) {
                        kde.replace_point(index, &row);
                    }
                }
            }
            AnyEstimator::SthHoles(h) => {
                h.refine(&feedback.region, |r| table.count_in(r));
            }
            AnyEstimator::Hybrid { hybrid, .. } => {
                // The hybrid attributes the q-error to whichever family
                // answered and forwards KDE-attributed feedback to Karma;
                // any flagged sample points get refreshed from the table
                // exactly like the standalone adaptive estimator.
                kdesel_types::SelectivityEstimator::observe(hybrid.as_mut(), feedback);
                for index in hybrid.take_pending_replacements() {
                    if let Some(row) = sampling::sample_one(table, rng) {
                        hybrid.replace_point(index, &row);
                    }
                }
            }
        }
    }

    /// Notifies the estimator of an inserted tuple (§4.2 reservoir path).
    /// Only the adaptive estimator reacts.
    pub fn handle_insert<R: Rng + ?Sized>(&mut self, row: &[f64], rng: &mut R) {
        match self {
            AnyEstimator::Adaptive { kde, reservoir } => {
                if let ReservoirDecision::Replace(slot) = reservoir.observe(rng) {
                    kde.reservoir_replace(slot, row);
                }
            }
            AnyEstimator::Hybrid { hybrid, reservoir } => {
                // Only the KDE member's sample refreshes; the learned and
                // exact members go deliberately stale so the router can
                // catch them drifting (the bake-off's shifting segment).
                if let ReservoirDecision::Replace(slot) = reservoir.observe(rng) {
                    hybrid.reservoir_replace(slot, row);
                }
            }
            _ => {}
        }
    }

    /// Model memory footprint in bytes (f64 storage).
    pub fn memory_bytes(&self) -> usize {
        match self {
            AnyEstimator::Heuristic(e) => kdesel_types::SelectivityEstimator::memory_bytes(e),
            AnyEstimator::Scv(e) => kdesel_types::SelectivityEstimator::memory_bytes(e),
            AnyEstimator::Batch(e) => kdesel_types::SelectivityEstimator::memory_bytes(e),
            AnyEstimator::Adaptive { kde, .. } => {
                kdesel_types::SelectivityEstimator::memory_bytes(kde)
            }
            AnyEstimator::SthHoles(h) => h.memory_bytes(),
            AnyEstimator::Avi(a) => a.memory_bytes(),
            AnyEstimator::Sampling(s) => kdesel_types::SelectivityEstimator::memory_bytes(s),
            AnyEstimator::Learned(e) => e.memory_bytes(),
            AnyEstimator::Exact(e) => e.memory_bytes(),
            AnyEstimator::Hybrid { hybrid, .. } => {
                kdesel_types::SelectivityEstimator::memory_bytes(hybrid.as_ref())
            }
        }
    }

    /// The device behind a KDE estimator (None for STHoles) — used by the
    /// performance experiment to read modeled time.
    pub fn device(&self) -> Option<&Device> {
        match self {
            AnyEstimator::Heuristic(e) => Some(e.model().device()),
            AnyEstimator::Scv(e) => Some(e.model().device()),
            AnyEstimator::Batch(e) => Some(e.model().device()),
            AnyEstimator::Adaptive { kde, .. } => Some(kde.model().device()),
            AnyEstimator::Exact(e) => Some(e.device()),
            AnyEstimator::Hybrid { hybrid, .. } => Some(hybrid.device()),
            AnyEstimator::SthHoles(_)
            | AnyEstimator::Avi(_)
            | AnyEstimator::Sampling(_)
            | AnyEstimator::Learned(_) => None,
        }
    }
}

/// Flattens the table's live rows into one row-major buffer for the
/// exact-scan snapshot.
fn flat_rows(table: &Table) -> Vec<f64> {
    let mut flat = Vec::with_capacity(table.row_count() * table.dims());
    for (_, row) in table.rows() {
        flat.extend_from_slice(row);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_data::{generate_workload, WorkloadKind, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_table(seed: u64) -> Table {
        kdesel_data::Dataset::Synthetic.generate_projected(2, 2000, seed)
    }

    #[test]
    fn builds_every_kind_and_estimates() {
        let table = small_table(1);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = sampling::sample_rows(&table, 128, &mut rng);
        let training = generate_workload(
            &table,
            WorkloadSpec::paper(WorkloadKind::DataVolume),
            20,
            &mut rng,
        );
        let config = BuildConfig::paper_default(2);
        let region = table.bounding_box().unwrap();
        for kind in EstimatorKind::ALL {
            let mut e = AnyEstimator::build(kind, &table, &sample, &training, &config, &mut rng);
            assert_eq!(e.kind(), kind);
            let v = e.estimate(&region);
            assert!(
                (0.9..=1.0).contains(&v),
                "{}: whole-domain estimate {v}",
                kind.name()
            );
            assert!(e.memory_bytes() > 0);
        }
    }

    #[test]
    fn feedback_drives_adaptive_maintenance() {
        let table = small_table(3);
        let mut rng = StdRng::seed_from_u64(4);
        let sample = sampling::sample_rows(&table, 64, &mut rng);
        let config = BuildConfig::paper_default(2);
        let mut e = AnyEstimator::build(
            EstimatorKind::Adaptive,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        // A far-away empty region containing no data: estimate, then feed
        // back zero. No sample point is there, so nothing to replace — must
        // not panic and must keep estimating.
        let region = Rect::cube(2, 1e6, 1e6 + 1.0);
        let est = e.estimate(&region);
        let fb = QueryFeedback {
            region,
            estimate: est,
            actual: 0.0,
            cardinality: 0,
        };
        e.handle_feedback(&table, &fb, &mut rng);
        assert!(e.estimate(&Rect::cube(2, 0.0, 100.0)) > 0.0);
    }

    #[test]
    fn inserts_flow_through_reservoir() {
        let table = small_table(5);
        let mut rng = StdRng::seed_from_u64(6);
        let sample = sampling::sample_rows(&table, 32, &mut rng);
        let config = BuildConfig::paper_default(2);
        let mut e = AnyEstimator::build(
            EstimatorKind::Adaptive,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        // Insert many copies of a far-away tuple; the reservoir must
        // eventually pull some into the sample, shifting estimates there.
        // The probe box spans several Scott bandwidths (h ≈ 17 for this
        // sample) so the smoothed mass of the new points is captured.
        let probe = Rect::cube(2, 900.0, 1100.0);
        let before = e.estimate(&probe);
        for _ in 0..2000 {
            e.handle_insert(&[1000.0, 1000.0], &mut rng);
        }
        let after = e.estimate(&probe);
        assert!(
            after > before + 0.05,
            "reservoir did not refresh sample: {before} -> {after}"
        );
    }

    #[test]
    fn stholes_trains_on_training_workload() {
        let table = small_table(7);
        let mut rng = StdRng::seed_from_u64(8);
        let sample = sampling::sample_rows(&table, 32, &mut rng);
        let training = generate_workload(
            &table,
            WorkloadSpec::paper(WorkloadKind::DataTarget),
            30,
            &mut rng,
        );
        let config = BuildConfig::paper_default(2);
        let mut trained = AnyEstimator::build(
            EstimatorKind::SthHoles,
            &table,
            &sample,
            &training,
            &config,
            &mut rng,
        );
        let mut untrained = AnyEstimator::build(
            EstimatorKind::SthHoles,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        // Error over the training queries themselves must be lower for the
        // trained histogram.
        let err = |e: &mut AnyEstimator| {
            training
                .iter()
                .map(|q| (e.estimate(&q.region) - q.selectivity).abs())
                .sum::<f64>()
                / training.len() as f64
        };
        let e_trained = err(&mut trained);
        let e_untrained = err(&mut untrained);
        assert!(
            e_trained < e_untrained,
            "trained {e_trained} vs untrained {e_untrained}"
        );
    }

    #[test]
    fn kind_names_round_trip_through_from_name() {
        for kind in EstimatorKind::FULL {
            assert_eq!(EstimatorKind::from_name(kind.name()), Some(kind));
        }
        for bogus in ["", "kde", "EXACT", "hybrid ", "naru"] {
            assert_eq!(EstimatorKind::from_name(bogus), None, "accepted {bogus:?}");
        }
    }

    #[test]
    fn builds_bakeoff_kinds_and_estimates() {
        let table = small_table(9);
        let mut rng = StdRng::seed_from_u64(10);
        let sample = sampling::sample_rows(&table, 128, &mut rng);
        let config = BuildConfig::paper_default(2);
        let region = table.bounding_box().unwrap();
        for kind in [
            EstimatorKind::Learned,
            EstimatorKind::Exact,
            EstimatorKind::Hybrid,
        ] {
            let mut e = AnyEstimator::build(kind, &table, &sample, &[], &config, &mut rng);
            assert_eq!(e.kind(), kind);
            assert_eq!(EstimatorKind::from_name(e.name()), Some(kind));
            let v = e.estimate(&region);
            assert!(
                (0.8..=1.0).contains(&v),
                "{}: whole-domain estimate {v}",
                kind.name()
            );
            assert!(e.memory_bytes() > 0);
        }
    }

    #[test]
    fn exact_kind_scans_the_full_table() {
        let table = small_table(11);
        let mut rng = StdRng::seed_from_u64(12);
        let sample = sampling::sample_rows(&table, 16, &mut rng);
        let config = BuildConfig::paper_default(2);
        let mut e = AnyEstimator::build(
            EstimatorKind::Exact,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        // Truth on an arbitrary box, not just the sample's view of it.
        let region = Rect::cube(2, 10.0, 60.0);
        assert_eq!(e.estimate(&region), table.selectivity(&region));
    }

    #[test]
    fn hybrid_feedback_and_inserts_flow() {
        let table = small_table(13);
        let mut rng = StdRng::seed_from_u64(14);
        let sample = sampling::sample_rows(&table, 64, &mut rng);
        let config = BuildConfig::paper_default(2);
        let mut e = AnyEstimator::build(
            EstimatorKind::Hybrid,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        for _ in 0..5 {
            let region = Rect::cube(2, 20.0, 70.0);
            let est = e.estimate(&region);
            let fb = QueryFeedback {
                region,
                estimate: est,
                actual: table.selectivity(&Rect::cube(2, 20.0, 70.0)),
                cardinality: 0,
            };
            e.handle_feedback(&table, &fb, &mut rng);
        }
        for _ in 0..200 {
            e.handle_insert(&[50.0, 50.0], &mut rng);
        }
        let v = e.estimate(&Rect::cube(2, 0.0, 100.0));
        assert!(v > 0.0, "hybrid stopped estimating: {v}");
        if let AnyEstimator::Hybrid { hybrid, .. } = &e {
            let total: u64 = hybrid.router().decisions().iter().sum();
            assert!(total >= 6, "router saw {total} decisions");
        } else {
            panic!("expected hybrid variant");
        }
    }

    #[test]
    fn sample_sizes_follow_paper_budget() {
        let config = BuildConfig::paper_default(8);
        assert_eq!(config.sample_points(8), 1024);
        let config3 = BuildConfig::paper_default(3);
        assert_eq!(config3.sample_points(3), 1024);
        assert!(config3.stholes_buckets(3) >= 300);
    }
}
