//! Integration layer: the "database" side of the paper's system.
//!
//! The paper integrates its estimator into Postgres; this crate provides
//! the equivalent wiring over the in-memory substrate:
//!
//! * [`estimators`] — a unified [`AnyEstimator`](estimators::AnyEstimator)
//!   over every technique in the evaluation (§6.1.1), including the
//!   feedback plumbing each one needs (Karma replacements sampled from the
//!   live table, reservoir decisions for inserts, exact per-bucket counts
//!   for STHoles),
//! * [`session`] — the query lifecycle of Figure 3: estimate → execute →
//!   feed back,
//! * [`experiments`] — the §6 evaluation protocols (static quality, win
//!   rates, model-size scaling, performance, dynamic data),
//! * [`report`] — plain-text/CSV table formatting for the bench binaries.

pub mod database;
pub mod estimators;
pub mod experiments;
pub mod join;
pub mod report;
pub mod session;

pub use database::Database;
pub use estimators::{AnyEstimator, EstimatorKind};
pub use session::{run_query, QueryOutcome};
