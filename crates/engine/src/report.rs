//! Plain-text and CSV table rendering for the experiment binaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for report tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.12345678), "0.12346");
        assert!(fmt(1e-9).contains('e'));
        assert!(fmt(123456.0).contains('e'));
    }
}
