//! The query lifecycle (paper Figure 3 / Listing 1 lines 5-9).

use crate::estimators::AnyEstimator;
use kdesel_storage::Table;
use kdesel_types::{QueryFeedback, Rect};
use rand::Rng;

/// Outcome of one estimated-then-executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The estimator's prediction.
    pub estimate: f64,
    /// True selectivity from execution.
    pub actual: f64,
    /// Qualifying tuple count.
    pub cardinality: u64,
}

impl QueryOutcome {
    /// Absolute selectivity estimation error — the paper's headline metric.
    pub fn absolute_error(&self) -> f64 {
        (self.estimate - self.actual).abs()
    }
}

/// Runs one query through the full lifecycle: estimate, execute (full
/// scan), feed back. Self-tuning estimators update themselves inside
/// [`AnyEstimator::handle_feedback`].
pub fn run_query<R: Rng + ?Sized>(
    table: &Table,
    estimator: &mut AnyEstimator,
    region: &Rect,
    rng: &mut R,
) -> QueryOutcome {
    let span = kdesel_telemetry::span("engine.query_seconds");
    let estimate = estimator.estimate(region);
    let cardinality = table.count_in(region);
    let actual = if table.row_count() == 0 {
        0.0
    } else {
        cardinality as f64 / table.row_count() as f64
    };
    let feedback = QueryFeedback {
        region: region.clone(),
        estimate,
        actual,
        cardinality,
    };
    estimator.handle_feedback(table, &feedback, rng);
    drop(span);
    kdesel_telemetry::event("query")
        .f64("estimate", estimate)
        .f64("actual", actual)
        .f64("abs_error", (estimate - actual).abs())
        .u64("cardinality", cardinality)
        .emit();
    QueryOutcome {
        estimate,
        actual,
        cardinality,
    }
}

/// Runs one query through a [`kdesel_serve::ServeHandle`] instead of a
/// locally-owned estimator — the serving layer as a drop-in for the
/// synchronous loop above. The estimate may be coalesced with concurrent
/// submissions (bit-identical results either way); the trailing
/// [`flush`](kdesel_serve::ServeHandle::flush) barrier waits for the
/// maintenance worker to apply this query's feedback, reproducing strict
/// Listing-1 ordering. Callers that prefer throughput over strict
/// ordering should use the handle directly and skip the flush.
pub fn run_query_via(
    table: &Table,
    serve: &kdesel_serve::ServeHandle,
    key: &kdesel_serve::ModelKey,
    region: &Rect,
) -> Result<QueryOutcome, kdesel_serve::ServeError> {
    let span = kdesel_telemetry::span("engine.query_seconds");
    // Keep the trace ID from submission so the feedback joins the same
    // span tree (front door → batch → launch → feedback).
    let pending = serve.submit(key, region)?;
    let trace = pending.trace();
    let estimate = pending.wait()?;
    let cardinality = table.count_in(region);
    let actual = if table.row_count() == 0 {
        0.0
    } else {
        cardinality as f64 / table.row_count() as f64
    };
    serve.feedback_traced(
        key,
        QueryFeedback {
            region: region.clone(),
            estimate,
            actual,
            cardinality,
        },
        trace,
    )?;
    serve.flush(key)?;
    drop(span);
    kdesel_telemetry::event("query")
        .f64("estimate", estimate)
        .f64("actual", actual)
        .f64("abs_error", (estimate - actual).abs())
        .u64("cardinality", cardinality)
        .u64("trace", trace)
        .str("via", "serve")
        .emit();
    Ok(QueryOutcome {
        estimate,
        actual,
        cardinality,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{BuildConfig, EstimatorKind};
    use kdesel_storage::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lifecycle_produces_consistent_feedback() {
        let table = kdesel_data::Dataset::Synthetic.generate_projected(2, 1000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = sampling::sample_rows(&table, 64, &mut rng);
        let config = BuildConfig::paper_default(2);
        let mut e = AnyEstimator::build(
            EstimatorKind::Heuristic,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        // Inflate the region by a few bandwidths so kernel mass leaking
        // past the data's bounding box stays inside the query.
        let region = table.bounding_box().unwrap().inflated(60.0);
        let outcome = run_query(&table, &mut e, &region, &mut rng);
        assert_eq!(outcome.cardinality, 1000);
        assert_eq!(outcome.actual, 1.0);
        assert!(outcome.absolute_error() < 0.05);
    }

    #[test]
    fn run_query_emits_one_consistent_trace_event() {
        let table = kdesel_data::Dataset::Synthetic.generate_projected(2, 500, 7);
        let mut rng = StdRng::seed_from_u64(5);
        let sample = sampling::sample_rows(&table, 32, &mut rng);
        let config = BuildConfig::paper_default(2);
        let mut e = AnyEstimator::build(
            EstimatorKind::Heuristic,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        let ring = std::sync::Arc::new(kdesel_telemetry::RingSink::with_capacity(16));
        kdesel_telemetry::set_sink(Some(ring.clone()));
        kdesel_telemetry::set_enabled(true);
        let region = table.bounding_box().unwrap().inflated(1.0);
        let outcome = run_query(&table, &mut e, &region, &mut rng);
        kdesel_telemetry::set_enabled(false);
        kdesel_telemetry::set_sink(None);

        let events: Vec<_> = ring
            .drain()
            .into_iter()
            .filter(|ev| ev.name == "query")
            .collect();
        assert_eq!(events.len(), 1, "exactly one query event per run_query");
        let ev = &events[0];
        assert_eq!(ev.get_f64("estimate"), Some(outcome.estimate));
        assert_eq!(ev.get_f64("actual"), Some(outcome.actual));
        assert_eq!(ev.get_f64("abs_error"), Some(outcome.absolute_error()));
        assert_eq!(ev.get_u64("cardinality"), Some(outcome.cardinality));
    }

    #[test]
    fn run_query_via_serve_is_a_drop_in_for_static_models() {
        let table = kdesel_data::Dataset::Synthetic.generate_projected(2, 1200, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let sample = sampling::sample_rows(&table, 64, &mut rng);
        let config = BuildConfig::paper_default(2);
        let mut sync = AnyEstimator::build(
            EstimatorKind::Heuristic,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        let served = kdesel_kde::HeuristicKde::new(
            kdesel_device::Device::new(config.backend),
            &sample,
            2,
            config.kernel,
        )
        .into_model();
        let key = kdesel_serve::ModelKey::new("synthetic", &["x", "y"]);
        let service = kdesel_serve::Service::builder(kdesel_serve::ServeConfig::default())
            .register(key.clone(), kdesel_serve::ServedModel::fixed(served))
            .build()
            .unwrap();
        let handle = service.handle();
        let queries = kdesel_data::generate_workload(
            &table,
            kdesel_data::WorkloadSpec::paper(kdesel_data::WorkloadKind::DataTarget),
            25,
            &mut rng,
        );
        for q in &queries {
            let direct = run_query(&table, &mut sync, &q.region, &mut rng);
            let via = run_query_via(&table, &handle, &key, &q.region).unwrap();
            assert_eq!(
                via.estimate, direct.estimate,
                "estimates must be bitwise equal"
            );
            assert_eq!(via.actual, direct.actual);
            assert_eq!(via.cardinality, direct.cardinality);
        }
        service.shutdown().unwrap();
    }

    #[test]
    fn run_query_via_serve_is_a_drop_in_for_the_adaptive_loop() {
        // The serving path must reproduce the synchronous Listing-1 loop
        // bit-for-bit: same estimates, same bandwidth trajectory, same
        // Karma replacements — with maintenance running on the executor
        // thread instead of the caller's.
        let table = kdesel_data::Dataset::Synthetic.generate_projected(2, 1500, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let sample = sampling::sample_rows(&table, 64, &mut rng);
        let config = BuildConfig::paper_default(2);
        let mut sync = AnyEstimator::build(
            EstimatorKind::Adaptive,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        let kde = kdesel_kde::AdaptiveKde::new(
            kdesel_device::Device::new(config.backend),
            &sample,
            2,
            config.kernel,
            config.adaptive.clone(),
            config.karma.clone(),
        );
        // Both loops draw replacement tuples from identically-seeded rngs,
        // so Karma replacements install identical rows.
        let replacement_seed = 77;
        let mut sync_rng = StdRng::seed_from_u64(replacement_seed);
        let refresh_table = std::sync::Arc::new(table.clone());
        let mut refresh_rng = StdRng::seed_from_u64(replacement_seed);
        let refresh: kdesel_serve::RefreshFn =
            Box::new(move |_slot| sampling::sample_one(&refresh_table, &mut refresh_rng));
        let key = kdesel_serve::ModelKey::new("synthetic", &["x", "y"]);
        let service = kdesel_serve::Service::builder(kdesel_serve::ServeConfig::default())
            .register(
                key.clone(),
                kdesel_serve::ServedModel::adaptive_with_refresh(kde, refresh),
            )
            .build()
            .unwrap();
        let handle = service.handle();
        let queries = kdesel_data::generate_workload(
            &table,
            kdesel_data::WorkloadSpec::paper(kdesel_data::WorkloadKind::DataTarget),
            40,
            &mut rng,
        );
        for q in &queries {
            let direct = run_query(&table, &mut sync, &q.region, &mut sync_rng);
            let via = run_query_via(&table, &handle, &key, &q.region).unwrap();
            assert_eq!(
                via.estimate, direct.estimate,
                "estimates must be bitwise equal"
            );
        }
        let report = handle.report(&key).unwrap();
        let AnyEstimator::Adaptive { kde: sync_kde, .. } = &sync else {
            unreachable!()
        };
        assert_eq!(
            report.bandwidth,
            sync_kde.model().bandwidth(),
            "bandwidth trajectories must match bitwise"
        );
        assert_eq!(report.maintenance_applied, queries.len() as u64);
        service.shutdown().unwrap();
    }

    #[test]
    fn adaptive_improves_over_a_query_stream() {
        // Clustered table; DT-style queries. The adaptive estimator's error
        // over the last quarter of the stream must beat its first quarter.
        let table = kdesel_data::Dataset::Synthetic.generate_projected(3, 3000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let sample = sampling::sample_rows(&table, 256, &mut rng);
        let config = BuildConfig::paper_default(3);
        let mut e = AnyEstimator::build(
            EstimatorKind::Adaptive,
            &table,
            &sample,
            &[],
            &config,
            &mut rng,
        );
        let queries = kdesel_data::generate_workload(
            &table,
            kdesel_data::WorkloadSpec::paper(kdesel_data::WorkloadKind::DataTarget),
            240,
            &mut rng,
        );
        let mut errors = Vec::new();
        for q in &queries {
            let out = run_query(&table, &mut e, &q.region, &mut rng);
            errors.push(out.absolute_error());
        }
        let first: f64 = errors[..60].iter().sum::<f64>() / 60.0;
        let last: f64 = errors[180..].iter().sum::<f64>() / 60.0;
        assert!(
            last < first,
            "no improvement: first quarter {first}, last quarter {last}"
        );
    }
}
