//! Estimation quality on changing data (paper §6.5, Figure 8).
//!
//! "The workload starts by loading 4500 tuples, evenly distributed among
//! three random clusters. Afterwards the workload features ten cycles of
//! slowly creating a new cluster by gradually inserting 1500 tuples into
//! it, followed by deleting all tuples belonging to one of the old
//! clusters. These dataset changes are interleaved with a DT query workload
//! that queries older clusters less frequently than newer ones."
//!
//! The change/query script is generated once per repetition and replayed
//! identically for every estimator, so all estimators see the exact same
//! evolving database.

use crate::estimators::{AnyEstimator, BuildConfig, EstimatorKind};
use crate::session::run_query;
use kdesel_storage::{sampling, Table};
use kdesel_types::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dynamic-experiment configuration.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Dimensionality (paper: 5 and 8).
    pub dims: usize,
    /// Tuples per cluster (paper: 1500).
    pub cluster_size: usize,
    /// Initial clusters (paper: 3).
    pub initial_clusters: usize,
    /// Insert/delete cycles (paper: 10).
    pub cycles: usize,
    /// Queries interleaved per cycle.
    pub queries_per_cycle: usize,
    /// Insert batches per cycle (tuples arrive gradually).
    pub batches_per_cycle: usize,
    /// Target selectivity of the DT queries (paper: 1%).
    pub target_selectivity: f64,
    /// Recency bias: cluster of age `a` is queried with weight `γ^a`.
    pub recency_decay: f64,
    /// Estimators to compare (paper: STHoles, Heuristic, Adaptive).
    pub estimators: Vec<EstimatorKind>,
    /// Repetitions (paper: 10).
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            dims: 5,
            cluster_size: 1500,
            initial_clusters: 3,
            cycles: 10,
            queries_per_cycle: 60,
            batches_per_cycle: 6,
            target_selectivity: 0.01,
            recency_decay: 0.5,
            estimators: vec![
                EstimatorKind::SthHoles,
                EstimatorKind::Heuristic,
                EstimatorKind::Adaptive,
            ],
            repetitions: 10,
            seed: 0xf188,
        }
    }
}

/// One scripted event.
enum Event {
    /// Insert a tuple (tagged with its cluster index).
    Insert(Vec<f64>, usize),
    /// Delete every live tuple of a cluster.
    DeleteCluster(usize),
    /// Run a query.
    Query(Rect),
}

/// Result: per estimator, the absolute error of every query in script
/// order, averaged across repetitions, plus the table size at each query.
#[derive(Debug)]
pub struct DynamicResult {
    /// Mean absolute error per query index, per estimator.
    pub error_series: Vec<(EstimatorKind, Vec<f64>)>,
    /// Live tuple count at each query index (identical across estimators).
    pub table_sizes: Vec<usize>,
}

impl DynamicResult {
    /// Mean error of one estimator over a range of query indices.
    pub fn mean_error_in(&self, kind: EstimatorKind, range: std::ops::Range<usize>) -> f64 {
        let series = &self
            .error_series
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("estimator present")
            .1;
        let slice = &series[range];
        slice.iter().sum::<f64>() / slice.len() as f64
    }
}

/// Generates cluster-box tuples around `center` with half-width `spread`.
fn cluster_tuple<R: Rng + ?Sized>(center: &[f64], spread: f64, rng: &mut R) -> Vec<f64> {
    center
        .iter()
        .map(|&c| c + rng.gen_range(-spread..spread))
        .collect()
}

/// Builds the event script for one repetition, simulating the table as it
/// goes so query boxes can target the live selectivity.
fn build_script(config: &DynamicConfig, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = config.dims;
    let domain = 100.0;
    let spread = 2.5;
    let mut script = Vec::new();
    let mut table = Table::new(dims);
    // cluster id → (center, live row ids)
    let mut clusters: Vec<(Vec<f64>, Vec<usize>)> = Vec::new();
    let new_center = |rng: &mut StdRng| -> Vec<f64> {
        (0..dims)
            .map(|_| rng.gen_range(10.0..domain - 10.0))
            .collect()
    };

    // Initial load.
    for c in 0..config.initial_clusters {
        let center = new_center(&mut rng);
        let mut rows = Vec::new();
        for _ in 0..config.cluster_size {
            let t = cluster_tuple(&center, spread, &mut rng);
            rows.push(table.insert(&t));
            script.push(Event::Insert(t, c));
        }
        clusters.push((center, rows));
    }

    let emit_queries = |script: &mut Vec<Event>,
                        table: &Table,
                        clusters: &[(Vec<f64>, Vec<usize>)],
                        rng: &mut StdRng,
                        count: usize| {
        let live: Vec<usize> = (0..clusters.len())
            .filter(|&c| !clusters[c].1.is_empty())
            .collect();
        if live.is_empty() {
            return;
        }
        // Recency weights: newest cluster has age 0.
        let newest = *live.last().expect("non-empty");
        let weights: Vec<f64> = live
            .iter()
            .map(|&c| config.recency_decay.powi((newest - c) as i32))
            .collect();
        let total_w: f64 = weights.iter().sum();
        for _ in 0..count {
            let mut pick = rng.gen_range(0.0..total_w);
            let mut chosen = live[0];
            for (&c, &w) in live.iter().zip(&weights) {
                if pick < w {
                    chosen = c;
                    break;
                }
                pick -= w;
            }
            let rows = &clusters[chosen].1;
            let row_id = rows[rng.gen_range(0..rows.len())];
            let center = table.row(row_id).expect("live row").to_vec();
            // Bisect a box around the center to the target selectivity.
            let target = config.target_selectivity;
            let mut hi = 0.5;
            while table.selectivity(&Rect::centered(&center, &vec![hi; dims])) < target
                && hi < domain
            {
                hi *= 2.0;
            }
            let mut lo = 0.0;
            for _ in 0..20 {
                let mid = 0.5 * (lo + hi);
                if table.selectivity(&Rect::centered(&center, &vec![mid; dims])) < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            script.push(Event::Query(Rect::centered(&center, &vec![hi; dims])));
        }
    };

    // Warm-up queries on the initial data.
    emit_queries(
        &mut script,
        &table,
        &clusters,
        &mut rng,
        config.queries_per_cycle,
    );

    for cycle in 0..config.cycles {
        let new_id = clusters.len();
        let center = new_center(&mut rng);
        clusters.push((center.clone(), Vec::new()));
        let per_batch = config.cluster_size / config.batches_per_cycle;
        let queries_per_batch = config.queries_per_cycle / (config.batches_per_cycle + 1);
        for _ in 0..config.batches_per_cycle {
            for _ in 0..per_batch {
                let t = cluster_tuple(&center, spread, &mut rng);
                let id = table.insert(&t);
                clusters[new_id].1.push(id);
                script.push(Event::Insert(t, new_id));
            }
            emit_queries(&mut script, &table, &clusters, &mut rng, queries_per_batch);
        }
        // Delete the oldest still-populated cluster.
        let oldest = (0..clusters.len())
            .find(|&c| !clusters[c].1.is_empty() && c != new_id)
            .unwrap_or(cycle);
        for &row in &clusters[oldest].1 {
            table.delete(row);
        }
        clusters[oldest].1.clear();
        script.push(Event::DeleteCluster(oldest));
        emit_queries(&mut script, &table, &clusters, &mut rng, queries_per_batch);
    }
    script
}

/// Runs the Figure 8 experiment.
pub fn run_dynamic(config: &DynamicConfig) -> DynamicResult {
    assert!(config.repetitions > 0);
    let mut error_acc: Vec<Vec<f64>> = vec![Vec::new(); config.estimators.len()];
    let mut sizes: Vec<usize> = Vec::new();

    for rep in 0..config.repetitions {
        let script = build_script(config, config.seed + rep as u64 * 65_537);
        for (ei, &kind) in config.estimators.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(config.seed ^ (rep as u64) << 4 ^ (ei as u64));
            // Replay: rebuild the initial table state (insert events up to
            // the first query), then construct the estimator.
            let mut table = Table::new(config.dims);
            let mut cluster_rows: Vec<Vec<usize>> = Vec::new();
            let mut idx = 0;
            while let Some(Event::Insert(row, c)) = script.get(idx) {
                let id = table.insert(row);
                if *c >= cluster_rows.len() {
                    cluster_rows.resize(c + 1, Vec::new());
                }
                cluster_rows[*c].push(id);
                idx += 1;
            }
            let build = BuildConfig::paper_default(config.dims);
            let sample = sampling::sample_rows(&table, build.sample_points(config.dims), &mut rng);
            let mut estimator = AnyEstimator::build(kind, &table, &sample, &[], &build, &mut rng);

            let mut errors = Vec::new();
            let mut query_sizes = Vec::new();
            for event in &script[idx..] {
                match event {
                    Event::Insert(row, c) => {
                        let id = table.insert(row);
                        if *c >= cluster_rows.len() {
                            cluster_rows.resize(c + 1, Vec::new());
                        }
                        cluster_rows[*c].push(id);
                        estimator.handle_insert(row, &mut rng);
                    }
                    Event::DeleteCluster(c) => {
                        for &row in &cluster_rows[*c] {
                            table.delete(row);
                        }
                        cluster_rows[*c].clear();
                    }
                    Event::Query(region) => {
                        let out = run_query(&table, &mut estimator, region, &mut rng);
                        errors.push(out.absolute_error());
                        query_sizes.push(table.row_count());
                    }
                }
            }
            if error_acc[ei].is_empty() {
                error_acc[ei] = errors;
            } else {
                for (acc, e) in error_acc[ei].iter_mut().zip(errors) {
                    *acc += e;
                }
            }
            if ei == 0 && rep == 0 {
                sizes = query_sizes;
            }
        }
    }
    let reps = config.repetitions as f64;
    DynamicResult {
        error_series: config
            .estimators
            .iter()
            .zip(error_acc)
            .map(|(&k, mut errs)| {
                for e in &mut errs {
                    *e /= reps;
                }
                (k, errs)
            })
            .collect(),
        table_sizes: sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DynamicConfig {
        DynamicConfig {
            dims: 2,
            cluster_size: 300,
            initial_clusters: 3,
            cycles: 4,
            queries_per_cycle: 35,
            batches_per_cycle: 4,
            estimators: vec![EstimatorKind::Heuristic, EstimatorKind::Adaptive],
            repetitions: 2,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn adaptive_tracks_churn_better_than_heuristic() {
        let config = quick_config();
        let result = run_dynamic(&config);
        let n = result.table_sizes.len();
        assert!(n > 50, "expected a long query series, got {n}");
        // After several churn cycles the static model is stale; compare the
        // last third of the stream.
        let tail = (2 * n / 3)..n;
        let heuristic = result.mean_error_in(EstimatorKind::Heuristic, tail.clone());
        let adaptive = result.mean_error_in(EstimatorKind::Adaptive, tail);
        assert!(
            adaptive < heuristic,
            "adaptive {adaptive} should beat stale heuristic {heuristic}"
        );
    }

    #[test]
    fn table_sizes_follow_the_cycle_pattern() {
        let config = quick_config();
        let result = run_dynamic(&config);
        let max = *result.table_sizes.iter().max().unwrap();
        let min = *result.table_sizes.iter().min().unwrap();
        // Inserting a cluster before deleting one swings the size by about
        // one cluster around the 3-cluster baseline.
        assert!(max > min, "sizes should vary: {min}..{max}");
        assert!(max <= config.cluster_size * (config.initial_clusters + 1));
        assert!(min >= config.cluster_size * (config.initial_clusters - 1));
    }
}
