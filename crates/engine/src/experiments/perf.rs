//! Estimation overhead vs. model size (paper §6.4, Figure 7).
//!
//! "We measured the total estimation overhead for 100 random UV queries on
//! a synthetic 8D table with three million rows" for Heuristic and
//! Adaptive on both CPU and GPU, plus STHoles. KDE overheads are *modeled*
//! by the device cost profiles (calibrated to the paper's GTX-460 / Xeon
//! E5620, see `kdesel-device`); measured wall time is reported alongside.
//! STHoles estimation is measured wall-clock over the fully-built
//! histogram, excluding maintenance, exactly as in the paper.
//!
//! For Adaptive, §5.5 hides the gradient/Karma computation behind the
//! query's own execution: "the only measurable performance impact of
//! Adaptive [is] the latency penalties incurred by the additional kernel
//! calls and data transfers." The bandwidth gradient rides the fused
//! estimate sweep (`estimate_with_gradient`), so the modeled Adaptive
//! overhead is the plain estimate's cost plus only the *latency* portion
//! of every additional launch and transfer.

use kdesel_data::{generate_workload, synthetic, WorkloadKind, WorkloadSpec};
use kdesel_device::{Backend, Device};
use kdesel_estimators::{
    ExactScanEstimator, Family, HybridConfig, HybridEstimator, LearnedConfig, LearnedEstimator,
};
use kdesel_hist::{SthConfig, SthHoles};
use kdesel_kde::{AdaptiveKde, KarmaConfig, KarmaMaintenance, KdeEstimator, KernelFn};
use kdesel_storage::{sampling, Table};
use kdesel_types::{QueryFeedback, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Performance-experiment configuration.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Dimensionality (paper: 8).
    pub dims: usize,
    /// Table rows (paper: 3,000,000).
    pub rows: usize,
    /// Model sizes to sweep (paper: 1K … 1M points).
    pub sample_sizes: Vec<usize>,
    /// Queries per measurement (paper: 100 UV queries).
    pub queries: usize,
    /// STHoles bucket counts matched byte-for-byte to each sample size.
    pub include_stholes: bool,
    /// Also sweep the bake-off families (learned, exact scan, hybrid).
    pub include_bakeoff: bool,
    /// Base seed.
    pub seed: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        Self {
            dims: 8,
            rows: 200_000,
            sample_sizes: (10..=20).map(|p| 1usize << p).collect(),
            queries: 100,
            include_stholes: true,
            include_bakeoff: true,
            seed: 0xf177,
        }
    }
}

/// One backend's overhead at one model size.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Model size (sample points, or the byte-equivalent bucket count for
    /// STHoles).
    pub model_size: usize,
    /// Modeled seconds for the whole query batch (KDE backends).
    pub modeled_seconds: Option<f64>,
    /// Measured wall seconds for the whole query batch.
    pub measured_seconds: f64,
}

/// A labelled overhead series.
#[derive(Debug, Clone)]
pub struct PerfSeries {
    /// e.g. "heuristic/sim-gpu", "adaptive/cpu-par", "stholes".
    pub label: String,
    /// One point per swept model size.
    pub points: Vec<PerfPoint>,
}

/// Runs the Figure 7 sweep.
pub fn run_perf(config: &PerfConfig) -> Vec<PerfSeries> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let table_cfg = synthetic::SyntheticConfig::paper_default(config.dims, config.rows);
    let table = synthetic::generate(&table_cfg, config.seed);
    let queries = generate_workload(
        &table,
        WorkloadSpec::paper(WorkloadKind::UniformVolume),
        config.queries,
        &mut rng,
    );
    let regions: Vec<Rect> = queries.iter().map(|q| q.region.clone()).collect();
    let actuals: Vec<f64> = queries.iter().map(|q| q.selectivity).collect();

    let mut series = Vec::new();
    for backend in [Backend::SimGpu, Backend::CpuPar] {
        for adaptive in [false, true] {
            let label = format!(
                "{}/{}",
                if adaptive { "adaptive" } else { "heuristic" },
                backend.name()
            );
            let mut points = Vec::new();
            for &size in &config.sample_sizes {
                points.push(measure_kde(
                    &table,
                    &regions,
                    &actuals,
                    backend,
                    adaptive,
                    size,
                    config.seed,
                ));
            }
            series.push(PerfSeries { label, points });
        }
    }
    if config.include_stholes {
        let mut points = Vec::new();
        for &size in &config.sample_sizes {
            points.push(measure_stholes(&table, &regions, size, config.seed));
        }
        series.push(PerfSeries {
            label: "stholes".to_string(),
            points,
        });
    }
    if config.include_bakeoff {
        let sweep =
            |f: &dyn Fn(usize) -> PerfPoint| config.sample_sizes.iter().map(|&s| f(s)).collect();
        series.push(PerfSeries {
            label: "learned".to_string(),
            points: sweep(&|size| measure_learned(&table, &regions, size, config.seed)),
        });
        for backend in [Backend::SimGpu, Backend::CpuPar] {
            series.push(PerfSeries {
                label: format!("exact/{}", backend.name()),
                points: sweep(&|size| measure_exact(&table, &regions, backend, size, config.seed)),
            });
        }
        series.push(PerfSeries {
            label: "hybrid/sim-gpu".to_string(),
            points: sweep(&|size| {
                measure_hybrid(
                    &table,
                    &regions,
                    &actuals,
                    Backend::SimGpu,
                    size,
                    config.seed,
                )
            }),
        });
    }
    series
}

/// Measures the KDE estimation overhead at one (backend, variant, size).
fn measure_kde(
    table: &Table,
    regions: &[Rect],
    actuals: &[f64],
    backend: Backend,
    adaptive: bool,
    size: usize,
    seed: u64,
) -> PerfPoint {
    let mut rng = StdRng::seed_from_u64(seed ^ size as u64);
    let sample = sized_sample(table, size, &mut rng);
    let mut estimator = KdeEstimator::new(
        Device::new(backend),
        &sample,
        table.dims(),
        KernelFn::Gaussian,
    );
    let mut karma = KarmaMaintenance::new(&estimator, KarmaConfig::default());

    let profile = *estimator.device().cost_model().profile();
    // Estimate-equivalent critical-path cost of one query: bounds upload,
    // one fused map+reduce launch, scalar download — what the heuristic
    // path charges. The adaptive path folds the gradient into the same
    // sweep (estimate_with_gradient), so only this cost plus the *latency*
    // of any additional operations lands on the query's critical path.
    let dims = table.dims();
    let estimate_flops = KernelFn::Gaussian.flops_per_factor() * dims as f64 + 4.0;
    let estimate_equivalent = {
        let cost = estimator.device().cost_model();
        cost.transfer(2 * dims * 8) + cost.kernel(size, estimate_flops) + cost.transfer(8)
    };
    estimator.device().reset_timing();
    let wall = Instant::now();
    let mut modeled = 0.0;
    for (region, &actual) in regions.iter().zip(actuals) {
        if adaptive {
            // Gradient and Karma maintenance run concurrently with query
            // execution (§5.5): "the only measurable performance impact of
            // Adaptive [is] the latency penalties incurred by the
            // additional kernel calls and data transfers." The fused sweep
            // itself bills as a plain estimate; every launch/transfer
            // beyond the estimate's own (1 kernel, 2 transfers) adds its
            // latency only.
            let s0 = estimator.device().stats();
            let (estimate, _grad) = estimator.estimate_with_gradient(region);
            let feedback = QueryFeedback {
                region: region.clone(),
                estimate,
                actual,
                cardinality: 0,
            };
            let _flagged = karma.update(&estimator, &feedback);
            let s1 = estimator.device().stats();
            let launches = (s1.kernels - s0.kernels).saturating_sub(1) as f64;
            let transfers =
                (s1.uploads - s0.uploads + s1.downloads - s0.downloads).saturating_sub(2) as f64;
            modeled += estimate_equivalent
                + launches * profile.kernel_launch_latency
                + transfers * profile.transfer_latency;
        } else {
            let t0 = estimator.device().modeled_seconds();
            let _estimate = estimator.estimate(region);
            let t1 = estimator.device().modeled_seconds();
            modeled += t1 - t0;
        }
    }
    PerfPoint {
        model_size: size,
        modeled_seconds: Some(modeled),
        measured_seconds: wall.elapsed().as_secs_f64(),
    }
}

/// A `size`-point row-major sample. Sampling with replacement beyond
/// the table size would distort the model; the paper's 3M-row table
/// always exceeds the sample. Cap at the table size and tile if
/// oversized (perf is unaffected by duplicates).
fn sized_sample(table: &Table, size: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut sample = sampling::sample_rows(table, size.min(table.row_count()), rng);
    while sample.len() < size * table.dims() {
        let missing = size * table.dims() - sample.len();
        let chunk = sample[..missing.min(sample.len())].to_vec();
        sample.extend_from_slice(&chunk);
    }
    sample
}

/// Training set for the learned family: estimation overhead is what
/// Fig. 7 times, so training (like STHoles construction) is excluded
/// and capped — the model's parameter count, and hence its per-query
/// cost, is set by `LearnedConfig`, not by the training-set size.
const LEARNED_TRAIN_CAP: usize = 4_096;

/// Measures the learned family's estimation overhead. The model holds
/// `bins · paths · dims` parameters regardless of `size`, so its
/// series is flat — the point of plotting it against the KDE sweep.
fn measure_learned(table: &Table, regions: &[Rect], size: usize, seed: u64) -> PerfPoint {
    let mut rng = StdRng::seed_from_u64(seed ^ size as u64 ^ 0x1ea2);
    let train = sized_sample(table, size.min(LEARNED_TRAIN_CAP), &mut rng);
    let model = LearnedEstimator::train(&train, table.dims(), &LearnedConfig::default());
    let wall = Instant::now();
    let mut sink = 0.0;
    for region in regions {
        sink += model.estimate(region);
    }
    std::hint::black_box(sink);
    PerfPoint {
        model_size: size,
        modeled_seconds: Some(regions.len() as f64 * model.query_cost()),
        measured_seconds: wall.elapsed().as_secs_f64(),
    }
}

/// Measures the exact-scan family over a `size`-row staged snapshot
/// (capped at the table — an exact scan never duplicates rows).
fn measure_exact(
    table: &Table,
    regions: &[Rect],
    backend: Backend,
    size: usize,
    seed: u64,
) -> PerfPoint {
    let mut rng = StdRng::seed_from_u64(seed ^ size as u64 ^ 0xe4ac);
    let rows = sampling::sample_rows(table, size.min(table.row_count()), &mut rng);
    let est = ExactScanEstimator::new(Device::new(backend), &rows, table.dims());
    let t0 = est.device().modeled_seconds();
    let wall = Instant::now();
    let mut sink = 0.0;
    for region in regions {
        sink += est.estimate(region);
    }
    std::hint::black_box(sink);
    PerfPoint {
        model_size: size,
        modeled_seconds: Some(est.device().modeled_seconds() - t0),
        measured_seconds: wall.elapsed().as_secs_f64(),
    }
}

/// Measures the hybrid router's end-to-end overhead: whatever mix of
/// families it chose, billed at each member's modeled device cost
/// (learned decisions at the host-FLOPs query cost, KDE and exact at
/// their device-ledger deltas).
fn measure_hybrid(
    table: &Table,
    regions: &[Rect],
    actuals: &[f64],
    backend: Backend,
    size: usize,
    seed: u64,
) -> PerfPoint {
    let mut rng = StdRng::seed_from_u64(seed ^ size as u64 ^ 0x11b2);
    let dims = table.dims();
    let sample = sized_sample(table, size, &mut rng);
    let config = HybridConfig::default();
    // Members mirror their standalone measurements: the KDE holds the
    // full `size`-point sample, the learned model trains on the capped
    // subset, the exact member scans a `size`-row table snapshot.
    let kde = AdaptiveKde::new(
        Device::new(backend),
        &sample,
        dims,
        config.kernel,
        config.adaptive.clone(),
        config.karma.clone(),
    );
    let learned = LearnedEstimator::train(
        &sample[..(size.min(LEARNED_TRAIN_CAP) * dims).min(sample.len())],
        dims,
        &config.learned,
    );
    let exact_rows = sampling::sample_rows(table, size.min(table.row_count()), &mut rng);
    let exact = ExactScanEstimator::new(Device::new(backend), &exact_rows, dims);
    let mut hybrid = HybridEstimator::new(kde, learned, exact, config.router.clone());
    let kde0 = hybrid.kde().model().device().modeled_seconds();
    let exact0 = hybrid.exact().device().modeled_seconds();
    let learned_cost = hybrid.learned().query_cost();
    let wall = Instant::now();
    for (region, &actual) in regions.iter().zip(actuals) {
        let (estimate, _family) = hybrid.estimate_routed(region);
        let feedback = QueryFeedback {
            region: region.clone(),
            estimate,
            actual,
            cardinality: 0,
        };
        kdesel_types::SelectivityEstimator::observe(&mut hybrid, &feedback);
    }
    let measured = wall.elapsed().as_secs_f64();
    let learned_decisions = hybrid.router().decisions()[Family::Learned.index()] as f64;
    let modeled = (hybrid.kde().model().device().modeled_seconds() - kde0)
        + (hybrid.exact().device().modeled_seconds() - exact0)
        + learned_decisions * learned_cost;
    PerfPoint {
        model_size: size,
        modeled_seconds: Some(modeled),
        measured_seconds: measured,
    }
}

/// Measures STHoles estimation time over a histogram built to the same
/// memory footprint as `size` KDE points (§6.4: "we report the runtime
/// overhead for the full STHoles model, which was constructed over a
/// large-enough training workload... we only measured estimation time").
fn measure_stholes(table: &Table, regions: &[Rect], size: usize, seed: u64) -> PerfPoint {
    let dims = table.dims();
    // Byte parity: size·d f32 scalars vs (2d+2) f32 scalars per bucket.
    // Capped: in high dimensions a 1%-selectivity query box is wide enough
    // to intersect most buckets, so each feedback refinement touches O(B)
    // buckets and histogram construction beyond a few thousand buckets is
    // impractical (the same engineering reality the STHoles paper's
    // multi-second maintenance times reflect, §6.4). Estimation time is
    // linear in the bucket count, so the trend past the cap extrapolates,
    // and the paper's conclusion ("slower for large models") is already
    // visible at the cap.
    let buckets = (size * dims / (2 * dims + 2)).clamp(4, 4_096);
    let domain = table.bounding_box().expect("non-empty table");
    let mut hist = SthHoles::new(
        domain,
        table.row_count() as u64,
        SthConfig {
            max_buckets: buckets,
        },
    );
    // Fill the budget with a training workload (maintenance excluded from
    // timing). Training size scales with the bucket budget; counting runs
    // against a subsample for speed — build cost is not what Fig. 7 times.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let count_table = Table::from_rows(
        dims,
        &sampling::sample_rows(table, 2_000.min(table.row_count()), &mut rng),
    );
    let scale = table.row_count() as f64 / count_table.row_count() as f64;
    // DT-style narrow queries keep refinement local (UV queries in high d
    // span half the domain per side and touch every bucket).
    let train = generate_workload(
        table,
        WorkloadSpec::paper(WorkloadKind::DataTarget),
        (buckets / 8).clamp(50, 150),
        &mut rng,
    );
    for q in &train {
        hist.refine(&q.region, |r| {
            (count_table.count_in(r) as f64 * scale) as u64
        });
    }
    let wall = Instant::now();
    let mut sink = 0.0;
    for region in regions {
        sink += hist.estimate_selectivity(region);
    }
    std::hint::black_box(sink);
    PerfPoint {
        model_size: size,
        modeled_seconds: None,
        measured_seconds: wall.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_shapes_match_paper() {
        let config = PerfConfig {
            dims: 4,
            rows: 5_000,
            sample_sizes: vec![1 << 10, 1 << 14, 1 << 18],
            queries: 20,
            include_stholes: false,
            include_bakeoff: false,
            seed: 1,
        };
        let series = run_perf(&config);
        assert_eq!(series.len(), 4);

        let get = |label: &str| {
            series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"))
        };
        let hg = get("heuristic/sim-gpu");
        let hc = get("heuristic/cpu-par");
        let ag = get("adaptive/sim-gpu");

        // Flat-then-linear: 1K → 16K grows far less than 16K → 128K.
        let m = |s: &PerfSeries, i: usize| s.points[i].modeled_seconds.unwrap();
        assert!(
            m(hg, 1) / m(hg, 0) < 3.0,
            "GPU should be latency-bound early"
        );
        assert!(
            m(hg, 2) / m(hg, 1) > 3.0,
            "GPU should be compute-bound late"
        );

        // GPU beats CPU at the largest size by roughly the paper's factor.
        let ratio = m(hc, 2) / m(hg, 2);
        assert!((2.0..7.0).contains(&ratio), "GPU/CPU ratio {ratio}");

        // Adaptive costs a roughly constant extra over Heuristic.
        let gap_small = m(ag, 0) - m(hg, 0);
        let gap_large = m(ag, 2) - m(hg, 2);
        assert!(gap_small > 0.0);
        assert!(
            (gap_large / gap_small) < 2.0,
            "adaptive gap should be ~constant: {gap_small} vs {gap_large}"
        );
    }

    #[test]
    fn bakeoff_series_join_the_sweep() {
        let config = PerfConfig {
            dims: 3,
            rows: 3_000,
            sample_sizes: vec![1 << 7, 1 << 10],
            queries: 10,
            include_stholes: false,
            include_bakeoff: true,
            seed: 3,
        };
        let series = run_perf(&config);
        for label in [
            "learned",
            "exact/sim-gpu",
            "exact/cpu-par",
            "hybrid/sim-gpu",
        ] {
            let s = series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"));
            assert_eq!(s.points.len(), 2);
            for p in &s.points {
                let m = p.modeled_seconds.expect("bake-off series are modeled");
                assert!(m > 0.0, "{label}: modeled {m}");
            }
        }
        // The learned model's per-query cost does not grow with the
        // sample; the exact scan's does.
        let m = |label: &str, i: usize| {
            series.iter().find(|s| s.label == label).unwrap().points[i]
                .modeled_seconds
                .unwrap()
        };
        assert_eq!(m("learned", 0), m("learned", 1));
        assert!(m("exact/cpu-par", 1) > m("exact/cpu-par", 0));
    }

    #[test]
    fn stholes_measured_time_grows_with_model() {
        let config = PerfConfig {
            dims: 3,
            rows: 4_000,
            sample_sizes: vec![1 << 8, 1 << 13],
            queries: 50,
            include_stholes: true,
            include_bakeoff: false,
            seed: 2,
        };
        let series = run_perf(&config);
        let st = series.iter().find(|s| s.label == "stholes").unwrap();
        assert!(st.points[0].modeled_seconds.is_none());
        assert!(
            st.points[1].measured_seconds > st.points[0].measured_seconds,
            "larger histogram should be slower: {:?}",
            st.points
        );
    }
}
