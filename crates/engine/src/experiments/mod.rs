//! The paper's evaluation protocols (§6).
//!
//! Each submodule implements one experiment family and returns structured
//! results; the `kdesel-bench` binaries drive them at paper scale and print
//! the tables/series behind each figure:
//!
//! * [`static_quality`] — Figures 4 & 5 (+ the raw data for Table 1),
//! * [`winrate`] — Table 1,
//! * [`scaling`] — Figure 6,
//! * [`perf`] — Figure 7,
//! * [`dynamic`] — Figure 8,
//! * [`ablation`] — §5.5's logarithmic-update claim and parameter sweeps.

pub mod ablation;
pub mod dynamic;
pub mod perf;
pub mod scaling;
pub mod static_quality;
pub mod winrate;
