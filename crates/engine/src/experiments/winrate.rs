//! Pairwise win-rate matrix (paper Table 1).
//!
//! "Cells list the percentage of experiments in which the row's estimator
//! performed better than the one on top." One "experiment" is one
//! (dataset, dims, workload, repetition) tuple; estimator A beats B when
//! A's mean absolute error over the 300 test queries is strictly lower.

use crate::estimators::EstimatorKind;
use crate::experiments::static_quality::CellResult;

/// Win-rate matrix over a set of estimators.
#[derive(Debug)]
pub struct WinRateMatrix {
    estimators: Vec<EstimatorKind>,
    /// `wins[i][j]` = number of experiments where `i` beat `j`.
    wins: Vec<Vec<u32>>,
    /// `comparisons[i][j]` = experiments where both were measured.
    comparisons: Vec<Vec<u32>>,
}

impl WinRateMatrix {
    /// Creates an empty matrix.
    pub fn new(estimators: Vec<EstimatorKind>) -> Self {
        let n = estimators.len();
        Self {
            estimators,
            wins: vec![vec![0; n]; n],
            comparisons: vec![vec![0; n]; n],
        }
    }

    /// The estimator order.
    pub fn estimators(&self) -> &[EstimatorKind] {
        &self.estimators
    }

    /// Consumes one cell's per-repetition errors.
    pub fn add_cell(&mut self, cell: &CellResult) {
        let n = self.estimators.len();
        let errors: Vec<Option<&[f64]>> = self
            .estimators
            .iter()
            .map(|&k| cell.rep_errors(k))
            .collect();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (Some(ei), Some(ej)) = (errors[i], errors[j]) else {
                    continue;
                };
                for (a, b) in ei.iter().zip(ej) {
                    self.comparisons[i][j] += 1;
                    if a < b {
                        self.wins[i][j] += 1;
                    }
                }
            }
        }
    }

    /// Win rate (%) of estimator `row` against `col`, `None` when no
    /// comparisons were recorded or `row == col`.
    pub fn rate(&self, row: EstimatorKind, col: EstimatorKind) -> Option<f64> {
        let i = self.estimators.iter().position(|&k| k == row)?;
        let j = self.estimators.iter().position(|&k| k == col)?;
        if i == j || self.comparisons[i][j] == 0 {
            return None;
        }
        Some(100.0 * self.wins[i][j] as f64 / self.comparisons[i][j] as f64)
    }

    /// Win rate of `row` against *all* other estimators pooled (the paper's
    /// "All" column).
    pub fn rate_against_all(&self, row: EstimatorKind) -> Option<f64> {
        let i = self.estimators.iter().position(|&k| k == row)?;
        let mut wins = 0u32;
        let mut total = 0u32;
        for j in 0..self.estimators.len() {
            if i == j {
                continue;
            }
            wins += self.wins[i][j];
            total += self.comparisons[i][j];
        }
        if total == 0 {
            None
        } else {
            Some(100.0 * wins as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::static_quality::StaticCell;
    use kdesel_data::{Dataset, WorkloadKind};
    use kdesel_types::Summary;

    fn fake_cell(errors: &[(EstimatorKind, Vec<f64>)]) -> CellResult {
        CellResult {
            cell: StaticCell {
                dataset: Dataset::Synthetic,
                dims: 2,
                workload: WorkloadKind::DataTarget,
            },
            summaries: errors
                .iter()
                .map(|(k, e)| (*k, Summary::from_values(e.iter().copied())))
                .collect(),
        }
    }

    #[test]
    fn counts_wins_per_repetition() {
        let mut m = WinRateMatrix::new(vec![EstimatorKind::Batch, EstimatorKind::Heuristic]);
        // Batch wins reps 0 and 1, loses rep 2.
        m.add_cell(&fake_cell(&[
            (EstimatorKind::Batch, vec![0.1, 0.1, 0.5]),
            (EstimatorKind::Heuristic, vec![0.2, 0.3, 0.1]),
        ]));
        let r = m
            .rate(EstimatorKind::Batch, EstimatorKind::Heuristic)
            .unwrap();
        assert!((r - 66.66667).abs() < 1e-3);
        let inv = m
            .rate(EstimatorKind::Heuristic, EstimatorKind::Batch)
            .unwrap();
        assert!((inv - 33.33333).abs() < 1e-3);
    }

    #[test]
    fn ties_count_as_losses_for_both() {
        let mut m = WinRateMatrix::new(vec![EstimatorKind::Batch, EstimatorKind::Scv]);
        m.add_cell(&fake_cell(&[
            (EstimatorKind::Batch, vec![0.2]),
            (EstimatorKind::Scv, vec![0.2]),
        ]));
        assert_eq!(m.rate(EstimatorKind::Batch, EstimatorKind::Scv), Some(0.0));
        assert_eq!(m.rate(EstimatorKind::Scv, EstimatorKind::Batch), Some(0.0));
    }

    #[test]
    fn missing_estimator_yields_none() {
        let m = WinRateMatrix::new(vec![EstimatorKind::Batch, EstimatorKind::Scv]);
        assert_eq!(m.rate(EstimatorKind::Batch, EstimatorKind::Scv), None);
        assert_eq!(m.rate(EstimatorKind::Batch, EstimatorKind::Adaptive), None);
        assert_eq!(m.rate(EstimatorKind::Batch, EstimatorKind::Batch), None);
    }

    #[test]
    fn all_column_pools_opponents() {
        let mut m = WinRateMatrix::new(vec![
            EstimatorKind::Batch,
            EstimatorKind::Heuristic,
            EstimatorKind::Scv,
        ]);
        m.add_cell(&fake_cell(&[
            (EstimatorKind::Batch, vec![0.1]),
            (EstimatorKind::Heuristic, vec![0.2]),
            (EstimatorKind::Scv, vec![0.05]),
        ]));
        // Batch beats heuristic, loses to scv → 50% pooled.
        assert_eq!(m.rate_against_all(EstimatorKind::Batch), Some(50.0));
    }
}
