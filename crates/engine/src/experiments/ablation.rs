//! Ablations of the design choices DESIGN.md calls out.
//!
//! * [`run_log_update_ablation`] — §5.5's claim: "updating the logarithm of
//!   the bandwidth often leads to improved estimates... we observed
//!   improvements over the non-logarithmic case in 68% of all experiments."
//! * [`run_parameter_sweep`] — sensitivity of the adaptive estimator to the
//!   mini-batch size `N` (§4.1 suggests 10), the Karma cap `K_max`
//!   (footnote 3 suggests 4), and the replacement threshold (unspecified in
//!   the paper; −2 is this repository's default).

use crate::estimators::{AnyEstimator, BuildConfig, EstimatorKind};
use crate::session::run_query;
use kdesel_data::{generate_workload, Dataset, WorkloadKind, WorkloadSpec};
use kdesel_storage::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration shared by the ablations.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Datasets × workloads to sweep.
    pub datasets: Vec<Dataset>,
    /// Workloads to sweep.
    pub workloads: Vec<WorkloadKind>,
    /// Dimensionality.
    pub dims: usize,
    /// Table rows.
    pub rows: usize,
    /// Feedback queries per run.
    pub queries: usize,
    /// Repetitions per (dataset, workload) cell.
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            datasets: Dataset::ALL.to_vec(),
            workloads: vec![WorkloadKind::DataTarget, WorkloadKind::DataVolume],
            dims: 3,
            rows: 10_000,
            queries: 200,
            repetitions: 5,
            seed: 0xab1a,
        }
    }
}

/// Result of the log-vs-linear ablation.
#[derive(Debug)]
pub struct LogUpdateResult {
    /// (dataset, workload, rep, log error, linear error) per experiment.
    pub experiments: Vec<(Dataset, WorkloadKind, usize, f64, f64)>,
}

impl LogUpdateResult {
    /// Fraction of experiments where logarithmic updates were strictly
    /// better (paper: 68%).
    pub fn log_win_fraction(&self) -> f64 {
        if self.experiments.is_empty() {
            return 0.0;
        }
        let wins = self
            .experiments
            .iter()
            .filter(|(_, _, _, log, lin)| log < lin)
            .count();
        wins as f64 / self.experiments.len() as f64
    }
}

/// Runs one adaptive estimator over a feedback stream and returns the mean
/// absolute error over the second half of the stream (after warm-up).
fn adaptive_error(
    dataset: Dataset,
    workload: WorkloadKind,
    config: &AblationConfig,
    rep: usize,
    configure: impl Fn(&mut BuildConfig),
) -> f64 {
    let table = dataset.generate_projected(config.dims, config.rows, config.seed);
    let mut rng =
        StdRng::seed_from_u64(config.seed + rep as u64 * 131 + workload.name().len() as u64);
    let mut build = BuildConfig::paper_default(config.dims);
    configure(&mut build);
    let sample = sampling::sample_rows(&table, build.sample_points(config.dims), &mut rng);
    let queries = generate_workload(
        &table,
        WorkloadSpec::paper(workload),
        config.queries,
        &mut rng,
    );
    let mut estimator = AnyEstimator::build(
        EstimatorKind::Adaptive,
        &table,
        &sample,
        &[],
        &build,
        &mut rng,
    );
    let half = queries.len() / 2;
    let mut total = 0.0;
    for (i, q) in queries.iter().enumerate() {
        let out = run_query(&table, &mut estimator, &q.region, &mut rng);
        if i >= half {
            total += out.absolute_error();
        }
    }
    total / (queries.len() - half) as f64
}

/// Runs the §5.5 logarithmic-update ablation.
pub fn run_log_update_ablation(config: &AblationConfig) -> LogUpdateResult {
    let mut experiments = Vec::new();
    for &dataset in &config.datasets {
        for &workload in &config.workloads {
            for rep in 0..config.repetitions {
                let log_err = adaptive_error(dataset, workload, config, rep, |b| {
                    b.adaptive.log_updates = true;
                });
                let lin_err = adaptive_error(dataset, workload, config, rep, |b| {
                    b.adaptive.log_updates = false;
                });
                experiments.push((dataset, workload, rep, log_err, lin_err));
            }
        }
    }
    LogUpdateResult { experiments }
}

/// One row of the parameter sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Parameter name.
    pub parameter: &'static str,
    /// Parameter value.
    pub value: f64,
    /// Mean adaptive error at that value.
    pub error: f64,
}

/// Sweeps mini-batch size, Karma cap, and Karma threshold on the synthetic
/// dataset.
pub fn run_parameter_sweep(config: &AblationConfig) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    let mean_over_reps = |configure: &dyn Fn(&mut BuildConfig)| -> f64 {
        let mut total = 0.0;
        for rep in 0..config.repetitions {
            total += adaptive_error(
                Dataset::Synthetic,
                WorkloadKind::DataTarget,
                config,
                rep,
                configure,
            );
        }
        total / config.repetitions as f64
    };
    for n in [1usize, 5, 10, 20] {
        let err = mean_over_reps(&|b: &mut BuildConfig| b.adaptive.mini_batch = n);
        out.push(SweepPoint {
            parameter: "mini_batch",
            value: n as f64,
            error: err,
        });
    }
    for k_max in [1.0, 2.0, 4.0, 8.0] {
        let err = mean_over_reps(&|b: &mut BuildConfig| b.karma.k_max = k_max);
        out.push(SweepPoint {
            parameter: "k_max",
            value: k_max,
            error: err,
        });
    }
    for threshold in [-0.5, -1.0, -2.0, -4.0] {
        let err = mean_over_reps(&|b: &mut BuildConfig| b.karma.threshold = threshold);
        out.push(SweepPoint {
            parameter: "karma_threshold",
            value: threshold,
            error: err,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            datasets: vec![Dataset::Synthetic],
            workloads: vec![WorkloadKind::DataTarget],
            dims: 2,
            rows: 2_000,
            queries: 60,
            repetitions: 2,
            seed: 3,
        }
    }

    #[test]
    fn log_ablation_produces_paired_errors() {
        let result = run_log_update_ablation(&tiny());
        assert_eq!(result.experiments.len(), 2);
        for (_, _, _, log, lin) in &result.experiments {
            assert!(log.is_finite() && lin.is_finite());
            assert!(*log >= 0.0 && *lin >= 0.0);
        }
        let f = result.log_win_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn parameter_sweep_covers_all_parameters() {
        let mut cfg = tiny();
        cfg.repetitions = 1;
        cfg.queries = 40;
        let points = run_parameter_sweep(&cfg);
        let params: Vec<&str> = points.iter().map(|p| p.parameter).collect();
        assert!(params.contains(&"mini_batch"));
        assert!(params.contains(&"k_max"));
        assert!(params.contains(&"karma_threshold"));
        assert_eq!(points.len(), 12);
        assert!(points.iter().all(|p| p.error.is_finite()));
    }
}
