//! Estimation quality vs. model size (paper §6.3, Figure 6).
//!
//! "The experiment was set up like the previous section, using the 8D
//! Forest dataset and the DT workload. Estimators were built based on 100
//! randomly selected queries, the estimation quality — the absolute
//! selectivity estimation error — was measured based on another 100
//! queries. Each experiment was repeated ten times." Sample sizes sweep
//! 1024 … 32768; errors fall roughly as a power law in `s`, and optimized
//! estimators stay ≈2× more accurate than the heuristic at every size.

use crate::estimators::{AnyEstimator, BuildConfig, EstimatorKind};
use crate::session::run_query;
use kdesel_data::{generate_workload, Dataset, WorkloadKind, WorkloadSpec};
use kdesel_storage::sampling;
use kdesel_types::{MemoryBudget, Precision, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scaling-experiment configuration.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Dataset (paper: Forest).
    pub dataset: Dataset,
    /// Dimensionality (paper: 8).
    pub dims: usize,
    /// Table rows.
    pub rows: usize,
    /// Workload (paper: DT).
    pub workload: WorkloadKind,
    /// Sample sizes to sweep (paper: 1024, 2048, …, 32768).
    pub sample_sizes: Vec<usize>,
    /// Estimators (paper: Heuristic, Batch, Adaptive).
    pub estimators: Vec<EstimatorKind>,
    /// Training queries (paper: 100).
    pub train_queries: usize,
    /// Test queries (paper: 100).
    pub test_queries: usize,
    /// Repetitions (paper: 10).
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
    /// Use the reduced optimizer budgets (quick profile).
    pub fast_optimizers: bool,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self {
            dataset: Dataset::Forest,
            dims: 8,
            rows: 50_000,
            workload: WorkloadKind::DataTarget,
            sample_sizes: (10..=15).map(|p| 1usize << p).collect(),
            estimators: vec![
                EstimatorKind::Heuristic,
                EstimatorKind::Batch,
                EstimatorKind::Adaptive,
            ],
            train_queries: 100,
            test_queries: 100,
            repetitions: 10,
            seed: 0xf166,
            fast_optimizers: false,
        }
    }
}

/// Result: for each sample size, per-estimator error summaries over reps.
#[derive(Debug)]
pub struct ScalingResult {
    /// Sample sizes swept.
    pub sample_sizes: Vec<usize>,
    /// `series[e][s]` = summary for estimator `e` at size index `s`.
    pub series: Vec<(EstimatorKind, Vec<Summary>)>,
}

/// Runs the Figure 6 sweep.
pub fn run_scaling(config: &ScalingConfig) -> ScalingResult {
    let table = config
        .dataset
        .generate_projected(config.dims, config.rows, config.seed);
    let mut series: Vec<(EstimatorKind, Vec<Summary>)> = config
        .estimators
        .iter()
        .map(|&k| {
            (
                k,
                config.sample_sizes.iter().map(|_| Summary::new()).collect(),
            )
        })
        .collect();

    for (si, &size) in config.sample_sizes.iter().enumerate() {
        // Budget sized to hold exactly `size` f64 points.
        let mut build = BuildConfig::paper_default(config.dims);
        if config.fast_optimizers {
            build = build.with_fast_optimizers();
        }
        build.budget = MemoryBudget::from_bytes(size * config.dims * 8);
        build.precision = Precision::F64;
        for rep in 0..config.repetitions {
            let mut rng =
                StdRng::seed_from_u64(config.seed + (rep as u64) * 7919 + (si as u64) * 104_729);
            let sample = sampling::sample_rows(&table, size, &mut rng);
            let spec = WorkloadSpec::paper(config.workload);
            let train = generate_workload(&table, spec, config.train_queries, &mut rng);
            let test = generate_workload(&table, spec, config.test_queries, &mut rng);
            for (ei, &kind) in config.estimators.iter().enumerate() {
                let mut est_rng =
                    StdRng::seed_from_u64(config.seed ^ (rep as u64) ^ (ei as u64) << 16);
                let mut estimator =
                    AnyEstimator::build(kind, &table, &sample, &train, &build, &mut est_rng);
                if kind == EstimatorKind::Adaptive {
                    for q in &train {
                        run_query(&table, &mut estimator, &q.region, &mut est_rng);
                    }
                }
                let mut total = 0.0;
                for q in &test {
                    total +=
                        run_query(&table, &mut estimator, &q.region, &mut est_rng).absolute_error();
                }
                series[ei].1[si].add(total / test.len() as f64);
            }
        }
    }
    ScalingResult {
        sample_sizes: config.sample_sizes.clone(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_decreases_with_model_size() {
        let config = ScalingConfig {
            dataset: Dataset::Synthetic,
            dims: 2,
            rows: 5_000,
            sample_sizes: vec![32, 512],
            estimators: vec![EstimatorKind::Heuristic, EstimatorKind::Batch],
            train_queries: 30,
            test_queries: 40,
            repetitions: 3,
            ..Default::default()
        };
        let result = run_scaling(&config);
        assert_eq!(result.sample_sizes, vec![32, 512]);
        for (kind, summaries) in &result.series {
            let small = summaries[0].mean();
            let large = summaries[1].mean();
            assert!(
                large < small,
                "{}: error should shrink with model size ({small} -> {large})",
                kind.name()
            );
        }
    }
}
