//! Static-data estimation quality (paper §6.2, Figures 4 & 5).
//!
//! Protocol, quoting the paper: "We randomly selected 100 training and 300
//! test queries from the selected workload. Then, we initialized the
//! estimators, and — if applicable — optimized their model parameters based
//! on the training queries. Finally, we measured the average absolute
//! selectivity estimation error on the test set. This process was repeated
//! 25 times... During each run, all estimators were given the exact same
//! set of queries... all KDE-based estimators were built using the same
//! random sample... we restricted all estimators to use the same amount of
//! memory (d · 4 kB)."

use crate::estimators::{AnyEstimator, BuildConfig, EstimatorKind};
use crate::session::run_query;
use kdesel_data::{generate_workload, Dataset, WorkloadKind, WorkloadSpec};
use kdesel_storage::{sampling, Table};
use kdesel_types::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One (dataset, dimensionality, workload) cell of Figures 4/5.
#[derive(Debug, Clone, Copy)]
pub struct StaticCell {
    /// Evaluated dataset.
    pub dataset: Dataset,
    /// Projection dimensionality (3 or 8 in the paper).
    pub dims: usize,
    /// Query workload family.
    pub workload: WorkloadKind,
}

/// Static-experiment configuration.
#[derive(Debug, Clone)]
pub struct StaticConfig {
    /// Table rows to generate (the paper uses the full datasets; scale down
    /// for quick runs — relative estimator behaviour is row-count-stable).
    pub rows: usize,
    /// Training queries (paper: 100).
    pub train_queries: usize,
    /// Test queries (paper: 300).
    pub test_queries: usize,
    /// Repetitions (paper: 25).
    pub repetitions: usize,
    /// Estimators to compare.
    pub estimators: Vec<EstimatorKind>,
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Use the reduced optimizer budgets (quick profile).
    pub fast_optimizers: bool,
}

impl Default for StaticConfig {
    fn default() -> Self {
        Self {
            rows: 20_000,
            train_queries: 100,
            test_queries: 300,
            repetitions: 25,
            estimators: EstimatorKind::ALL.to_vec(),
            seed: 0x5e1ec7,
            fast_optimizers: false,
        }
    }
}

/// Result of one cell: per estimator, the distribution (over repetitions)
/// of the mean absolute selectivity error.
#[derive(Debug)]
pub struct CellResult {
    /// The cell this result belongs to.
    pub cell: StaticCell,
    /// Parallel to `config.estimators`: mean-error summaries over reps.
    pub summaries: Vec<(EstimatorKind, Summary)>,
}

impl CellResult {
    /// Mean error of one estimator across repetitions.
    pub fn mean_error(&self, kind: EstimatorKind) -> Option<f64> {
        self.summaries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| s.mean())
    }

    /// Per-repetition errors of one estimator.
    pub fn rep_errors(&self, kind: EstimatorKind) -> Option<&[f64]> {
        self.summaries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| s.values())
    }
}

/// Runs one repetition of one cell against a prepared table; returns the
/// mean absolute error per estimator (order matching `config.estimators`).
fn run_repetition(table: &Table, cell: &StaticCell, config: &StaticConfig, rep: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(rep as u64).wrapping_mul(0x9e37));
    let mut build = BuildConfig::paper_default(cell.dims);
    if config.fast_optimizers {
        build = build.with_fast_optimizers();
    }
    let sample_points = build.sample_points(cell.dims);

    // One sample and one query set, shared by all estimators (§6.2).
    let sample = sampling::sample_rows(table, sample_points, &mut rng);
    let spec = WorkloadSpec::paper(cell.workload);
    let train = generate_workload(table, spec, config.train_queries, &mut rng);
    let test = generate_workload(table, spec, config.test_queries, &mut rng);

    config
        .estimators
        .iter()
        .enumerate()
        .map(|(ei, &kind)| {
            let mut est_rng =
                StdRng::seed_from_u64(config.seed ^ (rep as u64) << 8 ^ (ei as u64 + 1) << 32);
            let mut estimator =
                AnyEstimator::build(kind, table, &sample, &train, &build, &mut est_rng);
            // The adaptive estimator "trains" by consuming the training
            // stream as feedback.
            if kind == EstimatorKind::Adaptive {
                for q in &train {
                    run_query(table, &mut estimator, &q.region, &mut est_rng);
                }
            }
            // Measure on the test stream. Self-tuning estimators continue
            // to receive feedback — that is their defining property.
            let mut total = 0.0;
            for q in &test {
                let out = run_query(table, &mut estimator, &q.region, &mut est_rng);
                total += out.absolute_error();
            }
            total / test.len() as f64
        })
        .collect()
}

/// Runs all repetitions of one cell.
pub fn run_static_cell(cell: StaticCell, config: &StaticConfig) -> CellResult {
    assert!(config.repetitions > 0 && config.test_queries > 0);
    let table = cell
        .dataset
        .generate_projected(cell.dims, config.rows, config.seed);
    let mut summaries: Vec<(EstimatorKind, Summary)> = config
        .estimators
        .iter()
        .map(|&k| (k, Summary::new()))
        .collect();
    for rep in 0..config.repetitions {
        let errors = run_repetition(&table, &cell, config, rep);
        for ((_, summary), err) in summaries.iter_mut().zip(errors) {
            summary.add(err);
        }
    }
    CellResult { cell, summaries }
}

/// All cells of Figure 4 (3D) or Figure 5 (8D): five datasets × four
/// workloads.
pub fn figure_cells(dims: usize) -> Vec<StaticCell> {
    let mut cells = Vec::new();
    for dataset in Dataset::ALL {
        for workload in WorkloadKind::ALL {
            cells.push(StaticCell {
                dataset,
                dims,
                workload,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> StaticConfig {
        StaticConfig {
            rows: 3000,
            train_queries: 30,
            test_queries: 40,
            repetitions: 2,
            estimators: vec![
                EstimatorKind::Heuristic,
                EstimatorKind::Batch,
                EstimatorKind::SthHoles,
            ],
            seed: 42,
            fast_optimizers: true,
        }
    }

    #[test]
    fn cell_produces_summaries_for_all_estimators() {
        let cell = StaticCell {
            dataset: Dataset::Synthetic,
            dims: 2,
            workload: WorkloadKind::DataTarget,
        };
        let result = run_static_cell(cell, &quick_config());
        assert_eq!(result.summaries.len(), 3);
        for (kind, summary) in &result.summaries {
            assert_eq!(summary.count(), 2, "{}", kind.name());
            assert!(summary.mean() >= 0.0 && summary.mean() <= 1.0);
        }
        assert!(result.mean_error(EstimatorKind::Batch).is_some());
        assert!(result.mean_error(EstimatorKind::Adaptive).is_none());
    }

    #[test]
    fn batch_beats_heuristic_on_clustered_synthetic() {
        // The paper's headline: optimized bandwidth clearly beats Scott's
        // rule on clustered data.
        let cell = StaticCell {
            dataset: Dataset::Synthetic,
            dims: 2,
            workload: WorkloadKind::DataTarget,
        };
        let mut cfg = quick_config();
        cfg.repetitions = 3;
        let result = run_static_cell(cell, &cfg);
        let batch = result.mean_error(EstimatorKind::Batch).unwrap();
        let heuristic = result.mean_error(EstimatorKind::Heuristic).unwrap();
        assert!(
            batch < heuristic,
            "batch {batch} should beat heuristic {heuristic}"
        );
    }

    #[test]
    fn figure_cells_enumerate_twenty() {
        assert_eq!(figure_cells(3).len(), 20);
        assert_eq!(figure_cells(8).len(), 20);
    }
}
