//! A small database facade: table + attached estimator + feedback loop.
//!
//! Packages the paper's Figure 3 lifecycle behind the interface a
//! downstream user actually wants: `analyze()` (collect the sample and
//! build the model, like Postgres' `ANALYZE`), `query()` (estimate →
//! execute → feed back), and mutation methods that keep the estimator's
//! maintenance machinery informed.

use crate::estimators::{AnyEstimator, BuildConfig, EstimatorKind};
use crate::session::{run_query, QueryOutcome};
use kdesel_storage::{sampling, Table};
use kdesel_types::{LabelledQuery, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A relation with an attached, self-maintaining selectivity estimator.
pub struct Database {
    table: Table,
    estimator: Option<AnyEstimator>,
    config: BuildConfig,
    kind: EstimatorKind,
    rng: StdRng,
}

impl Database {
    /// Creates an empty database with `dims` attributes. The estimator is
    /// built on the first [`analyze`](Self::analyze).
    pub fn new(dims: usize, kind: EstimatorKind, seed: u64) -> Self {
        Self {
            table: Table::new(dims),
            estimator: None,
            config: BuildConfig::paper_default(dims),
            kind,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Wraps an existing table.
    pub fn from_table(table: Table, kind: EstimatorKind, seed: u64) -> Self {
        let dims = table.dims();
        Self {
            table,
            estimator: None,
            config: BuildConfig::paper_default(dims),
            kind,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying relation.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Overrides the build configuration (budget, backend, kernel, ...).
    /// Takes effect at the next [`analyze`](Self::analyze).
    pub fn set_build_config(&mut self, config: BuildConfig) {
        self.config = config;
    }

    /// Whether statistics exist.
    pub fn has_statistics(&self) -> bool {
        self.estimator.is_some()
    }

    /// Collects a fresh sample and (re)builds the estimator — the ANALYZE
    /// entry point (§5.2). `training` feeds workload-driven estimators
    /// (Batch, STHoles); pass `&[]` when none is available.
    ///
    /// # Panics
    /// Panics on an empty relation.
    pub fn analyze(&mut self, training: &[LabelledQuery]) {
        assert!(!self.table.is_empty(), "ANALYZE on an empty relation");
        let dims = self.table.dims();
        let points = self.config.sample_points(dims);
        let sample = sampling::sample_rows(&self.table, points, &mut self.rng);
        self.estimator = Some(AnyEstimator::build(
            self.kind,
            &self.table,
            &sample,
            training,
            &self.config,
            &mut self.rng,
        ));
    }

    /// Estimated selectivity without executing (the optimizer's view).
    ///
    /// # Panics
    /// Panics before the first [`analyze`](Self::analyze).
    pub fn estimate(&mut self, region: &Rect) -> f64 {
        self.estimator
            .as_mut()
            .expect("no statistics: run analyze() first")
            .estimate(region)
    }

    /// Runs a range query through the full lifecycle: estimate, execute,
    /// feed the truth back into the estimator.
    ///
    /// # Panics
    /// Panics before the first [`analyze`](Self::analyze).
    pub fn query(&mut self, region: &Rect) -> QueryOutcome {
        let estimator = self
            .estimator
            .as_mut()
            .expect("no statistics: run analyze() first");
        run_query(&self.table, estimator, region, &mut self.rng)
    }

    /// Inserts a row, notifying the estimator's reservoir path (§4.2).
    pub fn insert(&mut self, row: &[f64]) -> usize {
        let id = self.table.insert(row);
        if let Some(est) = self.estimator.as_mut() {
            est.handle_insert(row, &mut self.rng);
        }
        id
    }

    /// Deletes a row. The estimator learns about stale regions through
    /// subsequent query feedback (the Karma path) — exactly the paper's
    /// transfer-efficient design.
    pub fn delete(&mut self, row: usize) -> bool {
        self.table.delete(row)
    }

    /// Model memory in bytes (0 before analyze).
    pub fn statistics_bytes(&self) -> usize {
        self.estimator.as_ref().map_or(0, |e| e.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(kind: EstimatorKind) -> Database {
        let table = kdesel_data::Dataset::Synthetic.generate_projected(2, 2_000, 1);
        let mut db = Database::from_table(table, kind, 7);
        db.analyze(&[]);
        db
    }

    #[test]
    fn analyze_then_query_lifecycle() {
        let mut db = loaded(EstimatorKind::Adaptive);
        assert!(db.has_statistics());
        assert!(db.statistics_bytes() > 0);
        let region = db.table().bounding_box().unwrap();
        let out = db.query(&region);
        assert_eq!(out.actual, 1.0);
        assert!(out.absolute_error() < 0.1);
    }

    #[test]
    fn inserts_and_deletes_flow_through() {
        let mut db = loaded(EstimatorKind::Adaptive);
        // Probe spans several bandwidths around the insertion point so the
        // kernel-smoothed mass is visible.
        let probe = Rect::cube(2, 460.0, 540.0);
        assert!(db.query(&probe).estimate < 0.01);
        let mut ids = Vec::new();
        for _ in 0..4000 {
            ids.push(db.insert(&[500.0, 500.0]));
        }
        // Reservoir refreshes the sample → the new mass becomes visible.
        let est_after_inserts = db.query(&probe).estimate;
        assert!(
            est_after_inserts > 0.2,
            "estimate {est_after_inserts} after mass insert"
        );
        for id in ids {
            assert!(db.delete(id));
        }
        // Karma-driven recovery through repeated feedback.
        let mut estimate = 1.0;
        for _ in 0..120 {
            estimate = db.query(&probe).estimate;
            if estimate < 0.02 {
                break;
            }
        }
        assert!(estimate < 0.02, "estimate {estimate} after delete+feedback");
    }

    #[test]
    fn reanalyze_rebuilds_statistics() {
        let mut db = loaded(EstimatorKind::Heuristic);
        // After re-ANALYZE the table is bimodal (clusters near [0,100]² and
        // the inserted mass at (500,500)), so Scott's bandwidth grows to
        // ≈75; the probe must span a few bandwidths around the new mode.
        let probe = Rect::cube(2, 300.0, 700.0);
        for _ in 0..3000 {
            db.insert(&[500.0, 500.0]);
        }
        // Heuristic has no maintenance: still stale...
        let stale = db.query(&probe).estimate;
        assert!(stale < 0.05, "estimate {stale}");
        // ...until ANALYZE rebuilds from a fresh sample.
        db.analyze(&[]);
        let fresh = db.query(&probe).estimate;
        assert!(fresh > 0.3, "estimate {fresh} after re-analyze");
    }

    #[test]
    #[should_panic(expected = "no statistics")]
    fn querying_without_statistics_panics() {
        let table = kdesel_data::Dataset::Synthetic.generate_projected(2, 100, 2);
        let mut db = Database::from_table(table, EstimatorKind::Heuristic, 3);
        db.estimate(&Rect::cube(2, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "empty relation")]
    fn analyze_on_empty_relation_panics() {
        let mut db = Database::new(2, EstimatorKind::Heuristic, 4);
        db.analyze(&[]);
    }
}
