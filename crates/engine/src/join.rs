//! Join selectivity estimation — the paper's §8 future-work item.
//!
//! "If the predicate is known beforehand — for instance in case of PK-FK
//! joins —, it can be done by building the estimator based on a sample
//! collected directly from the join result, e.g. by using the sampling
//! algorithms presented in [Chaudhuri, Motwani, Narasayya 1999]."
//!
//! For a PK-FK equi-join `R ⋈ S` every `R` tuple joins with at most one `S`
//! tuple, so a uniform sample of `R` joined against the `S` index *is* a
//! uniform sample of the join result — the CMN insight this module uses.
//! A KDE model over the concatenated attribute space then answers range
//! predicates spanning both relations, capturing cross-table correlations
//! that the textbook independence assumption destroys.

use kdesel_device::Device;
use kdesel_kde::{KdeEstimator, KernelFn};
use kdesel_storage::Table;
use kdesel_types::Rect;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Exact-match key for f64 join columns (keys are expected to be integral
/// identifiers stored as doubles).
fn key(v: f64) -> u64 {
    v.to_bits()
}

/// An index from PK value to row id of the PK-side table.
fn build_pk_index(s: &Table, pk_col: usize) -> HashMap<u64, usize> {
    let mut index = HashMap::with_capacity(s.row_count());
    for (id, row) in s.rows() {
        let prev = index.insert(key(row[pk_col]), id);
        assert!(prev.is_none(), "duplicate primary key {}", row[pk_col]);
    }
    index
}

/// Draws a uniform sample of `n` join-result rows (row-major, width
/// `r.dims() + s.dims()`), by uniformly sampling FK-side rows and probing
/// the PK index. Dangling FK rows are skipped (inner-join semantics).
pub fn sample_join<R: Rng + ?Sized>(
    r: &Table,
    fk_col: usize,
    s: &Table,
    pk_col: usize,
    n: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(fk_col < r.dims() && pk_col < s.dims());
    let index = build_pk_index(s, pk_col);
    let mut r_rows: Vec<usize> = r.rows().map(|(id, _)| id).collect();
    r_rows.shuffle(rng);
    let width = r.dims() + s.dims();
    let mut out = Vec::with_capacity(n * width);
    for id in r_rows {
        if out.len() >= n * width {
            break;
        }
        let r_row = r.row(id).expect("live row");
        if let Some(&s_id) = index.get(&key(r_row[fk_col])) {
            out.extend_from_slice(r_row);
            out.extend_from_slice(s.row(s_id).expect("live row"));
        }
    }
    out
}

/// Exact join-result cardinality and the count satisfying `region` (over
/// the concatenated attribute space). The reference the estimator is
/// measured against.
pub fn join_truth(r: &Table, fk_col: usize, s: &Table, pk_col: usize, region: &Rect) -> (u64, u64) {
    assert_eq!(region.dims(), r.dims() + s.dims());
    let index = build_pk_index(s, pk_col);
    let mut total = 0u64;
    let mut matching = 0u64;
    let mut joined = vec![0.0; r.dims() + s.dims()];
    for (_, r_row) in r.rows() {
        if let Some(&s_id) = index.get(&key(r_row[fk_col])) {
            total += 1;
            let s_row = s.row(s_id).expect("live row");
            joined[..r.dims()].copy_from_slice(r_row);
            joined[r.dims()..].copy_from_slice(s_row);
            if region.contains(&joined) {
                matching += 1;
            }
        }
    }
    (total, matching)
}

/// A KDE selectivity estimator over a PK-FK join result.
#[derive(Debug)]
pub struct JoinKde {
    inner: KdeEstimator,
}

impl JoinKde {
    /// Builds the model from a join-result sample of `sample_size` rows.
    ///
    /// # Panics
    /// Panics when the join sample comes out empty (no matching tuples).
    pub fn new<R: Rng + ?Sized>(
        device: Device,
        r: &Table,
        fk_col: usize,
        s: &Table,
        pk_col: usize,
        sample_size: usize,
        kernel: KernelFn,
        rng: &mut R,
    ) -> Self {
        let sample = sample_join(r, fk_col, s, pk_col, sample_size, rng);
        assert!(!sample.is_empty(), "empty join result");
        let width = r.dims() + s.dims();
        Self {
            inner: KdeEstimator::new(device, &sample, width, kernel),
        }
    }

    /// Estimated selectivity of `region` over the join result.
    pub fn estimate(&mut self, region: &Rect) -> f64 {
        self.inner.estimate(region)
    }

    /// The underlying model (bandwidth tuning etc.).
    pub fn model_mut(&mut self) -> &mut KdeEstimator {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::Backend;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Orders(R): [order_id, customer_fk, amount]; Customers(S):
    /// [customer_id, tier]. Amount is strongly correlated with tier — the
    /// cross-table correlation the independence assumption misses.
    fn make_tables(seed: u64) -> (Table, Table) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_customers = 200;
        let mut s = Table::new(2);
        for c in 0..n_customers {
            let tier = (c % 4) as f64; // tiers 0..3
            s.insert(&[c as f64, tier]);
        }
        let mut r = Table::new(3);
        for o in 0..4000 {
            let c = rng.gen_range(0..n_customers);
            let tier = (c % 4) as f64;
            // Amount depends on tier: tier t buys in [100·t, 100·t + 50).
            let amount = 100.0 * tier + rng.gen_range(0.0..50.0);
            r.insert(&[o as f64, c as f64, amount]);
        }
        (r, s)
    }

    #[test]
    fn join_sample_rows_are_real_join_tuples() {
        let (r, s) = make_tables(1);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = sample_join(&r, 1, &s, 0, 100, &mut rng);
        assert_eq!(sample.len(), 100 * 5);
        for row in sample.chunks_exact(5) {
            // FK (col 1) must equal PK (col 3).
            assert_eq!(row[1], row[3]);
            // Amount/tier correlation must hold on joined rows.
            let tier = row[4];
            assert!((100.0 * tier..100.0 * tier + 50.0).contains(&row[2]));
        }
    }

    #[test]
    fn join_kde_captures_cross_table_correlation() {
        let (r, s) = make_tables(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut est = JoinKde::new(
            Device::new(Backend::CpuPar),
            &r,
            1,
            &s,
            0,
            512,
            KernelFn::Gaussian,
            &mut rng,
        );
        // Scott's rule badly oversmooths the near-discrete tier and the
        // tier-banded amount (the paper's core observation) — tune the
        // bandwidth over a small training workload of join predicates,
        // exactly as §3 prescribes.
        let mut train = Vec::new();
        for k in 0..40 {
            let tier = (k % 4) as f64;
            let lo_amt = 100.0 * tier + 5.0 * ((k / 4) % 5) as f64;
            let region = Rect::from_intervals(&[
                (f64::NEG_INFINITY, f64::INFINITY),
                (f64::NEG_INFINITY, f64::INFINITY),
                (lo_amt, lo_amt + 25.0),
                (f64::NEG_INFINITY, f64::INFINITY),
                (tier - 0.5, tier + 0.5),
            ]);
            let (total, matching) = join_truth(&r, 1, &s, 0, &region);
            train.push(kdesel_types::LabelledQuery::new(
                region,
                matching as f64 / total as f64,
            ));
        }
        let result = kdesel_kde::optimize_bandwidth(
            est.model_mut(),
            &train,
            &kdesel_kde::BatchConfig::default(),
            &mut rng,
        );
        est.model_mut().set_bandwidth(result.bandwidth);

        // Predicate: tier = 3 (within [2.5, 3.5]) AND amount in [300, 350]
        // — perfectly correlated: every tier-3 order qualifies (~25%).
        let region = Rect::from_intervals(&[
            (f64::NEG_INFINITY, f64::INFINITY), // order_id
            (f64::NEG_INFINITY, f64::INFINITY), // customer_fk
            (300.0, 350.0),                     // amount
            (f64::NEG_INFINITY, f64::INFINITY), // customer_id
            (2.5, 3.5),                         // tier
        ]);
        let (total, matching) = join_truth(&r, 1, &s, 0, &region);
        let truth = matching as f64 / total as f64;
        assert!((truth - 0.25).abs() < 0.05, "scenario check: truth {truth}");

        let kde = est.estimate(&region);
        // Independence baseline: P(amount) · P(tier) ≈ 0.25 · 0.25.
        let amount_only = Rect::from_intervals(&[
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
            (300.0, 350.0),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
        ]);
        let tier_only = Rect::from_intervals(&[
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
            (2.5, 3.5),
        ]);
        let independence = est.estimate(&amount_only) * est.estimate(&tier_only);

        let kde_err = (kde - truth).abs();
        let indep_err = (independence - truth).abs();
        assert!(
            kde_err < indep_err * 0.5,
            "joint KDE {kde} (err {kde_err}) should beat independence \
             {independence} (err {indep_err}) against truth {truth}"
        );
    }

    #[test]
    fn dangling_foreign_keys_are_skipped() {
        let mut r = Table::new(2);
        r.insert(&[1.0, 100.0]); // dangling: no customer 100
        r.insert(&[2.0, 0.0]);
        let mut s = Table::new(2);
        s.insert(&[0.0, 7.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let sample = sample_join(&r, 1, &s, 0, 10, &mut rng);
        assert_eq!(sample.len(), 4, "only the matching pair joins");
        let region = Rect::unbounded(4);
        let (total, matching) = join_truth(&r, 1, &s, 0, &region);
        assert_eq!((total, matching), (1, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate primary key")]
    fn duplicate_pk_rejected() {
        let mut s = Table::new(1);
        s.insert(&[1.0]);
        s.insert(&[1.0]);
        let r = Table::new(2);
        build_pk_index(&s, 0);
        let _ = r;
    }
}
