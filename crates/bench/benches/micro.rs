//! Criterion microbenchmarks for the performance-critical kernels.
//!
//! These complement the Figure 7 binary: where `fig7_performance` models
//! the paper's hardware, these measure this machine's actual throughput of
//! the building blocks (erf, estimate, gradient, Karma pass, STHoles
//! estimate, reservoir decisions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kdesel_device::{Backend, Device};
use kdesel_hist::{SthConfig, SthHoles};
use kdesel_kde::{KarmaConfig, KarmaMaintenance, KdeEstimator, KernelFn, LossFunction};
use kdesel_sample::ReservoirSampler;
use kdesel_storage::Table;
use kdesel_types::{QueryFeedback, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn uniform_sample(n: usize, dims: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * dims).map(|_| rng.gen_range(0.0..100.0)).collect()
}

fn bench_erf(c: &mut Criterion) {
    let xs: Vec<f64> = (0..1024).map(|i| (i as f64 - 512.0) / 100.0).collect();
    let mut g = c.benchmark_group("erf");
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("cody_1024_values", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                acc += kdesel_math::erf(black_box(x));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let dims = 8;
    let mut g = c.benchmark_group("kde_estimate");
    for log2 in [10u32, 13, 16] {
        let n = 1usize << log2;
        let sample = uniform_sample(n, dims, 1);
        let query = Rect::cube(dims, 20.0, 60.0);
        for backend in [Backend::CpuSeq, Backend::CpuPar] {
            let mut est =
                KdeEstimator::new(Device::new(backend), &sample, dims, KernelFn::Gaussian);
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(BenchmarkId::new(backend.name(), n), &n, |b, _| {
                b.iter(|| black_box(est.estimate(black_box(&query))))
            });
        }
    }
    g.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let dims = 8;
    let n = 1 << 13;
    let sample = uniform_sample(n, dims, 2);
    let est = KdeEstimator::new(
        Device::new(Backend::CpuPar),
        &sample,
        dims,
        KernelFn::Gaussian,
    );
    let query = Rect::cube(dims, 20.0, 60.0);
    let mut g = c.benchmark_group("kde_gradient");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("8d_8k_points", |b| {
        b.iter(|| black_box(est.estimator_gradient(black_box(&query))))
    });
    g.finish();
}

fn bench_karma(c: &mut Criterion) {
    let dims = 8;
    let n = 1 << 13;
    let sample = uniform_sample(n, dims, 3);
    let mut est = KdeEstimator::new(
        Device::new(Backend::CpuPar),
        &sample,
        dims,
        KernelFn::Gaussian,
    );
    let mut karma = KarmaMaintenance::new(&est, KarmaConfig::default());
    let query = Rect::cube(dims, 20.0, 60.0);
    let estimate = est.estimate(&query);
    let fb = QueryFeedback {
        region: query,
        estimate,
        actual: estimate * 0.9,
        cardinality: 0,
    };
    let mut g = c.benchmark_group("karma_update");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("8d_8k_points", |b| {
        b.iter(|| black_box(karma.update(black_box(&est), black_box(&fb))))
    });
    g.finish();
}

fn bench_stholes(c: &mut Criterion) {
    // Build a trained histogram, then measure pure estimation.
    let dims = 3;
    let data = uniform_sample(20_000, dims, 4);
    let table = Table::from_rows(dims, &data);
    let mut hist = SthHoles::new(
        table.bounding_box().unwrap(),
        table.row_count() as u64,
        SthConfig { max_buckets: 512 },
    );
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..300 {
        let c0: Vec<f64> = (0..dims).map(|_| rng.gen_range(5.0..95.0)).collect();
        let q = Rect::centered(&c0, &vec![5.0; dims]);
        hist.refine(&q, |r| table.count_in(r));
    }
    let query = Rect::cube(dims, 20.0, 60.0);
    let mut g = c.benchmark_group("stholes");
    g.bench_function(format!("estimate_{}buckets", hist.bucket_count()), |b| {
        b.iter(|| black_box(hist.estimate_selectivity(black_box(&query))))
    });
    g.finish();
}

fn bench_reservoir(c: &mut Criterion) {
    let mut g = c.benchmark_group("reservoir");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("algorithm_r_10k_decisions", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            let mut r = ReservoirSampler::new(1024, 1_000_000);
            let mut hits = 0u32;
            for _ in 0..10_000 {
                if let kdesel_sample::ReservoirDecision::Replace(_) = r.observe(&mut rng) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_loss_gradient(c: &mut Criterion) {
    let dims = 8;
    let n = 1 << 12;
    let sample = uniform_sample(n, dims, 7);
    let mut est = KdeEstimator::new(
        Device::new(Backend::CpuPar),
        &sample,
        dims,
        KernelFn::Gaussian,
    );
    let query = Rect::cube(dims, 10.0, 80.0);
    let estimate = est.estimate(&query);
    let mut g = c.benchmark_group("loss_gradient");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("quadratic_8d_4k", |b| {
        b.iter(|| {
            black_box(est.loss_gradient(black_box(&query), estimate, 0.01, LossFunction::Quadratic))
        })
    });
    g.finish();
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    // The adaptive tuner's per-query work: estimate + bandwidth gradient.
    // Fused shares the per-dimension kernel factors (eq. 16) in one sweep;
    // unfused pays two sweeps recomputing the factors.
    let dims = 8;
    let n = 1 << 13;
    let sample = uniform_sample(n, dims, 8);
    let mut est = KdeEstimator::new(
        Device::new(Backend::CpuPar),
        &sample,
        dims,
        KernelFn::Gaussian,
    );
    let query = Rect::cube(dims, 20.0, 60.0);
    let mut g = c.benchmark_group("fusion");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("fused_estimate_with_gradient_8d_8k", |b| {
        b.iter(|| black_box(est.estimate_with_gradient(black_box(&query))))
    });
    g.bench_function("unfused_estimate_then_gradient_8d_8k", |b| {
        b.iter(|| {
            let e = est.estimate(black_box(&query));
            let grad = est.estimator_gradient(black_box(&query));
            black_box((e, grad))
        })
    });
    g.finish();
}

fn bench_batched_vs_looped(c: &mut Criterion) {
    // The batch optimizer's per-iteration work: evaluate the whole
    // workload. Batched traverses the sample once for all B queries.
    let dims = 8;
    let n = 1 << 13;
    let batch = 16;
    let sample = uniform_sample(n, dims, 9);
    let mut est = KdeEstimator::new(
        Device::new(Backend::CpuPar),
        &sample,
        dims,
        KernelFn::Gaussian,
    );
    let queries: Vec<Rect> = (0..batch)
        .map(|i| Rect::cube(dims, 10.0 + i as f64, 50.0 + 2.0 * i as f64))
        .collect();
    let mut g = c.benchmark_group("batching");
    g.throughput(Throughput::Elements((n * batch) as u64));
    g.bench_function("batched_16_queries_8d_8k", |b| {
        b.iter(|| black_box(est.estimate_batch(black_box(&queries))))
    });
    g.bench_function("looped_16_queries_8d_8k", |b| {
        b.iter(|| {
            let out: Vec<f64> = queries.iter().map(|q| est.estimate(q)).collect();
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_erf,
    bench_estimate,
    bench_gradient,
    bench_karma,
    bench_stholes,
    bench_reservoir,
    bench_loss_gradient,
    bench_fused_vs_unfused,
    bench_batched_vs_looped
);
criterion_main!(benches);
