//! Criterion benchmarks for the optimization stack: L-BFGS and multistart
//! on standard test functions, the batch bandwidth objective, and the CV
//! selectors — the compute behind model (re)builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdesel_data::{generate_workload, Dataset, WorkloadKind, WorkloadSpec};
use kdesel_device::{Backend, Device};
use kdesel_kde::{
    lscv_bandwidth, optimize_bandwidth, scv_bandwidth, BatchConfig, CvConfig, KdeEstimator,
    KernelFn,
};
use kdesel_solver::{lbfgs, multistart, Bounds, LbfgsConfig, MultistartConfig};
use kdesel_storage::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_lbfgs(c: &mut Criterion) {
    let mut g = c.benchmark_group("lbfgs");
    for dims in [2usize, 10, 30] {
        let obj = kdesel_solver::testfns::rosenbrock(dims);
        let start = vec![-1.2; dims];
        let bounds = Bounds::unbounded(dims);
        let cfg = LbfgsConfig {
            max_iterations: 200,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("rosenbrock", dims), &dims, |b, _| {
            b.iter(|| black_box(lbfgs(&obj, &bounds, black_box(&start), &cfg)))
        });
    }
    g.finish();
}

fn bench_multistart(c: &mut Criterion) {
    let obj = kdesel_solver::testfns::rastrigin(2);
    let bounds = Bounds::uniform(2, -5.12, 5.12);
    let cfg = MultistartConfig::default();
    c.bench_function("multistart/rastrigin_2d", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(multistart(&obj, &bounds, &[], &cfg, &mut rng))
        })
    });
}

fn bench_batch_optimize(c: &mut Criterion) {
    let table = Dataset::Synthetic.generate_projected(3, 10_000, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let sample = sampling::sample_rows(&table, 512, &mut rng);
    let train = generate_workload(
        &table,
        WorkloadSpec::paper(WorkloadKind::DataTarget),
        50,
        &mut rng,
    );
    let estimator = KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 3, KernelFn::Gaussian);
    let mut cfg = BatchConfig::default();
    cfg.multistart.rounds = 1;
    cfg.multistart.samples_per_round = 4;
    c.bench_function("batch_optimize/3d_512pts_50q", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(optimize_bandwidth(&estimator, &train, &cfg, &mut rng))
        })
    });
}

fn bench_cv_selectors(c: &mut Criterion) {
    let table = Dataset::Protein.generate_projected(3, 5_000, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let sample = sampling::sample_rows(&table, 256, &mut rng);
    let cfg = CvConfig {
        max_points: 256,
        ..Default::default()
    };
    c.bench_function("cv/lscv_3d_256pts", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            black_box(lscv_bandwidth(&sample, 3, &cfg, &mut rng))
        })
    });
    c.bench_function("cv/scv_3d_256pts", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(scv_bandwidth(&sample, 3, &cfg, &mut rng))
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let table = Dataset::Synthetic.generate_projected(3, 20_000, 8);
    let mut g = c.benchmark_group("workload_gen");
    for kind in [WorkloadKind::DataTarget, WorkloadKind::UniformVolume] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                black_box(generate_workload(
                    &table,
                    WorkloadSpec::paper(kind),
                    20,
                    &mut rng,
                ))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lbfgs, bench_multistart, bench_batch_optimize,
              bench_cv_selectors, bench_workload_generation
}
criterion_main!(benches);
