//! Figure 8: estimation quality on changing data (cluster churn).
//!
//! Prints the progression of the absolute estimation error (averaged over
//! repetitions and smoothed over windows of queries) for STHoles, Heuristic
//! and Adaptive, together with the live tuple count — the two curves of the
//! paper's Figure 8. Runs the 5D scenario by default; `--full` adds 8D.
//!
//! Lives in the library (rather than only in `src/bin/`) so both the
//! `kdesel-bench` binary and the root package can expose a
//! `fig8_dynamic` bin target: `cargo run --release --bin fig8_dynamic`
//! then works from the workspace root without `-p`.

use crate::{emit, Cli};
use kdesel_engine::experiments::dynamic::{run_dynamic, DynamicConfig};
use kdesel_engine::report::{fmt, TextTable};

fn run_dims(cli: &Cli, dims: usize) {
    let config = DynamicConfig {
        dims,
        cluster_size: if cli.full { 1500 } else { 500 },
        cycles: if cli.full { 10 } else { 6 },
        repetitions: cli.reps_or(2, 10),
        seed: cli.seed.unwrap_or(0xf188),
        ..Default::default()
    };
    eprintln!(
        "# Figure 8 ({dims}D): cluster churn, {} cycles × {} tuples, reps={}",
        config.cycles, config.cluster_size, config.repetitions
    );
    let result = run_dynamic(&config);
    let n = result.table_sizes.len();
    let window = (n / 40).max(1);
    let mut table = TextTable::new(["query_window", "tuples", "stholes", "heuristic", "adaptive"]);
    let series_for = |name: &str| {
        result
            .error_series
            .iter()
            .find(|(k, _)| k.name() == name)
            .map(|(_, v)| v.as_slice())
    };
    let (st, he, ad) = (
        series_for("stholes"),
        series_for("heuristic"),
        series_for("adaptive"),
    );
    let window_mean = |s: Option<&[f64]>, a: usize, b: usize| -> String {
        s.map(|v| fmt(v[a..b].iter().sum::<f64>() / (b - a) as f64))
            .unwrap_or_else(|| "-".to_string())
    };
    let mut start = 0;
    while start < n {
        let end = (start + window).min(n);
        table.row([
            format!("{start}..{end}"),
            result.table_sizes[end - 1].to_string(),
            window_mean(st, start, end),
            window_mean(he, start, end),
            window_mean(ad, start, end),
        ]);
        start = end;
    }
    emit(cli, &table);
}

/// The `fig8_dynamic` entry point: parses the common CLI and runs the
/// Figure 8 protocol.
pub fn run() {
    let cli = Cli::parse();
    run_dims(&cli, 5);
    if cli.full {
        println!();
        run_dims(&cli, 8);
    }
}
