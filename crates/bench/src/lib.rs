//! Shared CLI plumbing for the experiment binaries.
//!
//! Every figure/table of the paper has one binary under `src/bin/`. Each
//! accepts:
//!
//! * `--full` — paper-scale parameters (slow; the default is a reduced
//!   "quick" configuration that preserves every qualitative result),
//! * `--rows N`, `--reps N`, `--seed N` — explicit overrides,
//! * `--csv` — machine-readable output instead of aligned text.

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Paper-scale run.
    pub full: bool,
    /// Row-count override.
    pub rows: Option<usize>,
    /// Repetition override.
    pub reps: Option<usize>,
    /// Seed override.
    pub seed: Option<u64>,
    /// Emit CSV.
    pub csv: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    /// Panics (with a usage message) on malformed arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cli = Self {
            full: false,
            rows: None,
            reps: None,
            seed: None,
            csv: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => cli.full = true,
                "--csv" => cli.csv = true,
                "--rows" => {
                    cli.rows = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--rows needs an integer"),
                    )
                }
                "--reps" => {
                    cli.reps = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--reps needs an integer"),
                    )
                }
                "--seed" => {
                    cli.seed = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--seed needs an integer"),
                    )
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --full  --rows N  --reps N  --seed N  --csv"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    /// Picks `full_value` under `--full`, else `quick_value`, unless
    /// overridden.
    pub fn rows_or(&self, quick_value: usize, full_value: usize) -> usize {
        self.rows.unwrap_or(if self.full { full_value } else { quick_value })
    }

    /// Repetitions with the same precedence rules.
    pub fn reps_or(&self, quick_value: usize, full_value: usize) -> usize {
        self.reps.unwrap_or(if self.full { full_value } else { quick_value })
    }
}

/// Runs the Figure 4/5 protocol at the given dimensionality and prints the
/// per-cell boxplot table plus the dims-restricted win-rate matrix.
pub fn run_static_figure(cli: &Cli, dims: usize, title: &str) {
    use kdesel_engine::experiments::static_quality::{figure_cells, run_static_cell, StaticConfig};
    use kdesel_engine::experiments::winrate::WinRateMatrix;
    use kdesel_engine::report::{fmt, TextTable};

    let config = StaticConfig {
        rows: cli.rows_or(6_000, 100_000),
        repetitions: cli.reps_or(2, 25),
        train_queries: if cli.full { 100 } else { 50 },
        test_queries: if cli.full { 300 } else { 100 },
        seed: cli.seed.unwrap_or(0x5e1ec7),
        fast_optimizers: !cli.full,
        ..Default::default()
    };
    eprintln!(
        "# {title}\n# rows={} reps={} train={} test={}",
        config.rows, config.repetitions, config.train_queries, config.test_queries
    );

    let mut table = TextTable::new([
        "dataset", "workload", "estimator", "mean", "min", "q1", "median", "q3", "max",
    ]);
    let mut matrix = WinRateMatrix::new(config.estimators.clone());
    for cell in figure_cells(dims) {
        eprintln!(
            "# running {} {} ...",
            cell.dataset.name(),
            cell.workload.name()
        );
        let result = run_static_cell(cell, &config);
        for (kind, summary) in &result.summaries {
            let f = summary.five_numbers();
            table.row([
                cell.dataset.name().to_string(),
                cell.workload.name().to_string(),
                kind.name().to_string(),
                fmt(summary.mean()),
                fmt(f.min),
                fmt(f.q1),
                fmt(f.median),
                fmt(f.q3),
                fmt(f.max),
            ]);
        }
        matrix.add_cell(&result);
    }
    emit(cli, &table);
    println!();
    emit_winrates(cli, &matrix, &format!("win rates over {dims}D experiments (%)"));
}

/// Prints a win-rate matrix in the Table 1 layout.
pub fn emit_winrates(
    cli: &Cli,
    matrix: &kdesel_engine::experiments::winrate::WinRateMatrix,
    title: &str,
) {
    use kdesel_engine::report::TextTable;
    println!("# {title}");
    let mut header: Vec<String> = vec!["row_beats".to_string()];
    header.extend(matrix.estimators().iter().map(|k| k.name().to_string()));
    header.push("all".to_string());
    let mut t = TextTable::new(header);
    for &row in matrix.estimators() {
        let mut cells = vec![row.name().to_string()];
        for &col in matrix.estimators() {
            cells.push(match matrix.rate(row, col) {
                Some(r) => format!("{r:.1}"),
                None => "-".to_string(),
            });
        }
        cells.push(match matrix.rate_against_all(row) {
            Some(r) => format!("{r:.1}"),
            None => "-".to_string(),
        });
        t.row(cells);
    }
    emit(cli, &t);
}

/// Prints a table in the format the CLI selected.
pub fn emit(cli: &Cli, table: &kdesel_engine::report::TextTable) {
    if cli.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let cli = parse(&[]);
        assert!(!cli.full);
        assert!(!cli.csv);
        assert_eq!(cli.rows_or(10, 100), 10);
        assert_eq!(cli.reps_or(2, 25), 2);
    }

    #[test]
    fn full_switches_scales() {
        let cli = parse(&["--full"]);
        assert_eq!(cli.rows_or(10, 100), 100);
        assert_eq!(cli.reps_or(2, 25), 25);
    }

    #[test]
    fn explicit_overrides_win() {
        let cli = parse(&["--full", "--rows", "42", "--reps", "7", "--seed", "9"]);
        assert_eq!(cli.rows_or(10, 100), 42);
        assert_eq!(cli.reps_or(2, 25), 7);
        assert_eq!(cli.seed, Some(9));
    }

    // Unknown flags exit(2) with a message (verified manually; exit paths
    // are not unit-testable in-process).
}
