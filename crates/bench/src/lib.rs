//! Shared CLI plumbing for the experiment binaries.
//!
//! Every figure/table of the paper has one binary under `src/bin/`. Each
//! accepts:
//!
//! * `--full` — paper-scale parameters (slow; the default is a reduced
//!   "quick" configuration that preserves every qualitative result),
//! * `--rows N`, `--reps N`, `--seed N` — explicit overrides,
//! * `--csv` — machine-readable output instead of aligned text,
//! * `--trace FILE` — write a JSONL telemetry trace (one structured
//!   event per line: per-query outcomes, bandwidth-update steps),
//! * `--metrics` — print a metrics summary (counters, gauges, latency
//!   histograms) after the run,
//! * `--prom FILE` — write a Prometheus-style text exposition of every
//!   touched metric at the end of the run.

pub mod fig8;
pub mod history;

use std::path::PathBuf;
use std::sync::Arc;

/// One-line usage text shared by `--help` and parse errors.
pub const USAGE: &str = "options: --full  --rows N  --reps N  --seed N  --csv  --trace FILE  \
     --metrics  --prom FILE";

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Paper-scale run.
    pub full: bool,
    /// Row-count override.
    pub rows: Option<usize>,
    /// Repetition override.
    pub reps: Option<usize>,
    /// Seed override.
    pub seed: Option<u64>,
    /// Emit CSV.
    pub csv: bool,
    /// JSONL trace destination.
    pub trace: Option<PathBuf>,
    /// Print a metrics summary after the run.
    pub metrics: bool,
    /// Prometheus-style text exposition destination.
    pub prom: Option<PathBuf>,
    // Flushes the trace sink and prints the metrics table when the last
    // clone drops (i.e. at the end of `main`). `Arc` so `Clone` stays
    // cheap and the summary prints exactly once.
    reporter: Option<Arc<TelemetryReporter>>,
}

impl Cli {
    /// Parses `std::env::args`, exiting with a usage message on bad
    /// arguments, and activates telemetry when `--trace`/`--metrics`
    /// are present.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            eprintln!("{USAGE}");
            std::process::exit(0);
        }
        match Self::from_args(args) {
            Ok(mut cli) => {
                cli.activate_telemetry();
                cli
            }
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list. Unknown flags, missing values,
    /// and unparsable numbers are errors, not process exits, so the
    /// rejection paths are unit-testable.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cli = Self {
            full: false,
            rows: None,
            reps: None,
            seed: None,
            csv: false,
            trace: None,
            metrics: false,
            prom: None,
            reporter: None,
        };
        fn value<I: Iterator<Item = String>>(
            it: &mut I,
            flag: &str,
            what: &str,
        ) -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs {what}"))
        }
        fn int<T: std::str::FromStr, I: Iterator<Item = String>>(
            it: &mut I,
            flag: &str,
        ) -> Result<T, String> {
            let raw = value(it, flag, "an integer")?;
            raw.parse()
                .map_err(|_| format!("{flag} needs an integer, got {raw:?}"))
        }
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => cli.full = true,
                "--csv" => cli.csv = true,
                "--metrics" => cli.metrics = true,
                "--rows" => cli.rows = Some(int(&mut it, "--rows")?),
                "--reps" => cli.reps = Some(int(&mut it, "--reps")?),
                "--seed" => cli.seed = Some(int(&mut it, "--seed")?),
                "--trace" => {
                    cli.trace = Some(PathBuf::from(value(&mut it, "--trace", "a file path")?))
                }
                "--prom" => {
                    cli.prom = Some(PathBuf::from(value(&mut it, "--prom", "a file path")?))
                }
                other => return Err(format!("unknown argument {other}; try --help")),
            }
        }
        Ok(cli)
    }

    /// Turns on the telemetry layer according to the parsed flags:
    /// `--trace` installs a JSONL sink, any of the flags enables metric
    /// collection. Without any of them this is a no-op and the
    /// instrumented code paths stay on their disabled fast path.
    fn activate_telemetry(&mut self) {
        if self.trace.is_none() && !self.metrics && self.prom.is_none() {
            return;
        }
        kdesel_telemetry::set_enabled(true);
        if let Some(path) = &self.trace {
            match kdesel_telemetry::JsonlSink::create(path) {
                Ok(sink) => kdesel_telemetry::set_sink(Some(Arc::new(sink))),
                Err(e) => {
                    eprintln!("cannot open trace file {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        self.reporter = Some(Arc::new(TelemetryReporter {
            metrics: self.metrics,
            prom: self.prom.clone(),
        }));
    }

    /// Picks `full_value` under `--full`, else `quick_value`, unless
    /// overridden.
    pub fn rows_or(&self, quick_value: usize, full_value: usize) -> usize {
        self.rows
            .unwrap_or(if self.full { full_value } else { quick_value })
    }

    /// Repetitions with the same precedence rules.
    pub fn reps_or(&self, quick_value: usize, full_value: usize) -> usize {
        self.reps
            .unwrap_or(if self.full { full_value } else { quick_value })
    }
}

/// End-of-run telemetry duties, attached to [`Cli`] so they run when
/// `main` drops its parsed options.
#[derive(Debug)]
struct TelemetryReporter {
    metrics: bool,
    prom: Option<PathBuf>,
}

impl Drop for TelemetryReporter {
    fn drop(&mut self) {
        kdesel_telemetry::flush_sink();
        if self.metrics {
            print_metrics_summary();
        }
        if let Some(path) = &self.prom {
            let text = kdesel_telemetry::prometheus_text(kdesel_telemetry::registry());
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("cannot write metrics exposition {}: {e}", path.display());
            }
        }
    }
}

/// Prints every touched metric from the global registry: counters as
/// integers, gauges as numbers, histograms as quantile summaries.
pub fn print_metrics_summary() {
    use kdesel_engine::report::TextTable;
    use kdesel_telemetry::MetricKind;
    let lines = kdesel_telemetry::registry().lines();
    if lines.is_empty() {
        return;
    }
    let sci = |v: f64| format!("{v:.3e}");
    let mut table = TextTable::new(["metric", "kind", "value", "p50", "p90", "p95", "p99", "max"]);
    for line in &lines {
        let (kind, value, quantiles) = match line.kind {
            MetricKind::Counter => ("counter", line.count.to_string(), None),
            MetricKind::Gauge => ("gauge", format!("{:.6}", line.value), None),
            MetricKind::Histogram => {
                let h = line.histogram.as_ref().expect("histogram summary");
                (
                    "histogram",
                    format!("n={} mean={}s", h.count, sci(h.mean)),
                    Some([sci(h.p50), sci(h.p90), sci(h.p95), sci(h.p99), sci(h.max)]),
                )
            }
        };
        let [p50, p90, p95, p99, max] =
            quantiles.unwrap_or_else(|| std::array::from_fn(|_| "-".to_string()));
        table.row([
            line.name.clone(),
            kind.to_string(),
            value,
            p50,
            p90,
            p95,
            p99,
            max,
        ]);
    }
    println!("\n# metrics");
    print!("{}", table.render());
}

/// Runs the Figure 4/5 protocol at the given dimensionality and prints the
/// per-cell boxplot table plus the dims-restricted win-rate matrix.
pub fn run_static_figure(cli: &Cli, dims: usize, title: &str) {
    use kdesel_engine::experiments::static_quality::{figure_cells, run_static_cell, StaticConfig};
    use kdesel_engine::experiments::winrate::WinRateMatrix;
    use kdesel_engine::report::{fmt, TextTable};

    let config = StaticConfig {
        rows: cli.rows_or(6_000, 100_000),
        repetitions: cli.reps_or(2, 25),
        train_queries: if cli.full { 100 } else { 50 },
        test_queries: if cli.full { 300 } else { 100 },
        seed: cli.seed.unwrap_or(0x5e1ec7),
        fast_optimizers: !cli.full,
        ..Default::default()
    };
    eprintln!(
        "# {title}\n# rows={} reps={} train={} test={}",
        config.rows, config.repetitions, config.train_queries, config.test_queries
    );

    let mut table = TextTable::new([
        "dataset",
        "workload",
        "estimator",
        "mean",
        "min",
        "q1",
        "median",
        "q3",
        "max",
    ]);
    let mut matrix = WinRateMatrix::new(config.estimators.clone());
    for cell in figure_cells(dims) {
        eprintln!(
            "# running {} {} ...",
            cell.dataset.name(),
            cell.workload.name()
        );
        let result = run_static_cell(cell, &config);
        for (kind, summary) in &result.summaries {
            let f = summary.five_numbers();
            table.row([
                cell.dataset.name().to_string(),
                cell.workload.name().to_string(),
                kind.name().to_string(),
                fmt(summary.mean()),
                fmt(f.min),
                fmt(f.q1),
                fmt(f.median),
                fmt(f.q3),
                fmt(f.max),
            ]);
        }
        matrix.add_cell(&result);
    }
    emit(cli, &table);
    println!();
    emit_winrates(
        cli,
        &matrix,
        &format!("win rates over {dims}D experiments (%)"),
    );
}

/// Prints a win-rate matrix in the Table 1 layout.
pub fn emit_winrates(
    cli: &Cli,
    matrix: &kdesel_engine::experiments::winrate::WinRateMatrix,
    title: &str,
) {
    use kdesel_engine::report::TextTable;
    println!("# {title}");
    let mut header: Vec<String> = vec!["row_beats".to_string()];
    header.extend(matrix.estimators().iter().map(|k| k.name().to_string()));
    header.push("all".to_string());
    let mut t = TextTable::new(header);
    for &row in matrix.estimators() {
        let mut cells = vec![row.name().to_string()];
        for &col in matrix.estimators() {
            cells.push(match matrix.rate(row, col) {
                Some(r) => format!("{r:.1}"),
                None => "-".to_string(),
            });
        }
        cells.push(match matrix.rate_against_all(row) {
            Some(r) => format!("{r:.1}"),
            None => "-".to_string(),
        });
        t.row(cells);
    }
    emit(cli, &t);
}

/// Prints a table in the format the CLI selected.
pub fn emit(cli: &Cli, table: &kdesel_engine::report::TextTable) {
    if cli.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string())).expect("valid arguments")
    }

    fn parse_err(args: &[&str]) -> String {
        Cli::from_args(args.iter().map(|s| s.to_string())).expect_err("invalid arguments")
    }

    #[test]
    fn defaults_are_quick() {
        let cli = parse(&[]);
        assert!(!cli.full);
        assert!(!cli.csv);
        assert!(!cli.metrics);
        assert!(cli.trace.is_none());
        assert_eq!(cli.rows_or(10, 100), 10);
        assert_eq!(cli.reps_or(2, 25), 2);
    }

    #[test]
    fn full_switches_scales() {
        let cli = parse(&["--full"]);
        assert_eq!(cli.rows_or(10, 100), 100);
        assert_eq!(cli.reps_or(2, 25), 25);
    }

    #[test]
    fn explicit_overrides_win() {
        let cli = parse(&["--full", "--rows", "42", "--reps", "7", "--seed", "9"]);
        assert_eq!(cli.rows_or(10, 100), 42);
        assert_eq!(cli.reps_or(2, 25), 7);
        assert_eq!(cli.seed, Some(9));
    }

    #[test]
    fn csv_flag_is_recognised() {
        assert!(parse(&["--csv"]).csv);
    }

    #[test]
    fn telemetry_flags_parse() {
        let cli = parse(&[
            "--trace",
            "/tmp/t.jsonl",
            "--metrics",
            "--prom",
            "/tmp/m.prom",
        ]);
        assert_eq!(
            cli.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
        assert!(cli.metrics);
        assert_eq!(
            cli.prom.as_deref(),
            Some(std::path::Path::new("/tmp/m.prom"))
        );
        // Parsing alone must not activate telemetry (that happens in
        // `Cli::parse`, i.e. only in real binaries).
        assert!(cli.reporter.is_none());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let msg = parse_err(&["--bogus"]);
        assert!(msg.contains("--bogus"), "{msg}");
    }

    #[test]
    fn missing_values_are_rejected() {
        assert!(parse_err(&["--rows"]).contains("--rows"));
        assert!(parse_err(&["--trace"]).contains("--trace"));
    }

    #[test]
    fn non_integer_values_are_rejected() {
        let msg = parse_err(&["--seed", "banana"]);
        assert!(msg.contains("--seed") && msg.contains("banana"), "{msg}");
    }
}
