//! Perf-trend history: git-rev-stamped benchmark records and the rolling
//! trend gate.
//!
//! Every `bench_*` binary appends one JSONL line per run to
//! `results/BENCH_history.jsonl` (override with `BENCH_HISTORY_OUT`):
//!
//! ```json
//! {"v":1,"bench":"serve","git":"<rev>","unix_s":1738000000,"metrics":{"modeled_speedup":6.7}}
//! ```
//!
//! A one-number-per-run file beats the full `BENCH_*.json` snapshots for
//! trend questions ("has fusion speedup drifted down over the last ten
//! commits?") because the whole history fits in one grep. The trend gate
//! ([`check_trend`]) compares the current run against the rolling median
//! of the previous runs of the same benchmark and names every metric
//! that regressed, with measured-vs-threshold values — the `perf_smoke.sh`
//! failure report.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Schema version of a history line.
pub const HISTORY_VERSION: u64 = 1;

/// Runs of the same benchmark the rolling baseline is computed over.
pub const ROLLING_WINDOW: usize = 5;

/// One benchmark run: which bench, at which commit, measuring what.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Benchmark name (`"fusion"`, `"serve"`, `"simd"`).
    pub bench: String,
    /// Git revision the run was built from (`"unknown"` outside a repo).
    pub git: String,
    /// Seconds since the Unix epoch at record time.
    pub unix_s: u64,
    /// Metric name → value, in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl HistoryEntry {
    /// A new entry stamped with the current git revision and wall clock.
    pub fn stamped(bench: &str, metrics: Vec<(String, f64)>) -> Self {
        Self {
            bench: bench.to_string(),
            git: git_rev(),
            unix_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            metrics,
        }
    }

    /// The value of one metric, if recorded.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    fn to_json_line(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(name, value)| format!("\"{}\":{:?}", escape(name), value))
            .collect();
        format!(
            "{{\"v\":{HISTORY_VERSION},\"bench\":\"{}\",\"git\":\"{}\",\"unix_s\":{},\"metrics\":{{{}}}}}",
            escape(&self.bench),
            escape(&self.git),
            self.unix_s,
            metrics.join(",")
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The history file for this run: `BENCH_HISTORY_OUT` or
/// `results/BENCH_history.jsonl`.
pub fn history_path() -> PathBuf {
    std::env::var("BENCH_HISTORY_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results/BENCH_history.jsonl"))
}

/// The current git revision, read without shelling out: follows
/// `.git/HEAD` one level (symbolic ref or detached hash), walking up
/// from the current directory to find the repository. `"unknown"` when
/// there is no repository or the ref is unreadable.
pub fn git_rev() -> String {
    let Ok(mut dir) = std::env::current_dir() else {
        return "unknown".to_string();
    };
    loop {
        let head = dir.join(".git/HEAD");
        if head.is_file() {
            return rev_from_head(&dir.join(".git"), &head);
        }
        if !dir.pop() {
            return "unknown".to_string();
        }
    }
}

fn rev_from_head(git_dir: &Path, head: &Path) -> String {
    let Ok(content) = std::fs::read_to_string(head) else {
        return "unknown".to_string();
    };
    let content = content.trim();
    let Some(refname) = content.strip_prefix("ref: ") else {
        return content.to_string(); // detached HEAD: the hash itself
    };
    match std::fs::read_to_string(git_dir.join(refname.trim())) {
        Ok(hash) => hash.trim().to_string(),
        // Ref may live only in packed-refs (fresh clone); scan it.
        Err(_) => std::fs::read_to_string(git_dir.join("packed-refs"))
            .ok()
            .and_then(|packed| {
                packed.lines().find_map(|line| {
                    line.strip_suffix(refname.trim())
                        .map(|hash| hash.trim().to_string())
                })
            })
            .unwrap_or_else(|| "unknown".to_string()),
    }
}

/// Appends one entry to the history file, creating parent directories as
/// needed. Failure to record history must never fail a benchmark run, so
/// errors come back as strings for the caller to print.
pub fn append(path: &Path, entry: &HistoryEntry) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    writeln!(file, "{}", entry.to_json_line()).map_err(|e| e.to_string())
}

/// Loads every parseable entry; malformed or version-skewed lines are
/// skipped (a history file survives schema evolution and hand edits).
pub fn load(path: &Path) -> Vec<HistoryEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines().filter_map(parse_line).collect()
}

fn parse_line(line: &str) -> Option<HistoryEntry> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    if extract_u64(line, "v")? != HISTORY_VERSION {
        return None;
    }
    let metrics_body = {
        let start = line.find("\"metrics\"")?;
        let open = line[start..].find('{')? + start;
        let close = line[open..].find('}')? + open;
        &line[open + 1..close]
    };
    let mut metrics = Vec::new();
    for pair in metrics_body.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, value) = pair.split_once(':')?;
        metrics.push((
            name.trim().trim_matches('"').to_string(),
            value.trim().parse().ok()?,
        ));
    }
    Some(HistoryEntry {
        bench: extract_str(line, "bench")?,
        git: extract_str(line, "git")?,
        unix_s: extract_u64(line, "unix_s")?,
        metrics,
    })
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .ok()
}

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput, speedups: regressing means dropping.
    HigherIsBetter,
    /// Latencies, modeled seconds: regressing means rising.
    LowerIsBetter,
}

/// One metric's trend expectation: direction plus relative tolerance
/// (0.25 = a 25% move against the direction fails the gate).
#[derive(Debug, Clone)]
pub struct TrendSpec {
    /// Metric name as recorded in [`HistoryEntry::metrics`].
    pub metric: String,
    /// Which way regressions point.
    pub direction: Direction,
    /// Allowed relative drift against the rolling median.
    pub tolerance: f64,
}

impl TrendSpec {
    /// Convenience constructor.
    pub fn new(metric: &str, direction: Direction, tolerance: f64) -> Self {
        Self {
            metric: metric.to_string(),
            direction,
            tolerance,
        }
    }
}

/// One gated metric that moved against its direction.
#[derive(Debug, Clone)]
pub struct TrendFailure {
    /// Metric that regressed.
    pub metric: String,
    /// This run's value.
    pub measured: f64,
    /// The pass/fail boundary derived from the baseline and tolerance.
    pub threshold: f64,
    /// Rolling median of the previous runs.
    pub baseline: f64,
}

impl fmt::Display for TrendFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TREND REGRESSION: {} measured {:.4e} vs threshold {:.4e} (rolling median {:.4e})",
            self.metric, self.measured, self.threshold, self.baseline
        )
    }
}

/// Gates `current` against the rolling median of the most recent
/// [`ROLLING_WINDOW`] prior runs of the same benchmark. Metrics without
/// at least two prior samples pass silently (no baseline yet), so a
/// fresh repo never trips the gate.
pub fn check_trend(
    history: &[HistoryEntry],
    current: &HistoryEntry,
    specs: &[TrendSpec],
) -> Vec<TrendFailure> {
    let mut failures = Vec::new();
    for spec in specs {
        let mut prior: Vec<f64> = history
            .iter()
            .filter(|e| e.bench == current.bench)
            .filter_map(|e| e.metric(&spec.metric))
            .collect();
        if prior.len() < 2 {
            continue;
        }
        let tail_start = prior.len().saturating_sub(ROLLING_WINDOW);
        prior = prior.split_off(tail_start);
        prior.sort_by(f64::total_cmp);
        let baseline = prior[prior.len() / 2];
        let Some(measured) = current.metric(&spec.metric) else {
            continue;
        };
        let (threshold, failed) = match spec.direction {
            Direction::HigherIsBetter => {
                let t = baseline * (1.0 - spec.tolerance);
                (t, measured < t)
            }
            Direction::LowerIsBetter => {
                let t = baseline * (1.0 + spec.tolerance);
                (t, measured > t)
            }
        };
        if failed {
            failures.push(TrendFailure {
                metric: spec.metric.clone(),
                measured,
                threshold,
                baseline,
            });
        }
    }
    failures
}

/// The shared tail of every `bench_*` main: always append this run to
/// the history file, and when `BENCH_TREND=1` gate it against the
/// rolling baseline, printing each failing metric and exiting 1.
pub fn record_and_gate(entry: HistoryEntry, specs: &[TrendSpec]) {
    let path = history_path();
    let history = load(&path);
    let gate = std::env::var("BENCH_TREND").is_ok_and(|v| v == "1");
    if let Err(e) = append(&path, &entry) {
        eprintln!("# warning: cannot append bench history: {e}");
    } else {
        eprintln!("# appended {} run to {}", entry.bench, path.display());
    }
    if !gate {
        return;
    }
    let failures = check_trend(&history, &entry, specs);
    if failures.is_empty() {
        eprintln!(
            "# trend gate ok: {} within tolerance of the rolling baseline ({} prior runs)",
            entry.bench,
            history.iter().filter(|e| e.bench == entry.bench).count()
        );
        return;
    }
    for failure in &failures {
        eprintln!("{failure}");
    }
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &str, metrics: &[(&str, f64)]) -> HistoryEntry {
        HistoryEntry {
            bench: bench.to_string(),
            git: "deadbeef".to_string(),
            unix_s: 1_700_000_000,
            metrics: metrics.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let e = entry("serve", &[("modeled_speedup", 6.7), ("rps_16", 3902.0)]);
        let parsed = parse_line(&e.to_json_line()).expect("parse");
        assert_eq!(parsed, e);
    }

    #[test]
    fn append_and_load_round_trip() {
        let path = std::env::temp_dir().join(format!(
            "kdesel-bench-history-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let runs = [
            entry("fusion", &[("hot_path_modeled_s", 1.2e-4)]),
            entry("serve", &[("modeled_speedup", 6.7)]),
        ];
        for r in &runs {
            append(&path, r).expect("append");
        }
        let loaded = load(&path);
        assert_eq!(loaded, runs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_and_skewed_lines_are_skipped() {
        assert!(parse_line("not json").is_none());
        assert!(parse_line("").is_none());
        let skewed = entry("serve", &[("x", 1.0)])
            .to_json_line()
            .replacen("\"v\":1", "\"v\":99", 1);
        assert!(parse_line(&skewed).is_none());
    }

    #[test]
    fn trend_gate_names_the_failing_metric() {
        let history: Vec<HistoryEntry> = (0..4)
            .map(|_| entry("serve", &[("rps", 1000.0), ("p99_s", 2e-3)]))
            .collect();
        let specs = [
            TrendSpec::new("rps", Direction::HigherIsBetter, 0.25),
            TrendSpec::new("p99_s", Direction::LowerIsBetter, 0.5),
        ];
        // Within tolerance: no failures.
        let ok = entry("serve", &[("rps", 900.0), ("p99_s", 2.5e-3)]);
        assert!(check_trend(&history, &ok, &specs).is_empty());
        // Throughput collapses and latency blows up: both named.
        let bad = entry("serve", &[("rps", 500.0), ("p99_s", 8e-3)]);
        let failures = check_trend(&history, &bad, &specs);
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].metric, "rps");
        assert!((failures[0].threshold - 750.0).abs() < 1e-9);
        let text = failures[0].to_string();
        assert!(text.contains("TREND REGRESSION"), "{text}");
        assert!(text.contains("rps"), "{text}");
        // Other benches' runs must not pollute the baseline.
        let foreign: Vec<HistoryEntry> = (0..4).map(|_| entry("simd", &[("rps", 1.0)])).collect();
        assert!(check_trend(&foreign, &bad, &specs).is_empty());
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        let rev = git_rev();
        assert_ne!(rev, "unknown");
        assert!(
            rev.len() >= 7 && rev.chars().all(|c| c.is_ascii_hexdigit()),
            "unexpected rev {rev:?}"
        );
    }
}
