//! Karma-based sample maintenance (paper §4.2, §5.6, Appendix E).
//!
//! Each sample point carries a cumulative *Karma* score measuring its net
//! effect on estimation quality. After every query, the retained per-point
//! contributions are combined with the query feedback: removing point `i`
//! from the estimate gives the leave-one-out estimate (eq. 6); the change
//! in loss is the point's Karma for this query (eq. 7); scores accumulate
//! with a saturation cap `K_max` (eq. 8, `K_max = 4` per footnote 3).
//! Points whose Karma falls below a threshold are flagged for replacement.
//!
//! Two accelerations from the paper are implemented:
//!
//! * the **empty-region shortcut** (Appendix E): when the true selectivity
//!   is zero, any point whose contribution exceeds the bound of eq. 20 is
//!   provably inside the query region, hence outdated, and is flagged
//!   immediately;
//! * the **bitmap protocol** (§5.6): the per-point flags travel to the host
//!   as one bitmap transfer; only the replacement points travel back.

use crate::estimator::KdeEstimator;
use crate::kernel::KernelFn;
use crate::loss::LossFunction;
use kdesel_device::DeviceBuffer;
use kdesel_math::{erf, SQRT_2};
use kdesel_types::QueryFeedback;

/// Karma-maintenance configuration.
#[derive(Debug, Clone)]
pub struct KarmaConfig {
    /// Loss used in the Karma definition (eq. 7).
    pub loss: LossFunction,
    /// Saturation cap `K_max` (eq. 8). Paper: 4.
    pub k_max: f64,
    /// Replacement threshold: a point is flagged when its cumulative Karma
    /// drops below this. The paper leaves the value open; −2 (half the cap,
    /// mirrored) is the repository default and is swept in the ablation
    /// bench.
    pub threshold: f64,
    /// Enable the Appendix E empty-region shortcut (Gaussian kernel only).
    pub empty_region_shortcut: bool,
}

impl Default for KarmaConfig {
    fn default() -> Self {
        Self {
            loss: LossFunction::Absolute,
            k_max: 4.0,
            threshold: -2.0,
            empty_region_shortcut: true,
        }
    }
}

/// Karma state for one estimator's sample.
#[derive(Debug)]
pub struct KarmaMaintenance {
    config: KarmaConfig,
    karma: DeviceBuffer,
    size: usize,
}

impl KarmaMaintenance {
    /// Creates zeroed Karma state for `estimator`'s sample.
    pub fn new(estimator: &KdeEstimator, config: KarmaConfig) -> Self {
        assert!(config.k_max > config.threshold, "cap below threshold");
        let size = estimator.sample_size();
        Self {
            karma: estimator.device().alloc_zeroed(size),
            size,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &KarmaConfig {
        &self.config
    }

    /// Processes feedback for the estimator's most recent estimate and
    /// returns the indices of sample points flagged for replacement.
    ///
    /// Requires the contribution buffer retained by
    /// [`KdeEstimator::estimate`]; returns an empty list when it is absent
    /// (e.g. right after a replacement).
    pub fn update(&mut self, estimator: &KdeEstimator, feedback: &QueryFeedback) -> Vec<usize> {
        let Some(contributions) = estimator.last_contributions() else {
            return Vec::new();
        };
        debug_assert_eq!(contributions.len(), self.size);
        let s = self.size as f64;
        let actual = feedback.actual;
        let estimate = feedback.estimate;
        let loss = self.config.loss;
        let full_loss = loss.value(estimate, actual);
        let k_max = self.config.k_max;
        let threshold = self.config.threshold;

        // Empty-region shortcut bound (eq. 20), valid for the Gaussian.
        let inside_bound = if self.config.empty_region_shortcut
            && actual == 0.0
            && estimator.kernel() == KernelFn::Gaussian
        {
            Some(empty_region_bound(
                feedback.region.lo(),
                feedback.region.hi(),
                estimator.bandwidth(),
            ))
        } else {
            None
        };

        // One pass over the sample (kernel 9 in Figure 3): leave-one-out
        // estimate, Karma delta, saturated accumulation — and the shortcut.
        let device = estimator.device();
        device.zip_update_inplace(&mut self.karma, contributions, 12.0, |_i, karma, c| {
            if let Some(bound) = inside_bound {
                if c >= bound {
                    // Provably inside an empty region: force replacement.
                    return f64::NEG_INFINITY;
                }
            }
            // Eq. 6: estimate without this point.
            let loo = ((estimate * s - c) / (s - 1.0)).clamp(0.0, 1.0);
            // Eq. 7: positive when the point helped.
            let delta = loss.value(loo, actual) - full_loss;
            // Eq. 8.
            (karma + delta).min(k_max)
        });

        // Bitmap pass + single host transfer (§5.6).
        let flags = device.map_rows(&self.karma, 1, 2.0, |k| {
            if k[0] < threshold {
                1.0
            } else {
                0.0
            }
        });
        let bitmap = device.download(&flags);
        let flagged: Vec<usize> = bitmap
            .iter()
            .enumerate()
            .filter(|(_, &f)| f != 0.0)
            .map(|(i, _)| i)
            .collect();
        if kdesel_telemetry::enabled() {
            kdesel_telemetry::counter("kde.karma_updates").inc();
            kdesel_telemetry::counter("kde.karma_flagged").add(flagged.len() as u64);
        }
        flagged
    }

    /// Resets the Karma of a replaced point (single device write).
    pub fn reset_point(&mut self, estimator: &KdeEstimator, index: usize) {
        assert!(index < self.size);
        estimator.device().write_at(&mut self.karma, index, &[0.0]);
        if kdesel_telemetry::enabled() {
            kdesel_telemetry::counter("kde.karma_replaced").inc();
        }
    }

    /// Downloads the Karma scores (diagnostics/tests; charges a transfer).
    pub fn karma_values(&self, estimator: &KdeEstimator) -> Vec<f64> {
        estimator.device().download(&self.karma)
    }

    /// Memory the Karma state occupies on the device.
    pub fn memory_bytes(&self) -> usize {
        self.size * std::mem::size_of::<f64>()
    }
}

/// The containment bound of Appendix E (eq. 20): a Gaussian-kernel point
/// whose contribution to `Ω` is at least this value must lie inside `Ω`.
pub fn empty_region_bound(lo: &[f64], hi: &[f64], bandwidth: &[f64]) -> f64 {
    let d = lo.len();
    // Eq. 19: the center point's contribution (maximum possible).
    let mut p_max = 1.0;
    for j in 0..d {
        let w = hi[j] - lo[j];
        p_max *= erf(w / (2.0 * SQRT_2 * bandwidth[j]));
    }
    // Eq. 20: worst-case boundary point over all exit dimensions.
    let mut worst_ratio = 0.0f64;
    for j in 0..d {
        let w = hi[j] - lo[j];
        let num = erf(w / (SQRT_2 * bandwidth[j]));
        let den = erf(w / (2.0 * SQRT_2 * bandwidth[j]));
        if den > 0.0 {
            worst_ratio = worst_ratio.max(num / den);
        }
    }
    0.5 * p_max * worst_ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::{Backend, Device};
    use kdesel_types::Rect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * 2).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn estimator_with(sample: &[f64]) -> KdeEstimator {
        KdeEstimator::new(Device::new(Backend::CpuSeq), sample, 2, KernelFn::Gaussian)
    }

    fn feedback(region: Rect, estimate: f64, actual: f64) -> QueryFeedback {
        QueryFeedback {
            region,
            estimate,
            actual,
            cardinality: 0,
        }
    }

    #[test]
    fn leave_one_out_identity() {
        // Eq. 6 must reconstruct the estimate over the sample minus point i.
        let sample = uniform_sample(32, 1);
        let mut e = estimator_with(&sample);
        let q = Rect::from_intervals(&[(0.2, 0.7), (0.1, 0.8)]);
        let est = e.estimate(&q);
        let contributions = e.device().download(e.last_contributions().unwrap());
        let s = 32.0;
        for (i, &contribution) in contributions.iter().enumerate() {
            let loo = (est * s - contribution) / (s - 1.0);
            // Direct recomputation without point i.
            let mut reduced = sample.clone();
            reduced.drain(i * 2..i * 2 + 2);
            let direct =
                KdeEstimator::estimate_host(&reduced, 2, e.bandwidth(), KernelFn::Gaussian, &q);
            assert!((loo - direct).abs() < 1e-12, "point {i}: {loo} vs {direct}");
        }
    }

    #[test]
    fn harmful_points_accumulate_negative_karma_and_get_flagged() {
        // 31 points in a tight cluster + 1 stray point far away. Queries on
        // the cluster with perfectly matching feedback make the stray point
        // look harmless; queries *around the stray point* with actual = 0
        // (it was deleted from the DB) drive its karma down.
        let mut sample = Vec::new();
        for i in 0..31 {
            sample.extend_from_slice(&[0.5 + (i as f64) * 1e-3, 0.5]);
        }
        sample.extend_from_slice(&[10.0, 10.0]); // index 31: stray/outdated
        let mut e = estimator_with(&sample);
        e.set_bandwidth(vec![0.05, 0.05]);
        let mut karma = KarmaMaintenance::new(
            &e,
            KarmaConfig {
                empty_region_shortcut: false, // force the slow path
                ..Default::default()
            },
        );
        let stray_region = Rect::from_intervals(&[(9.0, 11.0), (9.0, 11.0)]);
        let mut flagged = Vec::new();
        for _ in 0..80 {
            let est = e.estimate(&stray_region);
            assert!(est > 0.0);
            flagged = karma.update(&e, &feedback(stray_region.clone(), est, 0.0));
            if !flagged.is_empty() {
                break;
            }
        }
        assert_eq!(flagged, vec![31], "stray point must be flagged");
        let scores = karma.karma_values(&e);
        assert!(scores[31] < karma.config().threshold);
        // Cluster points were unaffected by these queries.
        assert!(scores[..31].iter().all(|&k| k > karma.config().threshold));
    }

    #[test]
    fn empty_region_shortcut_flags_immediately() {
        let mut sample = uniform_sample(31, 2);
        sample.extend_from_slice(&[50.0, 50.0]); // point inside the empty query
        let mut e = estimator_with(&sample);
        e.set_bandwidth(vec![0.1, 0.1]);
        let mut karma = KarmaMaintenance::new(&e, KarmaConfig::default());
        let region = Rect::from_intervals(&[(49.0, 51.0), (49.0, 51.0)]);
        let est = e.estimate(&region);
        let flagged = karma.update(&e, &feedback(region, est, 0.0));
        assert_eq!(flagged, vec![31], "shortcut must flag on first query");
    }

    #[test]
    fn shortcut_bound_guarantees_containment() {
        // Property of eq. 20: contribution ≥ bound ⟹ point ∈ Ω.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let lo = [rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)];
            let hi = [
                lo[0] + rng.gen_range(0.1..4.0),
                lo[1] + rng.gen_range(0.1..4.0),
            ];
            let bw = [rng.gen_range(0.05..2.0), rng.gen_range(0.05..2.0)];
            let bound = empty_region_bound(&lo, &hi, &bw);
            let point = [rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)];
            let c = KernelFn::Gaussian.contribution(&point, &lo, &hi, &bw);
            if c >= bound {
                let inside =
                    (lo[0]..=hi[0]).contains(&point[0]) && (lo[1]..=hi[1]).contains(&point[1]);
                assert!(
                    inside,
                    "point {point:?} with contribution {c} ≥ bound {bound} \
                     must be inside [{lo:?}, {hi:?}] (bw {bw:?})"
                );
            }
        }
    }

    #[test]
    fn karma_saturates_at_k_max() {
        let sample = uniform_sample(16, 4);
        let mut e = estimator_with(&sample);
        let mut karma = KarmaMaintenance::new(&e, KarmaConfig::default());
        // Perfect feedback over and over: helpful points keep gaining, but
        // must cap at k_max.
        let region = Rect::from_intervals(&[(0.0, 1.0), (0.0, 1.0)]);
        for _ in 0..200 {
            let est = e.estimate(&region);
            // Slightly wrong actual so helping points exist.
            karma.update(&e, &feedback(region.clone(), est, (est - 0.2).max(0.0)));
        }
        let scores = karma.karma_values(&e);
        for (i, &k) in scores.iter().enumerate() {
            assert!(k <= karma.config().k_max + 1e-12, "point {i} karma {k}");
        }
    }

    #[test]
    fn update_without_contributions_is_noop() {
        let sample = uniform_sample(8, 5);
        let e = estimator_with(&sample); // no estimate() call yet
        let mut karma = KarmaMaintenance::new(&e, KarmaConfig::default());
        let region = Rect::cube(2, 0.0, 1.0);
        assert!(karma.update(&e, &feedback(region, 0.5, 0.5)).is_empty());
    }

    #[test]
    fn reset_point_clears_karma() {
        let mut sample = uniform_sample(15, 6);
        sample.extend_from_slice(&[50.0, 50.0]);
        let mut e = estimator_with(&sample);
        e.set_bandwidth(vec![0.1, 0.1]);
        let mut karma = KarmaMaintenance::new(&e, KarmaConfig::default());
        let region = Rect::from_intervals(&[(49.0, 51.0), (49.0, 51.0)]);
        let est = e.estimate(&region);
        let flagged = karma.update(&e, &feedback(region, est, 0.0));
        assert_eq!(flagged, vec![15]);
        karma.reset_point(&e, 15);
        let scores = karma.karma_values(&e);
        assert_eq!(scores[15], 0.0);
    }

    #[test]
    fn bitmap_travels_as_one_download() {
        let sample = uniform_sample(64, 7);
        let mut e = estimator_with(&sample);
        let mut karma = KarmaMaintenance::new(&e, KarmaConfig::default());
        let region = Rect::cube(2, 0.0, 0.5);
        let est = e.estimate(&region);
        let before = e.device().stats();
        karma.update(&e, &feedback(region, est, 0.3));
        let after = e.device().stats();
        assert_eq!(after.downloads - before.downloads, 1, "one bitmap transfer");
        assert_eq!(after.uploads, before.uploads, "no upload needed");
    }
}
