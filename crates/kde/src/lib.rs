//! The paper's primary contribution: self-tuning, device-accelerated
//! Kernel Density Models for multidimensional selectivity estimation.
//!
//! Module map (with the paper sections they implement):
//!
//! * [`kernel`] — Gaussian & Epanechnikov product kernels; the closed-form
//!   per-dimension range factor (eq. 13) and its bandwidth derivative
//!   (eq. 17's inner factor),
//! * [`estimator`] — the device-resident KDE model: estimate (eq. 2),
//!   estimator gradient (eqs. 15-17), single-transfer point replacement
//!   (§5.1), retained contribution buffer (§5.4),
//! * [`loss`] — differentiable loss functions and their derivatives
//!   (Appendix C.1),
//! * [`bandwidth`] — Scott's rule (eq. 3), batch optimization over query
//!   feedback (problem 5, §3.4), the adaptive RMSprop tuner (§4.1,
//!   Listing 1, with Appendix D's logarithmic updates), and the
//!   cross-validation selectors standing in for the `ks::Hscv.diag`
//!   baseline,
//! * [`karma`] — Karma-based sample maintenance (eqs. 6-8) with the
//!   empty-region shortcut (Appendix E, eq. 20),
//! * [`estimators`] — the `SelectivityEstimator` wrappers evaluated in §6:
//!   Heuristic, SCV, Batch, and Adaptive KDE.

pub mod bandwidth;
pub mod estimator;
pub mod estimators;
pub mod karma;
pub mod kernel;
pub mod loss;
pub mod mixed;
pub mod persist;
pub(crate) mod sweep;
pub mod variable;

pub use bandwidth::adaptive::{AdaptiveConfig, AdaptiveTuner};
pub use bandwidth::batch::{optimize_bandwidth, BatchConfig, WorkloadObjective};
pub use bandwidth::cv::{lscv_bandwidth, scv_bandwidth, CvConfig};
pub use bandwidth::scott::scott_bandwidth;
pub use estimator::KdeEstimator;
pub use estimators::{AdaptiveKde, BatchKde, HeuristicKde, ScvKde};
pub use karma::{KarmaConfig, KarmaMaintenance};
pub use kdesel_solver::online::RmsPropConfig;
pub use kernel::KernelFn;
pub use loss::LossFunction;
pub use mixed::{AttributeKind, MixedKde};
pub use persist::ModelSnapshot;
pub use variable::VariableKde;
