//! Kernel functions and their closed-form range integrals.
//!
//! For a rectangular query `Ω` and a diagonal bandwidth matrix, the
//! contribution of one sample point factorizes over dimensions (paper
//! Appendix B). Each factor is the probability a one-dimensional kernel
//! centered at `t` with bandwidth `h` assigns to `(lo, hi)`:
//!
//! * Gaussian (eq. 13): `½·[erf((hi−t)/(√2·h)) − erf((lo−t)/(√2·h))]`,
//! * Epanechnikov: the integral of `¾·(1−u²)` over the clipped standardized
//!   interval.
//!
//! The factor's derivative with respect to `h` is the inner factor of the
//! estimator gradient (eq. 17).

use kdesel_math::{erf, SQRT_2, SQRT_PI};

/// Kernel shape. The paper requires continuous differentiability (§3.1.2)
/// and derives everything for the Gaussian; the Epanechnikov is the cheaper
/// alternative mentioned in Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelFn {
    /// Standard normal kernel (paper eq. 9).
    #[default]
    Gaussian,
    /// Truncated second-order polynomial `¾(1−u²)` on `[−1, 1]`.
    Epanechnikov,
}

impl KernelFn {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelFn::Gaussian => "gaussian",
            KernelFn::Epanechnikov => "epanechnikov",
        }
    }

    /// Probability mass the kernel centered at `t` with bandwidth `h`
    /// assigns to the interval `(lo, hi)` — one factor of paper eq. 13.
    ///
    /// Requires `h > 0` (checked by `debug_assert`); returns a value in
    /// `[0, 1]`.
    #[inline]
    pub fn range_factor(self, t: f64, lo: f64, hi: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0, "non-positive bandwidth {h}");
        debug_assert!(lo <= hi);
        match self {
            KernelFn::Gaussian => {
                0.5 * (erf((hi - t) / (SQRT_2 * h)) - erf((lo - t) / (SQRT_2 * h)))
            }
            KernelFn::Epanechnikov => {
                let a = ((lo - t) / h).clamp(-1.0, 1.0);
                let b = ((hi - t) / h).clamp(-1.0, 1.0);
                epa_cdf(b) - epa_cdf(a)
            }
        }
    }

    /// Derivative of [`range_factor`](Self::range_factor) with respect to
    /// the bandwidth `h` — the inner factor of paper eq. 17.
    #[inline]
    pub fn range_factor_dh(self, t: f64, lo: f64, hi: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0);
        match self {
            KernelFn::Gaussian => {
                let h2 = h * h;
                // (1/(√2·√π·h²)) · [dl·exp(−dl²/2h²) − du·exp(−du²/2h²)].
                // x·e^{−x²/2h²} → 0 as |x| → ∞, but evaluates as ∞·0 = NaN
                // in floating point — take the limit explicitly so
                // unbounded query intervals (lo = −∞ / hi = +∞, common for
                // join predicates that constrain only some columns) get
                // the correct zero gradient in those dimensions.
                let term = |d: f64| -> f64 {
                    if d.is_finite() {
                        d * (-d * d / (2.0 * h2)).exp()
                    } else {
                        0.0
                    }
                };
                (term(lo - t) - term(hi - t)) / (SQRT_2 * SQRT_PI * h2)
            }
            KernelFn::Epanechnikov => {
                // d/dh [F(clamp(u_hi)) − F(clamp(u_lo))], u = (x−t)/h,
                // dF/dh = f(u)·(−u/h); the clamp zeroes the density outside
                // the support, so clamped endpoints contribute nothing.
                let ul = (lo - t) / h;
                let uh = (hi - t) / h;
                let term = |u: f64| -> f64 {
                    if (-1.0..=1.0).contains(&u) {
                        epa_pdf(u) * (-u / h)
                    } else {
                        0.0
                    }
                };
                term(uh) - term(ul)
            }
        }
    }

    /// Multiplies the range factors of all dimensions: the full per-point
    /// contribution `p̂⁽ⁱ⁾(Ω)` of paper eq. 13. `point`, `lo`, `hi`, and
    /// `bandwidth` must share one length.
    #[inline]
    pub fn contribution(self, point: &[f64], lo: &[f64], hi: &[f64], bandwidth: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), bandwidth.len());
        let mut p = 1.0;
        for j in 0..point.len() {
            p *= self.range_factor(point[j], lo[j], hi[j], bandwidth[j]);
            if p == 0.0 {
                return 0.0;
            }
        }
        p
    }

    /// Writes the per-dimension gradient contributions of one point into
    /// `out` (paper eq. 16): `out[i] = ∂/∂h_i ∏_j factor_j`.
    #[inline]
    pub fn contribution_gradient(
        self,
        point: &[f64],
        lo: &[f64],
        hi: &[f64],
        bandwidth: &[f64],
        out: &mut [f64],
    ) {
        let d = point.len();
        debug_assert_eq!(out.len(), d);
        // factors and their h-derivatives per dimension.
        let mut factors = [0.0f64; 32];
        let mut factors_heap;
        let factors: &mut [f64] = if d <= 32 {
            &mut factors[..d]
        } else {
            factors_heap = vec![0.0; d];
            &mut factors_heap
        };
        for j in 0..d {
            factors[j] = self.range_factor(point[j], lo[j], hi[j], bandwidth[j]);
        }
        for i in 0..d {
            let dfi = self.range_factor_dh(point[i], lo[i], hi[i], bandwidth[i]);
            if dfi == 0.0 {
                out[i] = 0.0;
                continue;
            }
            let mut prod = dfi;
            for (j, &fj) in factors.iter().enumerate() {
                if j != i {
                    prod *= fj;
                    if prod == 0.0 {
                        break;
                    }
                }
            }
            out[i] = prod;
        }
    }

    /// Fused per-point evaluation: computes the contribution (eq. 13)
    /// *and* its bandwidth gradient (eq. 16) in one pass, evaluating each
    /// dimension's range factor exactly once and sharing it between the
    /// two outputs (the factor-sharing observation of §5.5).
    ///
    /// Bit-identical to calling [`contribution`](Self::contribution) and
    /// [`contribution_gradient`](Self::contribution_gradient) separately:
    /// both outputs use the same factor values, the same multiplication
    /// order, and the same early-exit-on-zero behaviour.
    #[inline]
    pub fn contribution_with_gradient(
        self,
        point: &[f64],
        lo: &[f64],
        hi: &[f64],
        bandwidth: &[f64],
        out: &mut [f64],
    ) -> f64 {
        let d = point.len();
        debug_assert_eq!(out.len(), d);
        let mut factors = [0.0f64; 32];
        let mut factors_heap;
        let factors: &mut [f64] = if d <= 32 {
            &mut factors[..d]
        } else {
            factors_heap = vec![0.0; d];
            &mut factors_heap
        };
        for j in 0..d {
            factors[j] = self.range_factor(point[j], lo[j], hi[j], bandwidth[j]);
        }
        // Value: the accumulation order and zero short-circuit of
        // `contribution`.
        let mut value = 1.0;
        for &fj in factors.iter() {
            value *= fj;
            if value == 0.0 {
                break;
            }
        }
        // Gradient: the per-dimension loop of `contribution_gradient`,
        // reusing the factors computed above.
        for i in 0..d {
            let dfi = self.range_factor_dh(point[i], lo[i], hi[i], bandwidth[i]);
            if dfi == 0.0 {
                out[i] = 0.0;
                continue;
            }
            let mut prod = dfi;
            for (j, &fj) in factors.iter().enumerate() {
                if j != i {
                    prod *= fj;
                    if prod == 0.0 {
                        break;
                    }
                }
            }
            out[i] = prod;
        }
        value
    }

    /// Approximate FLOP count of one range factor, feeding the device cost
    /// model (erf ≈ 25 FLOP on GPU hardware; the polynomial CDF is ~10).
    pub fn flops_per_factor(self) -> f64 {
        match self {
            KernelFn::Gaussian => 60.0,
            KernelFn::Epanechnikov => 20.0,
        }
    }
}

/// Epanechnikov CDF on the standardized support `[-1, 1]`.
#[inline]
fn epa_cdf(u: f64) -> f64 {
    debug_assert!((-1.0..=1.0).contains(&u));
    0.25 * (3.0 * u - u * u * u) + 0.5
}

/// Epanechnikov density `¾(1−u²)` on `[-1, 1]` (shared with the
/// vectorized sweeps in [`crate::sweep`]).
#[inline]
pub(crate) fn epa_pdf(u: f64) -> f64 {
    0.75 * (1.0 - u * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: [KernelFn; 2] = [KernelFn::Gaussian, KernelFn::Epanechnikov];

    #[test]
    fn whole_line_integrates_to_one() {
        for k in KERNELS {
            let v = k.range_factor(3.0, -1e6, 1e6, 2.0);
            assert!((v - 1.0).abs() < 1e-12, "{}: {v}", k.name());
        }
    }

    #[test]
    fn factors_are_probabilities() {
        for k in KERNELS {
            for (t, lo, hi, h) in [
                (0.0, -1.0, 1.0, 1.0),
                (5.0, -1.0, 1.0, 0.3),
                (0.0, 0.0, 0.0, 1.0),
                (-2.0, -3.0, 10.0, 4.0),
            ] {
                let v = k.range_factor(t, lo, hi, h);
                assert!((0.0..=1.0).contains(&v), "{}: {v}", k.name());
            }
        }
    }

    #[test]
    fn gaussian_matches_normal_interval() {
        // range_factor(t, lo, hi, h) = Φ((hi−t)/h) − Φ((lo−t)/h).
        let v = KernelFn::Gaussian.range_factor(1.0, 0.0, 2.0, 0.5);
        let want = kdesel_math::normal_cdf(2.0) - kdesel_math::normal_cdf(-2.0);
        assert!((v - want).abs() < 1e-14, "{v} vs {want}");
    }

    #[test]
    fn epanechnikov_mass_within_support() {
        // Whole support from the center: exactly 1.
        assert!((KernelFn::Epanechnikov.range_factor(0.0, -1.0, 1.0, 1.0) - 1.0).abs() < 1e-15);
        // Half support: exactly 0.5 by symmetry.
        assert!((KernelFn::Epanechnikov.range_factor(0.0, 0.0, 1.0, 1.0) - 0.5).abs() < 1e-15);
        // Outside support: 0.
        assert_eq!(KernelFn::Epanechnikov.range_factor(0.0, 2.0, 3.0, 1.0), 0.0);
    }

    #[test]
    fn dh_matches_finite_differences() {
        for k in KERNELS {
            for (t, lo, hi, h) in [
                (0.3, -0.5, 0.9, 0.7),
                (2.0, -1.0, 1.0, 1.5),
                (0.0, 0.1, 0.4, 0.25),
                (-1.0, -2.0, 3.0, 2.0),
            ] {
                let eps = 1e-7;
                let fd = (k.range_factor(t, lo, hi, h + eps) - k.range_factor(t, lo, hi, h - eps))
                    / (2.0 * eps);
                let an = k.range_factor_dh(t, lo, hi, h);
                assert!(
                    (fd - an).abs() < 1e-6,
                    "{} at (t={t},lo={lo},hi={hi},h={h}): fd {fd} vs analytic {an}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn contribution_is_product_of_factors() {
        let k = KernelFn::Gaussian;
        let point = [0.0, 1.0];
        let lo = [-1.0, 0.0];
        let hi = [1.0, 2.0];
        let bw = [0.5, 2.0];
        let c = k.contribution(&point, &lo, &hi, &bw);
        let f0 = k.range_factor(0.0, -1.0, 1.0, 0.5);
        let f1 = k.range_factor(1.0, 0.0, 2.0, 2.0);
        assert!((c - f0 * f1).abs() < 1e-15);
    }

    #[test]
    fn contribution_gradient_matches_finite_differences() {
        for k in KERNELS {
            let point = [0.3, -0.2, 1.1];
            let lo = [-0.5, -1.0, 0.6];
            let hi = [0.8, 0.4, 2.0];
            let bw = [0.6, 0.9, 1.4];
            let mut grad = [0.0; 3];
            k.contribution_gradient(&point, &lo, &hi, &bw, &mut grad);
            for i in 0..3 {
                let eps = 1e-7;
                let mut bp = bw;
                bp[i] += eps;
                let mut bm = bw;
                bm[i] -= eps;
                let fd = (k.contribution(&point, &lo, &hi, &bp)
                    - k.contribution(&point, &lo, &hi, &bm))
                    / (2.0 * eps);
                assert!(
                    (fd - grad[i]).abs() < 1e-6,
                    "{} dim {i}: fd {fd} vs {}",
                    k.name(),
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn fused_contribution_is_bit_identical_to_separate_calls() {
        for k in KERNELS {
            let point = [0.3, -0.2, 1.1, 4.0];
            let lo = [-0.5, -1.0, 0.6, 3.0];
            let hi = [0.8, 0.4, 2.0, 5.0];
            let bw = [0.6, 0.9, 1.4, 0.2];
            let mut fused_grad = [0.0; 4];
            let fused = k.contribution_with_gradient(&point, &lo, &hi, &bw, &mut fused_grad);
            let mut grad = [0.0; 4];
            k.contribution_gradient(&point, &lo, &hi, &bw, &mut grad);
            assert_eq!(fused, k.contribution(&point, &lo, &hi, &bw), "{}", k.name());
            assert_eq!(fused_grad, grad, "{}", k.name());
        }
    }

    #[test]
    fn fused_contribution_handles_exact_zero_factors() {
        // Epanechnikov has compact support: a point far outside the query
        // in one dimension produces an exactly-zero factor, exercising the
        // early-exit paths of both outputs.
        let k = KernelFn::Epanechnikov;
        let point = [0.0, 100.0];
        let lo = [-1.0, -1.0];
        let hi = [1.0, 1.0];
        let bw = [1.0, 1.0];
        let mut fused_grad = [9.0; 2];
        let fused = k.contribution_with_gradient(&point, &lo, &hi, &bw, &mut fused_grad);
        let mut grad = [9.0; 2];
        k.contribution_gradient(&point, &lo, &hi, &bw, &mut grad);
        assert_eq!(fused, 0.0);
        assert_eq!(fused, k.contribution(&point, &lo, &hi, &bw));
        assert_eq!(fused_grad, grad);
    }

    #[test]
    fn gaussian_gradient_sign() {
        // Point outside a small query box: growing h spreads mass toward the
        // box → positive derivative. Point at the center: growing h leaks
        // mass out → negative derivative.
        let k = KernelFn::Gaussian;
        assert!(k.range_factor_dh(5.0, -1.0, 1.0, 1.0) > 0.0);
        assert!(k.range_factor_dh(0.0, -1.0, 1.0, 1.0) < 0.0);
    }

    #[test]
    fn tiny_bandwidth_degrades_to_point_membership() {
        // §8 of the paper: as h → 0 the estimator counts matching tuples.
        for k in KERNELS {
            let inside = k.range_factor(0.5, 0.0, 1.0, 1e-6);
            let outside = k.range_factor(5.0, 0.0, 1.0, 1e-6);
            assert!((inside - 1.0).abs() < 1e-9, "{}", k.name());
            assert!(outside.abs() < 1e-12, "{}", k.name());
        }
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn factor_in_unit_interval(
                t in -10.0f64..10.0,
                a in -10.0f64..10.0,
                w in 0.0f64..10.0,
                h in 1e-3f64..10.0
            ) {
                for k in [KernelFn::Gaussian, KernelFn::Epanechnikov] {
                    let v = k.range_factor(t, a, a + w, h);
                    prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
                }
            }

            #[test]
            fn factor_monotone_in_region_growth(
                t in -5.0f64..5.0,
                a in -5.0f64..5.0,
                w in 0.0f64..5.0,
                extra in 0.0f64..3.0,
                h in 1e-2f64..5.0
            ) {
                for k in [KernelFn::Gaussian, KernelFn::Epanechnikov] {
                    let small = k.range_factor(t, a, a + w, h);
                    let large = k.range_factor(t, a - extra, a + w + extra, h);
                    prop_assert!(large >= small - 1e-12);
                }
            }

            #[test]
            fn gaussian_dh_consistent(
                t in -3.0f64..3.0,
                a in -3.0f64..3.0,
                w in 0.01f64..3.0,
                h in 0.05f64..3.0
            ) {
                let k = KernelFn::Gaussian;
                let eps = 1e-6;
                let fd = (k.range_factor(t, a, a + w, h + eps)
                    - k.range_factor(t, a, a + w, h - eps)) / (2.0 * eps);
                let an = k.range_factor_dh(t, a, a + w, h);
                prop_assert!((fd - an).abs() < 1e-4, "fd {} vs {}", fd, an);
            }
        }
    }
}
