//! Cross-validation bandwidth selectors.
//!
//! Stand-in for the paper's *KDE SCV* baseline (§6.1.1), which used the
//! diagonal smoothed-cross-validation selector `Hscv.diag` from the R `ks`
//! package [Duong & Hazelton 2005]. Two selectors are provided, both for
//! diagonal-bandwidth product-Gaussian models:
//!
//! * **LSCV** (least-squares / unbiased CV): minimizes an unbiased estimate
//!   of the integrated squared error,
//!   `LSCV(h) = R(p̂) − 2/n · Σᵢ p̂₋ᵢ(xᵢ)`, which has the closed form
//!   `n⁻² ΣᵢΣⱼ φ_{√2·h}(xᵢ−xⱼ) − 2/(n(n−1)) Σ_{i≠j} φ_h(xᵢ−xⱼ)`,
//! * **SCV** (smoothed CV): replaces the raw pairwise differences with
//!   pilot-smoothed ones,
//!   `SCV(h) = R(φ)/(n·Πh_d) + n⁻² ΣᵢΣⱼ T(xᵢ−xⱼ)` with
//!   `T = φ_{√(2h²+2g²)} − 2·φ_{√(h²+2g²)} + φ_{√(2g²)}` and a
//!   Scott's-rule pilot `g` — the Hall–Marron–Park criterion in its
//!   diagonal form.
//!
//! Both criteria are minimized in log-bandwidth space with the same solver
//! stack as the batch optimizer. Unlike the batch optimizer these selectors
//! are *workload-oblivious*: they only see the sample — which is exactly
//! why the paper's Batch estimator beats them (§6.2).

use crate::bandwidth::scott::scott_bandwidth;
use kdesel_math::simd::{F64s, LANES};
use kdesel_math::FRAC_1_SQRT_2PI;
use kdesel_solver::{multistart, Bounds, LbfgsConfig, MultistartConfig, Objective};
use rand::Rng;

/// CV-selector configuration.
#[derive(Debug, Clone)]
pub struct CvConfig {
    /// Log-space search half-width around the Scott initialization.
    pub search_span: f64,
    /// Largest sample size fed to the O(n²) criterion; larger samples are
    /// uniformly subsampled first (the selected bandwidth is rescaled by
    /// Scott's s^(−1/(d+4)) law to account for the size difference).
    pub max_points: usize,
    /// Global-phase configuration (CV criteria are smooth; a light global
    /// phase suffices).
    pub multistart: MultistartConfig,
}

impl Default for CvConfig {
    fn default() -> Self {
        Self {
            search_span: (50.0f64).ln(),
            max_points: 2048,
            multistart: MultistartConfig {
                rounds: 2,
                samples_per_round: 6,
                local: LbfgsConfig {
                    max_iterations: 60,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }
}

/// Gaussian density with scale `a`: `φ_a(u) = exp(−u²/2a²)/(√(2π)·a)`.
#[inline]
fn phi(u: f64, a: f64) -> f64 {
    FRAC_1_SQRT_2PI / a * (-0.5 * (u / a) * (u / a)).exp()
}

/// A sum-of-product-Gaussian term over all ordered pairs, with per-scale
/// coefficients. For the pair difference `u = xᵢ − xⱼ` each addend is
/// `coeff_k · Π_d φ_{a_k(h_d, g_d)}(u_d)`; the gradient with respect to
/// `h_d` multiplies the product by `(u_d² − a²)·α·h_d / a⁴` where
/// `a² = α·h_d² + β·g_d²`.
struct PairTerm {
    /// Coefficient of the addend.
    coeff: f64,
    /// `α`: weight of `h²` in the scale.
    alpha: f64,
    /// `β`: weight of the pilot `g²` in the scale.
    beta: f64,
}

/// One independently-accumulated group of [`PairTerm`]s within a fused
/// multi-group traversal: a group has its own value/gradient accumulators
/// and its own diagonal policy, so fusing groups into one pass cannot
/// change any group's summation order.
struct PairGroup<'t> {
    /// Addends evaluated for every visited pair.
    terms: &'t [PairTerm],
    /// Skip `i == j` pairs for this group only.
    exclude_diagonal: bool,
}

/// Evaluates every group's `Σ_k coeff_k Σᵢⱼ Π_d φ_{a_k}(u_d)` and its
/// gradient wrt `h` in a *single* traversal of the O(n²) pairs, returning
/// one `(value, gradient)` per group.
///
/// Each group keeps separate accumulators and sees pairs in the same
/// `(i, j, term)` order a dedicated sweep would, so per-group results are
/// bit-identical with running [`pair_sums`] once per group — that contract
/// is what lets LSCV fuse its two criterion terms into one pass.
fn pair_sums(
    sample: &[f64],
    dims: usize,
    h: &[f64],
    pilot: &[f64],
    groups: &[PairGroup],
) -> Vec<(f64, Vec<f64>)> {
    let n = sample.len() / dims;
    // Pre-compute scales per group per term per dim.
    let scales: Vec<Vec<Vec<f64>>> = groups
        .iter()
        .map(|g| {
            g.terms
                .iter()
                .map(|t| {
                    (0..dims)
                        .map(|d| (t.alpha * h[d] * h[d] + t.beta * pilot[d] * pilot[d]).sqrt())
                        .collect()
                })
                .collect()
        })
        .collect();

    // One columnar transpose up front: the O(n²) inner loops then stream
    // unit-stride per-dimension stripes (`cols[d·n..][..n]`) and process
    // `LANES` partners per step — the same SoA discipline as the device
    // sweeps, applied host-side.
    let mut cols = vec![0.0; sample.len()];
    for (r, row) in sample.chunks_exact(dims).enumerate() {
        for (d, &v) in row.iter().enumerate() {
            cols[d * n + r] = v;
        }
    }
    let cols = &cols;

    kdesel_par::par_map_combine(
        n,
        || {
            groups
                .iter()
                .map(|_| (0.0, vec![0.0; dims]))
                .collect::<Vec<_>>()
        },
        |i| {
            let mut out: Vec<(f64, Vec<f64>)> =
                groups.iter().map(|_| (0.0, vec![0.0; dims])).collect();
            // Groups keep separate accumulators, so sweeping them one
            // after another preserves each group's (j, term) order.
            for ((group, gsc), acc) in groups.iter().zip(&scales).zip(out.iter_mut()) {
                accumulate_group(cols, dims, i, group, gsc, h, acc);
            }
            out
        },
        |mut a, b| {
            for ((va, ga), (vb, gb)) in a.iter_mut().zip(&b) {
                *va += vb;
                for (x, y) in ga.iter_mut().zip(gb) {
                    *x += y;
                }
            }
            a
        },
    )
}

/// Elementwise `φ_a(u)` with the prefactor `1/(√(2π)·a)` hoisted — the
/// per-lane operation sequence of [`phi`] exactly.
#[inline]
fn phi_lanes(u: F64s, prefactor: f64, a: f64) -> F64s {
    let w = u / a;
    (w * -0.5 * w).map(f64::exp) * prefactor
}

/// Accumulates one group's pair sums for anchor point `i` over all
/// partners `j`, vectorized `LANES` partners at a time over the columnar
/// stripes.
///
/// Bit-identical to the scalar j-at-a-time loop it replaces: lane
/// arithmetic mirrors the scalar operation order; the scalar skips
/// (`prod == 0`, `alpha == 0`, the diagonal) become additions of exact
/// `±0.0` lane values, which cannot change an accumulator that is never
/// `-0.0` (it starts at `+0.0`, and IEEE-754 round-to-nearest sums only
/// produce `-0.0` from two `-0.0` operands); and the per-block
/// accumulation drain runs in the scalar path's ascending `(j, term)`
/// order.
fn accumulate_group(
    cols: &[f64],
    dims: usize,
    i: usize,
    group: &PairGroup,
    scales: &[Vec<f64>],
    h: &[f64],
    acc: &mut (f64, Vec<f64>),
) {
    let n = cols.len() / dims;
    let (v, g) = acc;
    // Per-term per-dim constants, each computed exactly as the scalar
    // expressions compute them: the scale a, the φ prefactor, a²,
    // a³ = (a·a)·a, and the gradient scale s = α·h_d/a.
    type TermConsts = Vec<Vec<(f64, f64, f64, f64, f64)>>;
    let consts: TermConsts = group
        .terms
        .iter()
        .zip(scales)
        .map(|(t, sc)| {
            sc.iter()
                .zip(h)
                .map(|(&a, &hd)| (a, FRAC_1_SQRT_2PI / a, a * a, a * a * a, t.alpha * hd / a))
                .collect()
        })
        .collect();
    let tcount = group.terms.len();
    let main = n - n % LANES;
    let mut us: Vec<[f64; LANES]> = vec![[0.0; LANES]; dims];
    let mut prods: Vec<[f64; LANES]> = vec![[0.0; LANES]; tcount];
    let mut gcons: Vec<[f64; LANES]> = vec![[0.0; LANES]; tcount * dims];
    let mut j0 = 0;
    while j0 < main {
        // u_d = x_i[d] − x_j[d] for the whole lane block, one stripe per
        // dimension (the columnar payoff: unit-stride loads).
        for (d, u) in us.iter_mut().enumerate() {
            let xi_d = cols[d * n + i];
            *u = (F64s::splat(xi_d) - F64s::from_slice(&cols[d * n + j0..])).to_array();
        }
        for (t_idx, (t, tc)) in group.terms.iter().zip(&consts).enumerate() {
            let mut prod = F64s::splat(t.coeff);
            for (u, &(a, pref, _, _, _)) in us.iter().zip(tc) {
                prod = prod * phi_lanes(F64s(*u), pref, a);
            }
            prods[t_idx] = prod.to_array();
            for (d, (u, &(_, _, a2, a3, s))) in us.iter().zip(tc).enumerate() {
                let uv = F64s(*u);
                let dlog = (uv * uv - F64s::splat(a2)) / a3 * s;
                gcons[t_idx * dims + d] = (prod * dlog).to_array();
            }
        }
        // The diagonal skip: zero that lane's addends (adding an exact
        // +0.0 is a no-op for these accumulators).
        if group.exclude_diagonal && (j0..j0 + LANES).contains(&i) {
            let lane = i - j0;
            for t_idx in 0..tcount {
                prods[t_idx][lane] = 0.0;
                for d in 0..dims {
                    gcons[t_idx * dims + d][lane] = 0.0;
                }
            }
        }
        // Drain in the scalar path's ascending (j, term) order.
        for lane in 0..LANES {
            for t_idx in 0..tcount {
                *v += prods[t_idx][lane];
                for (d, gd) in g.iter_mut().enumerate() {
                    *gd += gcons[t_idx * dims + d][lane];
                }
            }
        }
        j0 += LANES;
    }
    // Scalar tail: the original j-at-a-time loop body, verbatim.
    for j in main..n {
        if group.exclude_diagonal && i == j {
            continue;
        }
        for (t, sc) in group.terms.iter().zip(scales) {
            let mut prod = t.coeff;
            for d in 0..dims {
                prod *= phi(cols[d * n + i] - cols[d * n + j], sc[d]);
            }
            if prod == 0.0 {
                continue;
            }
            *v += prod;
            for d in 0..dims {
                if t.alpha == 0.0 {
                    continue; // scale independent of h
                }
                let a = sc[d];
                let u = cols[d * n + i] - cols[d * n + j];
                // d/dh_d ln φ_a(u) = (u² − a²)/a³ · da/dh_d,
                // da/dh_d = α·h_d / a.
                let dlog = (u * u - a * a) / (a * a * a) * (t.alpha * h[d] / a);
                g[d] += prod * dlog;
            }
        }
    }
}

/// The LSCV criterion as a solver objective over `ln h`.
struct LscvObjective<'a> {
    sample: &'a [f64],
    dims: usize,
}

impl Objective for LscvObjective<'_> {
    fn dims(&self) -> usize {
        self.dims
    }

    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        let h: Vec<f64> = x.iter().map(|&v| v.exp()).collect();
        let d = self.dims;
        let n = (self.sample.len() / d) as f64;
        let pilot = vec![0.0; d];

        // Both criterion terms in one fused O(n²) traversal:
        // term 1: R(p̂) = n⁻² Σᵢⱼ φ_{√2 h}(u) — includes the diagonal;
        // term 2: −2/(n(n−1)) Σ_{i≠j} φ_h(u).
        let results = pair_sums(
            self.sample,
            d,
            &h,
            &pilot,
            &[
                PairGroup {
                    terms: &[PairTerm {
                        coeff: 1.0,
                        alpha: 2.0,
                        beta: 0.0,
                    }],
                    exclude_diagonal: false,
                },
                PairGroup {
                    terms: &[PairTerm {
                        coeff: 1.0,
                        alpha: 1.0,
                        beta: 0.0,
                    }],
                    exclude_diagonal: true,
                },
            ],
        );
        let (t1, g1) = &results[0];
        let (t2, g2) = &results[1];
        let value = t1 / (n * n) - 2.0 * t2 / (n * (n - 1.0));
        for i in 0..d {
            let dh = g1[i] / (n * n) - 2.0 * g2[i] / (n * (n - 1.0));
            grad[i] = dh * h[i]; // chain rule into log-space
        }
        value
    }
}

/// The diagonal SCV criterion as a solver objective over `ln h`.
struct ScvObjective<'a> {
    sample: &'a [f64],
    dims: usize,
    pilot: Vec<f64>,
}

impl Objective for ScvObjective<'_> {
    fn dims(&self) -> usize {
        self.dims
    }

    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        let h: Vec<f64> = x.iter().map(|&v| v.exp()).collect();
        let d = self.dims;
        let n = (self.sample.len() / d) as f64;

        // Roughness term R(φ)/(n Π h_d), R(φ) = (2√π)^(−d).
        let r_phi = (2.0 * kdesel_math::SQRT_PI).powi(-(d as i32));
        let prod_h: f64 = h.iter().product();
        let rough = r_phi / (n * prod_h);

        let terms = [
            PairTerm {
                coeff: 1.0,
                alpha: 2.0,
                beta: 2.0,
            },
            PairTerm {
                coeff: -2.0,
                alpha: 1.0,
                beta: 2.0,
            },
            PairTerm {
                coeff: 1.0,
                alpha: 0.0,
                beta: 2.0,
            },
        ];
        let results = pair_sums(
            self.sample,
            d,
            &h,
            &self.pilot,
            &[PairGroup {
                terms: &terms,
                exclude_diagonal: true,
            }],
        );
        let (sum, gsum) = &results[0];
        let value = rough + sum / (n * n);
        for i in 0..d {
            let dh = -rough / h[i] + gsum[i] / (n * n);
            grad[i] = dh * h[i];
        }
        value
    }
}

/// Uniformly subsamples `sample` down to `max_points` rows when needed;
/// returns the (possibly borrowed) data and the bandwidth rescale factor
/// `(n_sub / n)^(−1/(d+4))` that maps the subsample-optimal bandwidth back
/// to the full sample size (Scott's rate).
fn subsample_for_cv<'a, R: Rng + ?Sized>(
    sample: &'a [f64],
    dims: usize,
    max_points: usize,
    rng: &mut R,
) -> (std::borrow::Cow<'a, [f64]>, f64) {
    let n = sample.len() / dims;
    if n <= max_points {
        return (std::borrow::Cow::Borrowed(sample), 1.0);
    }
    let mut indices: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    indices.shuffle(rng);
    indices.truncate(max_points);
    let mut sub = Vec::with_capacity(max_points * dims);
    for &i in &indices {
        sub.extend_from_slice(&sample[i * dims..(i + 1) * dims]);
    }
    let rescale = (n as f64 / max_points as f64).powf(-1.0 / (dims as f64 + 4.0));
    (std::borrow::Cow::Owned(sub), rescale)
}

fn minimize_cv<O: Objective, R: Rng + ?Sized>(
    objective: &O,
    start_h: &[f64],
    config: &CvConfig,
    rng: &mut R,
) -> Vec<f64> {
    let log0: Vec<f64> = start_h.iter().map(|&h| h.ln()).collect();
    let lo: Vec<f64> = log0.iter().map(|&v| v - config.search_span).collect();
    let hi: Vec<f64> = log0.iter().map(|&v| v + config.search_span).collect();
    let bounds = Bounds::new(lo, hi);
    let result = multistart(objective, &bounds, &[log0], &config.multistart, rng);
    result.x.iter().map(|&v| v.exp()).collect()
}

/// Selects a diagonal bandwidth by least-squares cross-validation.
///
/// # Panics
/// Panics on an empty/ragged sample or one with fewer than two points.
pub fn lscv_bandwidth<R: Rng + ?Sized>(
    sample: &[f64],
    dims: usize,
    config: &CvConfig,
    rng: &mut R,
) -> Vec<f64> {
    assert!(dims > 0);
    assert_eq!(sample.len() % dims, 0, "ragged sample");
    assert!(sample.len() / dims >= 2, "CV needs at least two points");
    let (data, rescale) = subsample_for_cv(sample, dims, config.max_points, rng);
    let start = scott_bandwidth(&data, dims);
    let objective = LscvObjective {
        sample: &data,
        dims,
    };
    let mut h = minimize_cv(&objective, &start, config, rng);
    for v in &mut h {
        *v *= rescale;
    }
    h
}

/// Selects a diagonal bandwidth by smoothed cross-validation with a
/// Scott's-rule pilot — the stand-in for `ks::Hscv.diag`.
///
/// # Panics
/// Panics on an empty/ragged sample or one with fewer than two points.
pub fn scv_bandwidth<R: Rng + ?Sized>(
    sample: &[f64],
    dims: usize,
    config: &CvConfig,
    rng: &mut R,
) -> Vec<f64> {
    assert!(dims > 0);
    assert_eq!(sample.len() % dims, 0, "ragged sample");
    assert!(sample.len() / dims >= 2, "CV needs at least two points");
    let (data, rescale) = subsample_for_cv(sample, dims, config.max_points, rng);
    let start = scott_bandwidth(&data, dims);
    let objective = ScvObjective {
        sample: &data,
        dims,
        pilot: start.clone(),
    };
    let mut h = minimize_cv(&objective, &start, config, rng);
    for v in &mut h {
        *v *= rescale;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rand_like_normal::normal_sample;

    /// Minimal Box–Muller sampler to avoid a rand_distr dependency here.
    mod rand_like_normal {
        use rand::Rng;
        pub fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }

    fn normal_data(n: usize, dims: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dims).map(|_| normal_sample(&mut rng)).collect()
    }

    fn bimodal_data(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .flat_map(|i| {
                let c = if i % 2 == 0 { -8.0 } else { 8.0 };
                [c + normal_sample(&mut rng)]
            })
            .collect()
    }

    #[test]
    fn lscv_gradient_matches_finite_differences() {
        let sample = normal_data(40, 2, 1);
        let obj = LscvObjective {
            sample: &sample,
            dims: 2,
        };
        check_gradient(&obj, &[(0.4f64).ln(), (0.8f64).ln()]);
    }

    #[test]
    fn scv_gradient_matches_finite_differences() {
        let sample = normal_data(40, 2, 2);
        let pilot = scott_bandwidth(&sample, 2);
        let obj = ScvObjective {
            sample: &sample,
            dims: 2,
            pilot,
        };
        check_gradient(&obj, &[(0.4f64).ln(), (0.8f64).ln()]);
    }

    fn check_gradient<O: Objective>(obj: &O, x: &[f64]) {
        let mut grad = vec![0.0; x.len()];
        obj.eval(x, &mut grad);
        for i in 0..x.len() {
            let eps = 1e-6;
            let mut xp = x.to_vec();
            xp[i] += eps;
            let mut xm = x.to_vec();
            xm[i] -= eps;
            let mut tmp = vec![0.0; x.len()];
            let fd = (obj.eval(&xp, &mut tmp) - obj.eval(&xm, &mut tmp)) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-6 * grad[i].abs().max(1e-3),
                "dim {i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn fused_multi_group_traversal_matches_dedicated_sweeps_bitwise() {
        // The fusion contract: evaluating several groups in one O(n²) pass
        // must reproduce each group's dedicated-sweep result bit-exactly.
        let sample = normal_data(150, 2, 11); // > one par chunk worth of rows
        let h = [0.4, 0.9];
        let pilot = [0.7, 0.6];
        let a = [PairTerm {
            coeff: 1.0,
            alpha: 2.0,
            beta: 0.0,
        }];
        let b = [
            PairTerm {
                coeff: -2.0,
                alpha: 1.0,
                beta: 2.0,
            },
            PairTerm {
                coeff: 1.0,
                alpha: 0.0,
                beta: 2.0,
            },
        ];
        let groups = [
            PairGroup {
                terms: &a,
                exclude_diagonal: false,
            },
            PairGroup {
                terms: &b,
                exclude_diagonal: true,
            },
        ];
        let fused = pair_sums(&sample, 2, &h, &pilot, &groups);
        for (k, group) in groups.iter().enumerate() {
            let solo = pair_sums(
                &sample,
                2,
                &h,
                &pilot,
                &[PairGroup {
                    terms: group.terms,
                    exclude_diagonal: group.exclude_diagonal,
                }],
            );
            assert_eq!(fused[k].0, solo[0].0, "group {k} value");
            assert_eq!(fused[k].1, solo[0].1, "group {k} gradient");
        }
    }

    #[test]
    fn cv_on_normal_data_lands_near_scott() {
        // Scott's rule is optimal for normal data, so both CV selectors
        // should stay within a small factor of it.
        let sample = normal_data(200, 1, 3);
        let scott = scott_bandwidth(&sample, 1);
        let mut rng = StdRng::seed_from_u64(4);
        for f in [lscv_bandwidth, scv_bandwidth] {
            let h = f(&sample, 1, &CvConfig::default(), &mut rng);
            let ratio = h[0] / scott[0];
            assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn cv_undersmooths_relative_to_scott_on_bimodal_data() {
        // On a well-separated mixture, Scott's global σ badly oversmooths;
        // CV must pick a much smaller bandwidth.
        let sample = bimodal_data(200, 5);
        let scott = scott_bandwidth(&sample, 1);
        let mut rng = StdRng::seed_from_u64(6);
        let h_scv = scv_bandwidth(&sample, 1, &CvConfig::default(), &mut rng);
        let h_lscv = lscv_bandwidth(&sample, 1, &CvConfig::default(), &mut rng);
        assert!(
            h_scv[0] < scott[0] * 0.6,
            "scv {} vs scott {}",
            h_scv[0],
            scott[0]
        );
        assert!(
            h_lscv[0] < scott[0] * 0.6,
            "lscv {} vs scott {}",
            h_lscv[0],
            scott[0]
        );
        // The clusters have unit σ, so the result should be O(cluster σ),
        // not O(separation).
        assert!(h_scv[0] < 2.0);
    }

    #[test]
    fn selected_bandwidths_are_positive_and_deterministic() {
        let sample = normal_data(60, 3, 7);
        let cfg = CvConfig::default();
        let a = scv_bandwidth(&sample, 3, &cfg, &mut StdRng::seed_from_u64(8));
        let b = scv_bandwidth(&sample, 3, &cfg, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert!(a.iter().all(|&h| h > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        lscv_bandwidth(&[1.0, 2.0], 2, &CvConfig::default(), &mut rng);
    }
}
