//! Bandwidth selection: the heart of the paper.
//!
//! Four selectors, matching the estimators compared in §6.1.1:
//!
//! * [`scott`] — the rule-of-thumb initialization (eq. 3), used by the
//!   *Heuristic* estimator and as the starting point for everything else,
//! * [`batch`] — workload-driven numerical optimization (problem 5, §3.4):
//!   MLSL-style global phase + projected L-BFGS refinement in log-space,
//! * [`adaptive`] — the online RMSprop tuner (§4.1, Listing 1) with
//!   logarithmic updates (Appendix D),
//! * [`cv`] — data-driven cross-validation selectors (LSCV and diagonal
//!   SCV), standing in for the R `ks::Hscv.diag` baseline.

pub mod adaptive;
pub mod batch;
pub mod cv;
pub mod scott;
