//! Batch bandwidth optimization over query feedback (paper §3.3-3.4).
//!
//! Solves optimization problem (5): minimize the mean loss over a training
//! workload of labelled queries, subject to positive bandwidths. Following
//! §3.4 and §5.3, a coarse MLSL-style global phase is followed by projected
//! L-BFGS refinement; following Appendix D, the search runs in log-space by
//! default (which also absorbs the positivity constraint). Scott's-rule
//! bandwidth is always included as a deterministic starting point, so the
//! optimizer never does worse than the heuristic on the training set.
//!
//! The objective runs through the device's fused batched kernel (§5.5-style
//! batching): one solver iteration is one launch over all workload queries,
//! not `|workload|` separate estimate/gradient sweeps.

use crate::estimator::KdeEstimator;
use crate::loss::LossFunction;
use kdesel_device::DeviceBuffer;
use kdesel_solver::{multistart, Bounds, LbfgsConfig, MultistartConfig, Objective};
use kdesel_types::{LabelledQuery, Rect};
use rand::Rng;

/// Batch-optimizer configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Loss to minimize (problem 5's `L`).
    pub loss: LossFunction,
    /// Optimize `ln h` instead of `h` (Appendix D; the paper found this
    /// better in 68% of experiments).
    pub log_space: bool,
    /// Log-space search half-width around the Scott initialization: the
    /// box is `ln h⁰ ± search_span`.
    pub search_span: f64,
    /// Global-phase configuration.
    pub multistart: MultistartConfig,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            loss: LossFunction::Quadratic,
            log_space: true,
            search_span: (200.0f64).ln(),
            multistart: MultistartConfig {
                rounds: 3,
                samples_per_round: 12,
                local: LbfgsConfig {
                    max_iterations: 80,
                    gradient_tolerance: 1e-10,
                    value_tolerance: 1e-12,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }
}

/// Result of a batch optimization.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The optimized bandwidth (linear scale, strictly positive).
    pub bandwidth: Vec<f64>,
    /// Mean training loss at the optimum.
    pub training_loss: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
}

/// The workload objective of problem (5), evaluated through the device.
///
/// One objective+gradient evaluation is a *single* fused batched launch
/// ([`KdeEstimator::estimate_batch_with_gradients_at`]) instead of
/// `|workload|` separate estimate-plus-gradient pairs: the query bounds are
/// staged on the device once at construction, and each solver iteration
/// uploads only the candidate bandwidth. Per-query losses and the chain
/// rule through the loss are folded on the host, which is O(|workload|·d)
/// scalar work against the O(|sample|·|workload|·d) kernel evaluation.
pub struct WorkloadObjective<'a> {
    estimator: &'a KdeEstimator,
    regions: Vec<Rect>,
    selectivities: Vec<f64>,
    loss: LossFunction,
    log_space: bool,
    /// Query rectangles staged device-side once for the whole optimization
    /// (held so the resident-footprint accounting reflects the staging).
    _bounds: DeviceBuffer,
}

impl<'a> WorkloadObjective<'a> {
    /// Stages the workload's query bounds on `estimator`'s device and
    /// builds the objective.
    ///
    /// # Panics
    /// Panics on an empty training workload or query dimensionality
    /// mismatch.
    pub fn new(
        estimator: &'a KdeEstimator,
        queries: &[LabelledQuery],
        loss: LossFunction,
        log_space: bool,
    ) -> Self {
        assert!(!queries.is_empty(), "empty training workload");
        let dims = estimator.dims();
        for q in queries {
            assert_eq!(q.region.dims(), dims, "query dimensionality mismatch");
        }
        let regions: Vec<Rect> = queries.iter().map(|q| q.region.clone()).collect();
        let selectivities: Vec<f64> = queries.iter().map(|q| q.selectivity).collect();
        let bounds = estimator.stage_bounds(&regions);
        Self {
            estimator,
            regions,
            selectivities,
            loss,
            log_space,
            _bounds: bounds,
        }
    }

    /// Mean loss and its gradient with respect to the *linear* bandwidth.
    /// One call = one fused batched kernel launch, regardless of workload
    /// size.
    fn eval_linear(&self, h: &[f64], grad_out: &mut [f64]) -> f64 {
        let q = self.regions.len() as f64;
        let results = self
            .estimator
            .estimate_batch_with_gradients_at(h, &self.regions);
        for g in grad_out.iter_mut() {
            *g = 0.0;
        }
        let mut total_loss = 0.0;
        for ((estimate, grad), &sel) in results.iter().zip(&self.selectivities) {
            total_loss += self.loss.value(*estimate, sel);
            let lscale = self.loss.dvalue_destimate(*estimate, sel);
            for (o, &g) in grad_out.iter_mut().zip(grad) {
                *o += lscale * g;
            }
        }
        for o in grad_out.iter_mut() {
            *o /= q;
        }
        total_loss / q
    }
}

impl Objective for WorkloadObjective<'_> {
    fn dims(&self) -> usize {
        self.estimator.dims()
    }

    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        if self.log_space {
            let h: Vec<f64> = x.iter().map(|&v| v.exp()).collect();
            let value = self.eval_linear(&h, grad);
            // Chain rule (Appendix D, eq. 18): ∂L/∂(ln h) = ∂L/∂h · h.
            for (g, &hi) in grad.iter_mut().zip(&h) {
                *g *= hi;
            }
            value
        } else {
            self.eval_linear(x, grad)
        }
    }
}

/// Solves problem (5) for `estimator`'s sample, returning the optimized
/// bandwidth. The estimator itself is not modified; callers apply the
/// result with [`KdeEstimator::set_bandwidth`].
///
/// # Panics
/// Panics on an empty training workload or query dimensionality mismatch.
pub fn optimize_bandwidth<R: Rng + ?Sized>(
    estimator: &KdeEstimator,
    queries: &[LabelledQuery],
    config: &BatchConfig,
    rng: &mut R,
) -> BatchResult {
    let objective = WorkloadObjective::new(estimator, queries, config.loss, config.log_space);
    let initial = estimator.bandwidth().to_vec();

    let (bounds, start) = if config.log_space {
        let log0: Vec<f64> = initial.iter().map(|&h| h.ln()).collect();
        let lo: Vec<f64> = log0.iter().map(|&v| v - config.search_span).collect();
        let hi: Vec<f64> = log0.iter().map(|&v| v + config.search_span).collect();
        (Bounds::new(lo, hi), log0)
    } else {
        let lo: Vec<f64> = initial
            .iter()
            .map(|&h| h * (-config.search_span).exp())
            .collect();
        let hi: Vec<f64> = initial
            .iter()
            .map(|&h| h * config.search_span.exp())
            .collect();
        (Bounds::new(lo, hi), initial.clone())
    };

    let result = multistart(&objective, &bounds, &[start], &config.multistart, rng);
    let bandwidth: Vec<f64> = if config.log_space {
        result.x.iter().map(|&v| v.exp()).collect()
    } else {
        // Linear mode can return boundary values; enforce positivity.
        result.x.iter().map(|&v| v.max(1e-12)).collect()
    };
    BatchResult {
        bandwidth,
        training_loss: result.f,
        evaluations: result.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFn;
    use kdesel_device::{Backend, Device};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two tight clusters; Scott's rule (global σ) over-smooths badly.
    fn clustered_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n * 2);
        for i in 0..n {
            let center = if i % 2 == 0 { 0.0 } else { 100.0 };
            out.push(center + rng.gen_range(-0.5..0.5));
            out.push(center + rng.gen_range(-0.5..0.5));
        }
        out
    }

    fn training_queries(sample: &[f64], estimator_sample: &[f64]) -> Vec<LabelledQuery> {
        // Queries around sampled points with the exact selectivity computed
        // over `sample` (here the sample doubles as the "database").
        let dims = 2;
        let n = sample.len() / dims;
        let mut queries = Vec::new();
        let mut k = 0;
        while queries.len() < 40 {
            let p = &estimator_sample[(k % (estimator_sample.len() / dims)) * dims..][..dims];
            let region = Rect::centered(p, &[1.0, 1.0]);
            let count = sample
                .chunks_exact(dims)
                .filter(|r| region.contains(r))
                .count();
            queries.push(LabelledQuery::new(region, count as f64 / n as f64));
            k += 1;
        }
        queries
    }

    #[test]
    fn objective_gradient_matches_finite_differences() {
        let sample = clustered_sample(64, 1);
        let queries = training_queries(&sample, &sample);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        for log_space in [false, true] {
            let obj =
                WorkloadObjective::new(&estimator, &queries, LossFunction::Quadratic, log_space);
            let x = if log_space {
                vec![0.5f64.ln(), 2.0f64.ln()]
            } else {
                vec![0.5, 2.0]
            };
            let mut grad = vec![0.0; 2];
            obj.eval(&x, &mut grad);
            for i in 0..2 {
                let eps = 1e-6;
                let mut xp = x.clone();
                xp[i] += eps;
                let mut xm = x.clone();
                xm[i] -= eps;
                let mut tmp = vec![0.0; 2];
                let fd = (obj.eval(&xp, &mut tmp) - obj.eval(&xm, &mut tmp)) / (2.0 * eps);
                assert!(
                    (fd - grad[i]).abs() < 1e-6 * grad[i].abs().max(1.0),
                    "log={log_space} dim {i}: fd {fd} vs {}",
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn optimization_beats_scott_on_clustered_data() {
        let sample = clustered_sample(128, 2);
        let queries = training_queries(&sample, &sample);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let scott = estimator.bandwidth().to_vec();
        let mut rng = StdRng::seed_from_u64(3);
        let result = optimize_bandwidth(&estimator, &queries, &BatchConfig::default(), &mut rng);

        // Mean training loss of Scott vs optimized.
        let mean_loss = |h: &[f64]| {
            queries
                .iter()
                .map(|q| {
                    let est =
                        KdeEstimator::estimate_host(&sample, 2, h, KernelFn::Gaussian, &q.region);
                    LossFunction::Quadratic.value(est, q.selectivity)
                })
                .sum::<f64>()
                / queries.len() as f64
        };
        let scott_loss = mean_loss(&scott);
        let opt_loss = mean_loss(&result.bandwidth);
        assert!(
            opt_loss < scott_loss * 0.5,
            "optimized {opt_loss} vs scott {scott_loss}"
        );
        assert!((result.training_loss - opt_loss).abs() < 1e-9);
        // On two tight clusters the optimal bandwidth is far below the
        // global-σ Scott value (σ ≈ 50 here).
        assert!(result.bandwidth[0] < scott[0] * 0.2);
    }

    #[test]
    fn linear_space_also_optimizes() {
        let sample = clustered_sample(64, 4);
        let queries = training_queries(&sample, &sample);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = BatchConfig {
            log_space: false,
            ..Default::default()
        };
        let result = optimize_bandwidth(&estimator, &queries, &cfg, &mut rng);
        assert!(result.bandwidth.iter().all(|&h| h > 0.0));
        assert!(result.training_loss.is_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let sample = clustered_sample(64, 6);
        let queries = training_queries(&sample, &sample);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let r1 = optimize_bandwidth(
            &estimator,
            &queries,
            &BatchConfig::default(),
            &mut StdRng::seed_from_u64(7),
        );
        let r2 = optimize_bandwidth(
            &estimator,
            &queries,
            &BatchConfig::default(),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(r1.bandwidth, r2.bandwidth);
    }

    #[test]
    fn objective_evaluation_is_one_fused_launch_per_iteration() {
        // ISSUE acceptance: one objective+gradient evaluation performs O(1)
        // kernel launches instead of O(|workload|).
        let sample = clustered_sample(64, 9);
        let queries = training_queries(&sample, &sample);
        assert!(queries.len() >= 40);
        let estimator =
            KdeEstimator::new(Device::new(Backend::SimGpu), &sample, 2, KernelFn::Gaussian);
        let obj = WorkloadObjective::new(&estimator, &queries, LossFunction::Quadratic, true);
        let before = estimator.device().stats();
        let mut grad = vec![0.0; 2];
        let value = obj.eval(&[0.4f64.ln(), 0.4f64.ln()], &mut grad);
        assert!(value.is_finite());
        let after = estimator.device().stats();
        // One candidate-bandwidth upload, one fused batched kernel, one
        // download of the per-query sums — independent of |workload|.
        assert_eq!(after.kernels - before.kernels, 1);
        assert_eq!(after.uploads - before.uploads, 1);
        assert_eq!(after.downloads - before.downloads, 1);
    }

    #[test]
    #[should_panic(expected = "empty training workload")]
    fn empty_workload_rejected() {
        let sample = clustered_sample(16, 8);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let mut rng = StdRng::seed_from_u64(0);
        optimize_bandwidth(&estimator, &[], &BatchConfig::default(), &mut rng);
    }
}
