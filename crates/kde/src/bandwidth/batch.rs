//! Batch bandwidth optimization over query feedback (paper §3.3-3.4).
//!
//! Solves optimization problem (5): minimize the mean loss over a training
//! workload of labelled queries, subject to positive bandwidths. Following
//! §3.4 and §5.3, a coarse MLSL-style global phase is followed by projected
//! L-BFGS refinement; following Appendix D, the search runs in log-space by
//! default (which also absorbs the positivity constraint). Scott's-rule
//! bandwidth is always included as a deterministic starting point, so the
//! optimizer never does worse than the heuristic on the training set.

use crate::estimator::KdeEstimator;
use crate::kernel::KernelFn;
use crate::loss::LossFunction;
use kdesel_solver::{multistart, Bounds, LbfgsConfig, MultistartConfig, Objective};
use kdesel_types::LabelledQuery;
use rand::Rng;

/// Batch-optimizer configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Loss to minimize (problem 5's `L`).
    pub loss: LossFunction,
    /// Optimize `ln h` instead of `h` (Appendix D; the paper found this
    /// better in 68% of experiments).
    pub log_space: bool,
    /// Log-space search half-width around the Scott initialization: the
    /// box is `ln h⁰ ± search_span`.
    pub search_span: f64,
    /// Global-phase configuration.
    pub multistart: MultistartConfig,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            loss: LossFunction::Quadratic,
            log_space: true,
            search_span: (200.0f64).ln(),
            multistart: MultistartConfig {
                rounds: 3,
                samples_per_round: 12,
                local: LbfgsConfig {
                    max_iterations: 80,
                    gradient_tolerance: 1e-10,
                    value_tolerance: 1e-12,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }
}

/// Result of a batch optimization.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The optimized bandwidth (linear scale, strictly positive).
    pub bandwidth: Vec<f64>,
    /// Mean training loss at the optimum.
    pub training_loss: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
}

/// The workload objective of problem (5) over a host-resident sample.
struct BandwidthObjective<'a> {
    sample: &'a [f64],
    dims: usize,
    kernel: KernelFn,
    queries: &'a [LabelledQuery],
    loss: LossFunction,
    log_space: bool,
}

/// Fused per-point contribution value + gradient: returns `p̂⁽ʲ⁾(Ω)` and
/// writes `∂p̂⁽ʲ⁾/∂hᵢ` into `grad`. Zero-factor aware so the common "point
/// far outside the query" case costs O(d).
fn point_value_and_grad(
    kernel: KernelFn,
    point: &[f64],
    lo: &[f64],
    hi: &[f64],
    h: &[f64],
    factors: &mut [f64],
    grad: &mut [f64],
) -> f64 {
    let d = point.len();
    let mut prod = 1.0;
    let mut zero_count = 0;
    let mut zero_at = usize::MAX;
    for j in 0..d {
        let f = kernel.range_factor(point[j], lo[j], hi[j], h[j]);
        factors[j] = f;
        if f == 0.0 {
            zero_count += 1;
            zero_at = j;
            if zero_count > 1 {
                break;
            }
        } else {
            prod *= f;
        }
    }
    match zero_count {
        0 => {
            for i in 0..d {
                grad[i] = prod / factors[i] * kernel.range_factor_dh(point[i], lo[i], hi[i], h[i]);
            }
            prod
        }
        1 => {
            // Only the zero dimension's derivative survives: ∂/∂h_z may be
            // nonzero while the contribution itself is zero.
            for g in grad.iter_mut() {
                *g = 0.0;
            }
            grad[zero_at] =
                prod * kernel.range_factor_dh(point[zero_at], lo[zero_at], hi[zero_at], h[zero_at]);
            0.0
        }
        _ => {
            for g in grad.iter_mut() {
                *g = 0.0;
            }
            0.0
        }
    }
}

impl BandwidthObjective<'_> {
    /// Mean loss and its gradient with respect to the *linear* bandwidth.
    fn eval_linear(&self, h: &[f64], grad_out: &mut [f64]) -> f64 {
        let d = self.dims;
        let s = self.sample.len() / d;
        let q = self.queries.len() as f64;
        let (total_loss, total_grad) = kdesel_par::par_map_combine(
            self.queries.len(),
            || (0.0, vec![0.0; d]),
            |qi| {
                let query = &self.queries[qi];
                let lo = query.region.lo();
                let hi = query.region.hi();
                let mut factors = vec![0.0; d];
                let mut pgrad = vec![0.0; d];
                let mut sum = 0.0;
                let mut gsum = vec![0.0; d];
                for point in self.sample.chunks_exact(d) {
                    sum += point_value_and_grad(
                        self.kernel,
                        point,
                        lo,
                        hi,
                        h,
                        &mut factors,
                        &mut pgrad,
                    );
                    for (gs, &g) in gsum.iter_mut().zip(&pgrad) {
                        *gs += g;
                    }
                }
                let estimate = (sum / s as f64).clamp(0.0, 1.0);
                let lvalue = self.loss.value(estimate, query.selectivity);
                let lscale = self.loss.dvalue_destimate(estimate, query.selectivity) / s as f64;
                for g in gsum.iter_mut() {
                    *g *= lscale;
                }
                (lvalue, gsum)
            },
            |(la, mut ga), (lb, gb)| {
                for (a, b) in ga.iter_mut().zip(&gb) {
                    *a += b;
                }
                (la + lb, ga)
            },
        );
        for (o, g) in grad_out.iter_mut().zip(&total_grad) {
            *o = g / q;
        }
        total_loss / q
    }
}

impl Objective for BandwidthObjective<'_> {
    fn dims(&self) -> usize {
        self.dims
    }

    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        if self.log_space {
            let h: Vec<f64> = x.iter().map(|&v| v.exp()).collect();
            let value = self.eval_linear(&h, grad);
            // Chain rule (Appendix D, eq. 18): ∂L/∂(ln h) = ∂L/∂h · h.
            for (g, &hi) in grad.iter_mut().zip(&h) {
                *g *= hi;
            }
            value
        } else {
            self.eval_linear(x, grad)
        }
    }
}

/// Solves problem (5) for `estimator`'s sample, returning the optimized
/// bandwidth. The estimator itself is not modified; callers apply the
/// result with [`KdeEstimator::set_bandwidth`].
///
/// # Panics
/// Panics on an empty training workload or query dimensionality mismatch.
pub fn optimize_bandwidth<R: Rng + ?Sized>(
    estimator: &KdeEstimator,
    queries: &[LabelledQuery],
    config: &BatchConfig,
    rng: &mut R,
) -> BatchResult {
    assert!(!queries.is_empty(), "empty training workload");
    let dims = estimator.dims();
    for q in queries {
        assert_eq!(q.region.dims(), dims, "query dimensionality mismatch");
    }
    let objective = BandwidthObjective {
        sample: estimator.host_sample(),
        dims,
        kernel: estimator.kernel(),
        queries,
        loss: config.loss,
        log_space: config.log_space,
    };
    let initial = estimator.bandwidth().to_vec();

    let (bounds, start) = if config.log_space {
        let log0: Vec<f64> = initial.iter().map(|&h| h.ln()).collect();
        let lo: Vec<f64> = log0.iter().map(|&v| v - config.search_span).collect();
        let hi: Vec<f64> = log0.iter().map(|&v| v + config.search_span).collect();
        (Bounds::new(lo, hi), log0)
    } else {
        let lo: Vec<f64> = initial
            .iter()
            .map(|&h| h * (-config.search_span).exp())
            .collect();
        let hi: Vec<f64> = initial
            .iter()
            .map(|&h| h * config.search_span.exp())
            .collect();
        (Bounds::new(lo, hi), initial.clone())
    };

    let result = multistart(&objective, &bounds, &[start], &config.multistart, rng);
    let bandwidth: Vec<f64> = if config.log_space {
        result.x.iter().map(|&v| v.exp()).collect()
    } else {
        // Linear mode can return boundary values; enforce positivity.
        result.x.iter().map(|&v| v.max(1e-12)).collect()
    };
    BatchResult {
        bandwidth,
        training_loss: result.f,
        evaluations: result.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::{Backend, Device};
    use kdesel_types::Rect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two tight clusters; Scott's rule (global σ) over-smooths badly.
    fn clustered_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n * 2);
        for i in 0..n {
            let center = if i % 2 == 0 { 0.0 } else { 100.0 };
            out.push(center + rng.gen_range(-0.5..0.5));
            out.push(center + rng.gen_range(-0.5..0.5));
        }
        out
    }

    fn training_queries(sample: &[f64], estimator_sample: &[f64]) -> Vec<LabelledQuery> {
        // Queries around sampled points with the exact selectivity computed
        // over `sample` (here the sample doubles as the "database").
        let dims = 2;
        let n = sample.len() / dims;
        let mut queries = Vec::new();
        let mut k = 0;
        while queries.len() < 40 {
            let p = &estimator_sample[(k % (estimator_sample.len() / dims)) * dims..][..dims];
            let region = Rect::centered(p, &[1.0, 1.0]);
            let count = sample
                .chunks_exact(dims)
                .filter(|r| region.contains(r))
                .count();
            queries.push(LabelledQuery::new(region, count as f64 / n as f64));
            k += 1;
        }
        queries
    }

    #[test]
    fn objective_gradient_matches_finite_differences() {
        let sample = clustered_sample(64, 1);
        let queries = training_queries(&sample, &sample);
        for log_space in [false, true] {
            let obj = BandwidthObjective {
                sample: &sample,
                dims: 2,
                kernel: KernelFn::Gaussian,
                queries: &queries,
                loss: LossFunction::Quadratic,
                log_space,
            };
            let x = if log_space {
                vec![0.5f64.ln(), 2.0f64.ln()]
            } else {
                vec![0.5, 2.0]
            };
            let mut grad = vec![0.0; 2];
            obj.eval(&x, &mut grad);
            for i in 0..2 {
                let eps = 1e-6;
                let mut xp = x.clone();
                xp[i] += eps;
                let mut xm = x.clone();
                xm[i] -= eps;
                let mut tmp = vec![0.0; 2];
                let fd = (obj.eval(&xp, &mut tmp) - obj.eval(&xm, &mut tmp)) / (2.0 * eps);
                assert!(
                    (fd - grad[i]).abs() < 1e-6 * grad[i].abs().max(1.0),
                    "log={log_space} dim {i}: fd {fd} vs {}",
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn optimization_beats_scott_on_clustered_data() {
        let sample = clustered_sample(128, 2);
        let queries = training_queries(&sample, &sample);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let scott = estimator.bandwidth().to_vec();
        let mut rng = StdRng::seed_from_u64(3);
        let result = optimize_bandwidth(&estimator, &queries, &BatchConfig::default(), &mut rng);

        // Mean training loss of Scott vs optimized.
        let mean_loss = |h: &[f64]| {
            queries
                .iter()
                .map(|q| {
                    let est =
                        KdeEstimator::estimate_host(&sample, 2, h, KernelFn::Gaussian, &q.region);
                    LossFunction::Quadratic.value(est, q.selectivity)
                })
                .sum::<f64>()
                / queries.len() as f64
        };
        let scott_loss = mean_loss(&scott);
        let opt_loss = mean_loss(&result.bandwidth);
        assert!(
            opt_loss < scott_loss * 0.5,
            "optimized {opt_loss} vs scott {scott_loss}"
        );
        assert!((result.training_loss - opt_loss).abs() < 1e-9);
        // On two tight clusters the optimal bandwidth is far below the
        // global-σ Scott value (σ ≈ 50 here).
        assert!(result.bandwidth[0] < scott[0] * 0.2);
    }

    #[test]
    fn linear_space_also_optimizes() {
        let sample = clustered_sample(64, 4);
        let queries = training_queries(&sample, &sample);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = BatchConfig {
            log_space: false,
            ..Default::default()
        };
        let result = optimize_bandwidth(&estimator, &queries, &cfg, &mut rng);
        assert!(result.bandwidth.iter().all(|&h| h > 0.0));
        assert!(result.training_loss.is_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let sample = clustered_sample(64, 6);
        let queries = training_queries(&sample, &sample);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let r1 = optimize_bandwidth(
            &estimator,
            &queries,
            &BatchConfig::default(),
            &mut StdRng::seed_from_u64(7),
        );
        let r2 = optimize_bandwidth(
            &estimator,
            &queries,
            &BatchConfig::default(),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(r1.bandwidth, r2.bandwidth);
    }

    #[test]
    fn fused_point_grad_matches_kernel_gradient() {
        let kernel = KernelFn::Gaussian;
        let point = [0.2, 0.8, -0.4];
        let lo = [0.0, 0.5, -1.0];
        let hi = [0.5, 1.5, 0.0];
        let h = [0.3, 0.7, 1.1];
        let mut factors = [0.0; 3];
        let mut fused = [0.0; 3];
        let v = point_value_and_grad(kernel, &point, &lo, &hi, &h, &mut factors, &mut fused);
        let mut reference = [0.0; 3];
        kernel.contribution_gradient(&point, &lo, &hi, &h, &mut reference);
        let vref = kernel.contribution(&point, &lo, &hi, &h);
        assert!((v - vref).abs() < 1e-15);
        for i in 0..3 {
            assert!((fused[i] - reference[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_point_grad_handles_zero_factors() {
        // Epanechnikov produces exact zeros outside its support.
        let kernel = KernelFn::Epanechnikov;
        let point = [10.0, 0.0];
        let lo = [0.0, -1.0];
        let hi = [1.0, 1.0];
        let h = [0.5, 1.0];
        let mut factors = [0.0; 2];
        let mut fused = [0.0; 2];
        let v = point_value_and_grad(kernel, &point, &lo, &hi, &h, &mut factors, &mut fused);
        assert_eq!(v, 0.0);
        let mut reference = [0.0; 2];
        kernel.contribution_gradient(&point, &lo, &hi, &h, &mut reference);
        assert_eq!(fused, reference);
    }

    #[test]
    #[should_panic(expected = "empty training workload")]
    fn empty_workload_rejected() {
        let sample = clustered_sample(16, 8);
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let mut rng = StdRng::seed_from_u64(0);
        optimize_bandwidth(&estimator, &[], &BatchConfig::default(), &mut rng);
    }
}
