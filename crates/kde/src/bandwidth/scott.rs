//! Scott's rule (paper eq. 3).
//!
//! `ĥᵢ = s^(−1/(d+4)) · σᵢ`, the closed-form bandwidth that is optimal when
//! the data is normal. The paper initializes every model with it (§5.2) and
//! uses it as the *Heuristic* baseline; §3.2 notes that on real data it
//! "often leads to overly smoothed estimators".

use kdesel_math::stats::column_std_devs;

/// Computes Scott's-rule bandwidths for a row-major sample.
///
/// Degenerate dimensions (zero variance) receive a small positive fallback
/// (10⁻³ of the largest per-dimension std, or 10⁻³ absolute when all are
/// degenerate) so the positivity constraint of optimization problem (5)
/// holds from the start.
///
/// # Panics
/// Panics on an empty or ragged sample.
pub fn scott_bandwidth(sample: &[f64], dims: usize) -> Vec<f64> {
    assert!(dims > 0);
    assert!(!sample.is_empty(), "empty sample");
    assert_eq!(sample.len() % dims, 0, "ragged sample");
    let s = (sample.len() / dims) as f64;
    let factor = s.powf(-1.0 / (dims as f64 + 4.0));
    let std_devs = column_std_devs(sample, dims);
    let max_sd = std_devs.iter().fold(0.0f64, |m, &v| m.max(v));
    let fallback = if max_sd > 0.0 { max_sd * 1e-3 } else { 1e-3 };
    std_devs
        .iter()
        .map(|&sd| {
            let sd = if sd > 0.0 { sd } else { fallback };
            factor * sd
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn formula_matches_hand_computation() {
        // 4 points in 1D: {0,1,2,3}; σ = √1.25, s=4, d=1 → h = 4^(-1/5)·σ.
        let h = scott_bandwidth(&[0.0, 1.0, 2.0, 3.0], 1);
        let want = 4f64.powf(-0.2) * 1.25f64.sqrt();
        assert!((h[0] - want).abs() < 1e-12);
    }

    #[test]
    fn scales_per_dimension_std() {
        // First dim spread 10x wider than second.
        let mut rng = StdRng::seed_from_u64(1);
        let mut sample = Vec::new();
        for _ in 0..500 {
            sample.push(rng.gen_range(0.0..10.0));
            sample.push(rng.gen_range(0.0..1.0));
        }
        let h = scott_bandwidth(&sample, 2);
        assert!(
            (h[0] / h[1] - 10.0).abs() < 1.5,
            "ratio {} should be ≈10",
            h[0] / h[1]
        );
    }

    #[test]
    fn shrinks_with_sample_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let big: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let h_small = scott_bandwidth(&big[..100], 1);
        let h_big = scott_bandwidth(&big, 1);
        assert!(h_big[0] < h_small[0]);
        // The rate is s^(-1/5) for d=1: 100x more data → ~2.5x smaller.
        let expected_ratio = (100f64 / 10_000.0).powf(-0.2);
        let ratio = h_small[0] / h_big[0];
        // Std estimates differ slightly between the subsample and the full
        // sample, so allow a loose band around the theoretical rate.
        assert!(
            (ratio / expected_ratio - 1.0).abs() < 0.2,
            "ratio {ratio}, expected ≈{expected_ratio}"
        );
    }

    #[test]
    fn degenerate_dimension_gets_positive_fallback() {
        let sample = [1.0, 5.0, 1.0, 6.0, 1.0, 7.0]; // dim 0 constant
        let h = scott_bandwidth(&sample, 2);
        assert!(h[0] > 0.0);
        assert!(h[1] > h[0]);
    }

    #[test]
    fn all_degenerate_still_positive() {
        let sample = [2.0, 2.0, 2.0, 2.0];
        let h = scott_bandwidth(&sample, 2);
        assert!(h.iter().all(|&v| v > 0.0));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        scott_bandwidth(&[], 3);
    }
}
