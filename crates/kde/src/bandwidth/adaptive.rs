//! Adaptive bandwidth maintenance (paper §4.1, Listing 1).
//!
//! After every executed query the estimator receives feedback, computes the
//! loss gradient with respect to the bandwidth (eq. 14 with eq. 17), and
//! accumulates it in a mini-batch. Every `N` queries the averaged gradient
//! drives one RMSprop step. With logarithmic updates (Appendix D) the step
//! is taken in `ln h` — the gradient is scaled by `h` (eq. 18) and the
//! positivity safeguard is unnecessary; in linear mode updates toward zero
//! are clamped to half the current bandwidth, exactly as §4.1 prescribes.

use crate::estimator::KdeEstimator;
use crate::loss::LossFunction;
use kdesel_solver::online::{GradientBatch, RmsProp, RmsPropConfig};
use kdesel_types::QueryFeedback;

/// Adaptive-tuner configuration. Defaults are the paper's: mini-batch
/// `N = 10`, smoothing `α = 0.9`, rates in `[10⁻⁶, 50]`, `×1.2 / ×0.5`
/// adjustment, logarithmic updates on.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Loss whose gradient drives the updates.
    pub loss: LossFunction,
    /// Mini-batch size `N`.
    pub mini_batch: usize,
    /// Update `ln h` instead of `h` (Appendix D).
    pub log_updates: bool,
    /// RMSprop parameters.
    pub rmsprop: RmsPropConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            loss: LossFunction::Quadratic,
            mini_batch: 10,
            log_updates: true,
            rmsprop: RmsPropConfig {
                // The bandwidth lives on a log scale spanning a few units;
                // an initial rate of 0.1 reaches any point of the search
                // box within tens of mini-batches while staying stable.
                rate_init: 0.1,
                ..Default::default()
            },
        }
    }
}

/// Online bandwidth tuner: owns the RMSprop state and mini-batch buffer.
#[derive(Debug)]
pub struct AdaptiveTuner {
    config: AdaptiveConfig,
    rmsprop: RmsProp,
    batch: GradientBatch,
    updates_applied: u64,
}

impl AdaptiveTuner {
    /// Creates a tuner for a `dims`-dimensional model.
    pub fn new(dims: usize, config: AdaptiveConfig) -> Self {
        assert!(config.mini_batch > 0);
        Self {
            rmsprop: RmsProp::new(dims, config.rmsprop.clone()),
            batch: GradientBatch::new(dims, config.mini_batch),
            config,
            updates_applied: 0,
        }
    }

    /// Number of RMSprop updates applied so far (≈ queries / N).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Consumes feedback for one executed query, updating the estimator's
    /// bandwidth when a mini-batch completes (Listing 1, lines 9-17).
    ///
    /// Returns `true` when a bandwidth update was applied.
    pub fn observe(&mut self, estimator: &mut KdeEstimator, feedback: &QueryFeedback) -> bool {
        // Gradient of the loss wrt the (linear) bandwidth, eq. 14:
        // `∂L/∂h = ∂L/∂p̂ · ∂p̂/∂h`. When the estimate came from the fused
        // `estimate_with_gradient` sweep (§5.5), `∂p̂/∂h` is already cached
        // and only the scalar chain factor remains — no second sample
        // sweep. The fallback recomputes it on the device.
        let mut grad = match estimator.cached_gradient(&feedback.region) {
            Some(cached) => {
                let scale = self
                    .config
                    .loss
                    .dvalue_destimate(feedback.estimate, feedback.actual);
                cached.iter().map(|g| g * scale).collect()
            }
            None => estimator.loss_gradient(
                &feedback.region,
                feedback.estimate,
                feedback.actual,
                self.config.loss,
            ),
        };
        if self.config.log_updates {
            // Eq. 18: ∂L/∂(ln h) = ∂L/∂h · h.
            for (g, &h) in grad.iter_mut().zip(estimator.bandwidth()) {
                *g *= h;
            }
        }
        let Some(avg) = self.batch.push(&grad) else {
            return false;
        };
        let delta = self.rmsprop.step(&avg);
        let bandwidth = estimator.bandwidth().to_vec();
        let updated: Vec<f64> = if self.config.log_updates {
            bandwidth
                .iter()
                .zip(&delta)
                .map(|(&h, &d)| {
                    // Clamp the exponent so a single wild mini-batch cannot
                    // overflow/underflow the bandwidth.
                    (h.ln() + d.clamp(-30.0, 30.0)).exp().max(f64::MIN_POSITIVE)
                })
                .collect()
        } else {
            bandwidth
                .iter()
                .zip(&delta)
                .map(|(&h, &d)| {
                    // §4.1: restrict updates towards zero to at most half
                    // the current bandwidth's value.
                    (h + d).max(0.5 * h)
                })
                .collect()
        };
        estimator.set_bandwidth(updated);
        self.updates_applied += 1;
        // One structured event per RMSprop step: the bandwidth trajectory
        // (paper Figure 8) and the driving gradient, reconstructable from
        // a trace alone. Field computation is gated on a live builder.
        let ev = kdesel_telemetry::event("bandwidth.step");
        if ev.live() {
            let grad_norm = avg.iter().map(|g| g * g).sum::<f64>().sqrt();
            ev.u64("step", self.updates_applied)
                .f64("grad_norm", grad_norm)
                .f64_slice("h", estimator.bandwidth())
                .emit();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFn;
    use kdesel_device::{Backend, Device};
    use kdesel_types::Rect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two tight clusters at 0 and 100 in each dimension.
    fn clustered_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n * 2);
        for i in 0..n {
            let c = if i % 2 == 0 { 0.0 } else { 100.0 };
            out.push(c + rng.gen_range(-0.5..0.5));
            out.push(c + rng.gen_range(-0.5..0.5));
        }
        out
    }

    /// Drives the tuner with feedback queries centered on cluster points.
    fn drive(
        estimator: &mut KdeEstimator,
        tuner: &mut AdaptiveTuner,
        sample: &[f64],
        queries: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = sample.len() / 2;
        let mut last_errors = Vec::new();
        for k in 0..queries {
            let idx = rng.gen_range(0..n);
            let center = [sample[idx * 2], sample[idx * 2 + 1]];
            let region = Rect::centered(&center, &[1.0, 1.0]);
            let actual = sample
                .chunks_exact(2)
                .filter(|r| region.contains(r))
                .count() as f64
                / n as f64;
            let estimate = estimator.estimate(&region);
            if k >= queries - 50 {
                last_errors.push((estimate - actual).abs());
            }
            tuner.observe(
                estimator,
                &QueryFeedback {
                    region,
                    estimate,
                    actual,
                    cardinality: 0,
                },
            );
        }
        last_errors.iter().sum::<f64>() / last_errors.len() as f64
    }

    #[test]
    fn learning_reduces_estimation_error() {
        let sample = clustered_sample(128, 1);
        let mut estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        // Error of the untouched Scott model over the same query stream.
        let mut static_est =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let mut no_tuner = AdaptiveTuner::new(2, AdaptiveConfig::default());
        // Zero-learning-rate tuner keeps the bandwidth fixed.
        no_tuner.rmsprop = RmsProp::new(
            2,
            RmsPropConfig {
                rate_init: 0.0,
                rate_min: 0.0,
                rate_max: 0.0,
                ..Default::default()
            },
        );
        let static_err = drive(&mut static_est, &mut no_tuner, &sample, 400, 9);

        let mut tuner = AdaptiveTuner::new(2, AdaptiveConfig::default());
        let adaptive_err = drive(&mut estimator, &mut tuner, &sample, 400, 9);
        assert!(
            adaptive_err < static_err * 0.7,
            "adaptive {adaptive_err} vs static {static_err}"
        );
        assert!(tuner.updates_applied() >= 39);
        // Scott's bandwidth on this data is ≈ 50·s^(-1/6); the clusters need
        // something around their width (≈1), so learning must have shrunk it.
        assert!(estimator.bandwidth()[0] < 10.0);
    }

    #[test]
    fn updates_only_on_full_mini_batches() {
        let sample = clustered_sample(32, 2);
        let mut estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let mut tuner = AdaptiveTuner::new(2, AdaptiveConfig::default());
        let bw0 = estimator.bandwidth().to_vec();
        let region = Rect::cube(2, -1.0, 1.0);
        for k in 0..9 {
            let estimate = estimator.estimate(&region);
            let applied = tuner.observe(
                &mut estimator,
                &QueryFeedback {
                    region: region.clone(),
                    estimate,
                    actual: 0.5,
                    cardinality: 0,
                },
            );
            assert!(!applied, "applied early at query {k}");
            assert_eq!(estimator.bandwidth(), bw0.as_slice());
        }
        let estimate = estimator.estimate(&region);
        let applied = tuner.observe(
            &mut estimator,
            &QueryFeedback {
                region,
                estimate,
                actual: 0.5,
                cardinality: 0,
            },
        );
        assert!(applied, "10th query must trigger the update");
        assert_ne!(estimator.bandwidth(), bw0.as_slice());
    }

    #[test]
    fn bandwidth_stays_positive_under_adversarial_feedback() {
        let sample = clustered_sample(32, 3);
        for log_updates in [true, false] {
            let mut estimator =
                KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
            let mut tuner = AdaptiveTuner::new(
                2,
                AdaptiveConfig {
                    log_updates,
                    ..Default::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..300 {
                let c = [rng.gen_range(-1.0..101.0), rng.gen_range(-1.0..101.0)];
                let region = Rect::centered(&c, &[0.5, 0.5]);
                let estimate = estimator.estimate(&region);
                // Alternate wildly wrong feedback.
                let actual = if rng.gen_bool(0.5) { 0.0 } else { 1.0 };
                tuner.observe(
                    &mut estimator,
                    &QueryFeedback {
                        region,
                        estimate,
                        actual,
                        cardinality: 0,
                    },
                );
                assert!(
                    estimator
                        .bandwidth()
                        .iter()
                        .all(|&h| h > 0.0 && h.is_finite()),
                    "log={log_updates}: bandwidth {:?}",
                    estimator.bandwidth()
                );
            }
        }
    }

    #[test]
    fn linear_mode_halving_guard() {
        // A huge negative delta may at most halve the bandwidth per update.
        let sample = clustered_sample(32, 5);
        let mut estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let mut tuner = AdaptiveTuner::new(
            2,
            AdaptiveConfig {
                log_updates: false,
                mini_batch: 1,
                rmsprop: RmsPropConfig {
                    rate_init: 50.0,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let bw0 = estimator.bandwidth().to_vec();
        let region = Rect::cube(2, -200.0, 300.0); // everything → estimate 1
        let estimate = estimator.estimate(&region);
        tuner.observe(
            &mut estimator,
            &QueryFeedback {
                region,
                estimate,
                actual: 0.0, // extreme error pushes bandwidth down hard
                cardinality: 0,
            },
        );
        for (h, h0) in estimator.bandwidth().iter().zip(&bw0) {
            assert!(*h >= 0.5 * h0 - 1e-12, "update exceeded halving guard");
        }
    }
}
