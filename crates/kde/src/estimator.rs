//! The device-resident KDE model.
//!
//! Mirrors the paper's implementation structure (Figure 3): the sample
//! lives in a device buffer; an estimate transfers the query bounds to the
//! device (1), computes per-point contributions in parallel (2), reduces
//! them (3), and returns the scalar (4). The contribution buffer is
//! *retained* until the next estimate so the Karma maintenance can reuse it
//! (§5.4: "we do not discard the temporary buffer that stores the
//! individual contributions until after the query returns").

use crate::bandwidth::scott::scott_bandwidth;
use crate::kernel::KernelFn;
use crate::loss::LossFunction;
use crate::sweep;
use kdesel_device::{ColsView, Device, DeviceBuffer, DeviceGroup, PartitionedSoa, SoaBuffer};
use kdesel_types::Rect;

/// Where the model's sample lives and which engine sweeps it: a single
/// device, or a multi-device group draining a work-stealing stripe-block
/// queue. Group estimates are bitwise-identical to the single-device
/// path (the group's block-ordered combine contract), so everything
/// above this enum — tuners, Karma, serving — is backing-agnostic.
#[derive(Debug)]
enum Backing {
    Single {
        device: Device,
        sample: SoaBuffer,
    },
    Group {
        group: DeviceGroup,
        sample: PartitionedSoa,
    },
}

impl Backing {
    /// The device that fronts the host: the device itself, or the
    /// group's primary (member 0) — which uploads query bounds, reads
    /// results back, and hosts gathered retained contributions.
    fn front(&self) -> &Device {
        match self {
            Backing::Single { device, .. } => device,
            Backing::Group { group, .. } => group.primary(),
        }
    }

    fn group(&self) -> Option<&DeviceGroup> {
        match self {
            Backing::Single { .. } => None,
            Backing::Group { group, .. } => Some(group),
        }
    }

    fn sweep_reduce<F>(&self, flops_per_row: f64, retain: bool, f: F) -> (f64, Option<DeviceBuffer>)
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        match self {
            Backing::Single { device, sample } => {
                device.sweep_reduce(sample, flops_per_row, retain, f)
            }
            Backing::Group { group, sample } => {
                group.sweep_reduce(sample, flops_per_row, retain, f)
            }
        }
    }

    fn sweep_multi_reduce<F>(
        &self,
        out_width: usize,
        flops_per_row: f64,
        retain_first: bool,
        f: F,
    ) -> (Vec<f64>, Option<DeviceBuffer>)
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        match self {
            Backing::Single { device, sample } => {
                device.sweep_multi_reduce(sample, out_width, flops_per_row, retain_first, f)
            }
            Backing::Group { group, sample } => {
                group.sweep_multi_reduce(sample, out_width, flops_per_row, retain_first, f)
            }
        }
    }

    fn sweep_batch<F>(&self, batch: usize, flops_per_row: f64, f: F) -> Vec<f64>
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        match self {
            Backing::Single { device, sample } => {
                device.sweep_batch(sample, batch, flops_per_row, f)
            }
            Backing::Group { group, sample } => group.sweep_batch(sample, batch, flops_per_row, f),
        }
    }

    /// The unfused gradient's column sums. The single-device reference
    /// keeps its historical two-launch shape (multi-output sweep +
    /// standalone column reduction); the group fuses them into one
    /// stripe-block sweep whose block-ordered combine reproduces the
    /// same `pairwise_sum_columns` tree bit-for-bit.
    fn gradient_column_sums<F>(&self, width: usize, flops_per_row: f64, f: F) -> Vec<f64>
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        match self {
            Backing::Single { device, sample } => {
                let partials = device.sweep_multi(sample, width, flops_per_row, f);
                device.reduce_sum_columns(&partials, width)
            }
            Backing::Group { group, sample } => {
                group
                    .sweep_multi_reduce(sample, width, flops_per_row, false, f)
                    .0
            }
        }
    }

    /// Overwrites one sample row on whichever device owns it.
    fn write_row(&mut self, row: usize, values: &[f64]) {
        match self {
            Backing::Single { device, sample } => device.write_row_soa(sample, row, values),
            Backing::Group { group, sample } => group.write_row_soa(sample, row, values),
        }
    }
}

/// A kernel density model over a fixed-size data sample.
///
/// The device-resident sample uses the columnar (SoA) layout — one
/// contiguous stripe per dimension — so the estimate/gradient sweeps in
/// [`crate::sweep`] stream unit-stride memory and vectorize; results are
/// bit-identical to the row-major scalar path. The sample can live on
/// one [`Device`] or be sharded across a [`DeviceGroup`]
/// ([`KdeEstimator::new_on_group`]) with no observable difference beyond
/// timing.
#[derive(Debug)]
pub struct KdeEstimator {
    backing: Backing,
    /// Host mirror of the sample. The host produced the sample in the first
    /// place (ANALYZE), so the mirror costs no transfers; the batch/CV
    /// optimizers iterate over it without touching the device timing.
    host_sample: Vec<f64>,
    dims: usize,
    size: usize,
    kernel: KernelFn,
    bandwidth: Vec<f64>,
    /// Contributions of the most recent estimate, retained for maintenance.
    last_contributions: Option<DeviceBuffer>,
    /// Gradient produced by the most recent fused
    /// [`estimate_with_gradient`](Self::estimate_with_gradient) call,
    /// keyed by its query region; invalidated when the model changes.
    last_gradient: Option<(Rect, Vec<f64>)>,
    /// Latency histogram handle, resolved once (hot-path telemetry).
    estimate_seconds: std::sync::Arc<kdesel_telemetry::Histogram>,
}

impl KdeEstimator {
    /// Builds a model from a row-major sample, initializing the bandwidth
    /// with Scott's rule (the paper's §5.2 initialization).
    ///
    /// # Panics
    /// Panics on an empty or ragged sample.
    pub fn new(device: Device, sample: &[f64], dims: usize, kernel: KernelFn) -> Self {
        assert!(dims > 0, "zero-dimensional model");
        assert!(!sample.is_empty(), "empty sample");
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        let buffer = device.stage_rows_soa(sample, dims);
        Self::from_backing(
            Backing::Single {
                device,
                sample: buffer,
            },
            sample,
            dims,
            kernel,
        )
    }

    /// Builds a model whose sample is sharded across a [`DeviceGroup`]
    /// in stripe blocks (profile-seeded partition, work-stealing
    /// sweeps). Every estimate/gradient is bitwise-identical to the same
    /// model on a single device; only modeled/measured timing differs.
    ///
    /// # Panics
    /// Panics on an empty or ragged sample.
    pub fn new_on_group(group: DeviceGroup, sample: &[f64], dims: usize, kernel: KernelFn) -> Self {
        assert!(dims > 0, "zero-dimensional model");
        assert!(!sample.is_empty(), "empty sample");
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        let part = group.stage_partitioned_soa(sample, dims);
        Self::from_backing(
            Backing::Group {
                group,
                sample: part,
            },
            sample,
            dims,
            kernel,
        )
    }

    fn from_backing(backing: Backing, sample: &[f64], dims: usize, kernel: KernelFn) -> Self {
        let bandwidth = scott_bandwidth(sample, dims);
        Self {
            backing,
            host_sample: sample.to_vec(),
            dims,
            size: sample.len() / dims,
            kernel,
            bandwidth,
            last_contributions: None,
            last_gradient: None,
            estimate_seconds: kdesel_telemetry::registry().histogram("kde.estimate_seconds"),
        }
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Sample size `s` (the model size).
    pub fn sample_size(&self) -> usize {
        self.size
    }

    /// The kernel in use.
    pub fn kernel(&self) -> KernelFn {
        self.kernel
    }

    /// Current bandwidth vector (diagonal of `H`).
    pub fn bandwidth(&self) -> &[f64] {
        &self.bandwidth
    }

    /// Replaces the bandwidth.
    ///
    /// # Panics
    /// Panics unless every component is positive and finite (the constraint
    /// of optimization problem 5).
    pub fn set_bandwidth(&mut self, bandwidth: Vec<f64>) {
        assert_eq!(bandwidth.len(), self.dims);
        assert!(
            bandwidth.iter().all(|&h| h > 0.0 && h.is_finite()),
            "bandwidth must be positive and finite: {bandwidth:?}"
        );
        self.bandwidth = bandwidth;
        self.last_gradient = None;
    }

    /// The device that fronts this model's kernels: the single backing
    /// device, or the group's primary when the sample is sharded. Bounds
    /// uploads, result readbacks, retained contributions, and the Karma
    /// ledger all live here.
    pub fn device(&self) -> &Device {
        self.backing.front()
    }

    /// The device group backing this model, when it was built with
    /// [`KdeEstimator::new_on_group`].
    pub fn group(&self) -> Option<&DeviceGroup> {
        self.backing.group()
    }

    /// Host view of the sample (row-major).
    pub fn host_sample(&self) -> &[f64] {
        &self.host_sample
    }

    /// One sample point.
    pub fn sample_point(&self, index: usize) -> &[f64] {
        &self.host_sample[index * self.dims..(index + 1) * self.dims]
    }

    /// Estimates the selectivity of `region` (paper eq. 2 with eq. 13).
    ///
    /// Fused hot path: one launch computes the per-point contributions and
    /// tree-reduces them in place; only the query bounds go up and the
    /// scalar estimate comes down. The contribution buffer stays
    /// device-resident for later maintenance use (§5.4).
    pub fn estimate(&mut self, region: &Rect) -> f64 {
        assert_eq!(region.dims(), self.dims, "query dimensionality mismatch");
        let _span = self.estimate_seconds.span();
        // (1) Transfer the query bounds.
        let mut bounds = Vec::with_capacity(2 * self.dims);
        bounds.extend_from_slice(region.lo());
        bounds.extend_from_slice(region.hi());
        let _bounds_buf = self.backing.front().upload(&bounds);
        // Return the previous retained buffer to the pool *before* the
        // sweep acquires its replacement, so steady-state loops recycle
        // the same storage instead of missing the pool every round.
        self.last_contributions = None;
        // (2)+(3)+(4) Map, reduce, and download the scalar — one kernel.
        let kernel = self.kernel;
        let bw = &self.bandwidth;
        let lo = region.lo();
        let hi = region.hi();
        let flops = kernel.flops_per_factor() * self.dims as f64;
        let (sum, contributions) = self.backing.sweep_reduce(flops, true, |view, out| {
            sweep::contributions_into(kernel, &view, lo, hi, bw, out);
        });
        self.last_contributions = contributions;
        (sum / self.size as f64).clamp(0.0, 1.0)
    }

    /// Fused estimate + bandwidth gradient (§5.5): one launch produces
    /// both `p̂_H(Ω)` and `∂p̂_H(Ω)/∂h`, sharing the per-dimension kernel
    /// factors between the two outputs (eq. 16). Bit-identical to calling
    /// [`estimate`](Self::estimate) and
    /// [`estimator_gradient`](Self::estimator_gradient) separately, in
    /// half the sample sweeps. Retains the contribution buffer exactly as
    /// `estimate` does and caches the gradient for
    /// [`cached_gradient`](Self::cached_gradient), so a feedback-driven
    /// tuner pays no second sweep.
    pub fn estimate_with_gradient(&mut self, region: &Rect) -> (f64, Vec<f64>) {
        assert_eq!(region.dims(), self.dims, "query dimensionality mismatch");
        let _span = self.estimate_seconds.span();
        let mut bounds = Vec::with_capacity(2 * self.dims);
        bounds.extend_from_slice(region.lo());
        bounds.extend_from_slice(region.hi());
        let _bounds_buf = self.backing.front().upload(&bounds);
        // As in `estimate`: recycle the stale retained buffer first.
        self.last_contributions = None;
        let kernel = self.kernel;
        let bw = &self.bandwidth;
        let lo = region.lo();
        let hi = region.hi();
        let d = self.dims;
        let flops = kernel.flops_per_factor() * (d * 2) as f64 + (d * d) as f64;
        let (sums, contributions) =
            self.backing
                .sweep_multi_reduce(1 + d, flops, true, |view, out| {
                    sweep::fused_strided_into(kernel, &view, lo, hi, bw, out, 1 + d, 0, true);
                });
        self.last_contributions = contributions;
        let estimate = (sums[0] / self.size as f64).clamp(0.0, 1.0);
        let inv_s = 1.0 / self.size as f64;
        let grad: Vec<f64> = sums[1..].iter().map(|g| g * inv_s).collect();
        self.last_gradient = Some((region.clone(), grad.clone()));
        (estimate, grad)
    }

    /// The estimator gradient cached by the most recent
    /// [`estimate_with_gradient`](Self::estimate_with_gradient) call, if
    /// it was for the same `region` and the model has not changed since
    /// (a bandwidth update or sample-point replacement invalidates it).
    pub fn cached_gradient(&self, region: &Rect) -> Option<&[f64]> {
        match &self.last_gradient {
            Some((r, g)) if r == region => Some(g),
            _ => None,
        }
    }

    /// Estimates the selectivity of every region in one fused launch: the
    /// query bounds travel in a single upload, the sample is traversed
    /// once for all `B` queries, and one `B`-scalar download returns the
    /// sums. Each estimate is bit-identical to a separate
    /// [`estimate`](Self::estimate) call. Does not retain contributions —
    /// the batched path serves optimizers and bulk evaluation, not the
    /// per-query Karma feedback loop.
    pub fn estimate_batch(&self, regions: &[Rect]) -> Vec<f64> {
        if regions.is_empty() {
            return Vec::new();
        }
        for r in regions {
            assert_eq!(r.dims(), self.dims, "query dimensionality mismatch");
        }
        let _span = self.estimate_seconds.span();
        let _bounds_buf = self.stage_bounds(regions);
        let kernel = self.kernel;
        let bw = &self.bandwidth;
        let b = regions.len();
        let flops = kernel.flops_per_factor() * self.dims as f64 * b as f64;
        let sums = self.backing.sweep_batch(b, flops, |view, out| {
            for (q, r) in regions.iter().enumerate() {
                sweep::contributions_strided_into(kernel, &view, r.lo(), r.hi(), bw, out, b, q);
            }
        });
        sums.iter()
            .map(|sum| (sum / self.size as f64).clamp(0.0, 1.0))
            .collect()
    }

    /// Uploads a workload's query bounds in one transfer — the staging
    /// step for repeated
    /// [`estimate_batch_with_gradients_at`](Self::estimate_batch_with_gradients_at)
    /// calls, whose bounds never change across solver iterations.
    pub fn stage_bounds(&self, regions: &[Rect]) -> DeviceBuffer {
        let mut bounds = Vec::with_capacity(2 * self.dims * regions.len());
        for r in regions {
            bounds.extend_from_slice(r.lo());
            bounds.extend_from_slice(r.hi());
        }
        self.backing.front().upload(&bounds)
    }

    /// Batched objective evaluation for the bandwidth optimizers: one
    /// fused launch evaluates — at the *candidate* bandwidth `bandwidth`,
    /// not the model's current one — the estimate and its bandwidth
    /// gradient for every region, sharing each per-dimension kernel
    /// factor between the two outputs (eq. 16). Only the candidate
    /// bandwidth crosses PCIe per call (stage the bounds once with
    /// [`stage_bounds`](Self::stage_bounds)), and one `B·(1+d)`-scalar
    /// download returns the reduced sums — so a solver iteration costs
    /// O(1) kernel launches regardless of the workload size. Each
    /// per-query result is bit-identical to what
    /// [`estimate`](Self::estimate) /
    /// [`estimator_gradient`](Self::estimator_gradient) would return with
    /// the model's bandwidth set to `bandwidth`.
    pub fn estimate_batch_with_gradients_at(
        &self,
        bandwidth: &[f64],
        regions: &[Rect],
    ) -> Vec<(f64, Vec<f64>)> {
        assert_eq!(bandwidth.len(), self.dims);
        if regions.is_empty() {
            return Vec::new();
        }
        for r in regions {
            assert_eq!(r.dims(), self.dims, "query dimensionality mismatch");
        }
        let _h_buf = self.backing.front().upload(bandwidth);
        let kernel = self.kernel;
        let d = self.dims;
        let b = regions.len();
        let width = 1 + d;
        let flops = (kernel.flops_per_factor() * (d * 2) as f64 + (d * d) as f64) * b as f64;
        let (sums, _) = self
            .backing
            .sweep_multi_reduce(b * width, flops, false, |view, out| {
                for (q, r) in regions.iter().enumerate() {
                    sweep::fused_strided_into(
                        kernel,
                        &view,
                        r.lo(),
                        r.hi(),
                        bandwidth,
                        out,
                        b * width,
                        q * width,
                        true,
                    );
                }
            });
        let inv_s = 1.0 / self.size as f64;
        sums.chunks_exact(width)
            .map(|chunk| {
                let estimate = (chunk[0] / self.size as f64).clamp(0.0, 1.0);
                let grad: Vec<f64> = chunk[1..].iter().map(|g| g * inv_s).collect();
                (estimate, grad)
            })
            .collect()
    }

    /// The retained contribution buffer of the most recent estimate.
    pub fn last_contributions(&self) -> Option<&DeviceBuffer> {
        self.last_contributions.as_ref()
    }

    /// Gradient of the estimator with respect to the bandwidth,
    /// `∂p̂_H(Ω)/∂h` (paper eqs. 15-17). Computed on the device, parallel
    /// over sample points, reduced per dimension.
    ///
    /// This is the *unfused* reference path (separate map and column
    /// reduction); the hot paths use
    /// [`estimate_with_gradient`](Self::estimate_with_gradient), which is
    /// asserted bit-identical to it.
    pub fn estimator_gradient(&self, region: &Rect) -> Vec<f64> {
        assert_eq!(region.dims(), self.dims);
        let kernel = self.kernel;
        let bw = &self.bandwidth;
        let lo = region.lo();
        let hi = region.hi();
        // Gradient needs all d factors plus d derivative terms per point.
        let d = self.dims;
        let flops = kernel.flops_per_factor() * (d * 2) as f64 + (d * d) as f64;
        let mut grad = self.backing.gradient_column_sums(d, flops, |view, out| {
            sweep::fused_strided_into(kernel, &view, lo, hi, bw, out, d, 0, false);
        });
        let inv_s = 1.0 / self.size as f64;
        for g in &mut grad {
            *g *= inv_s;
        }
        grad
    }

    /// Gradient of a loss at observed feedback, `∂L/∂h = ∂L/∂p̂ · ∂p̂/∂h`
    /// (paper eq. 14). `estimate` is the value previously returned for
    /// `region`; `actual` is the true selectivity from query feedback.
    pub fn loss_gradient(
        &self,
        region: &Rect,
        estimate: f64,
        actual: f64,
        loss: LossFunction,
    ) -> Vec<f64> {
        let scale = loss.dvalue_destimate(estimate, actual);
        let mut grad = self.estimator_gradient(region);
        for g in &mut grad {
            *g *= scale;
        }
        grad
    }

    /// Replaces sample point `index` with `row` in a single device transfer
    /// (§5.1). Invalidates the retained contribution buffer.
    ///
    /// # Panics
    /// Panics on index/arity mismatch or NaN attributes.
    pub fn replace_point(&mut self, index: usize, row: &[f64]) {
        assert!(index < self.size, "sample index {index} out of range");
        assert_eq!(row.len(), self.dims);
        assert!(row.iter().all(|v| !v.is_nan()), "NaN attribute");
        let offset = index * self.dims;
        self.backing.write_row(index, row);
        self.host_sample[offset..offset + self.dims].copy_from_slice(row);
        self.last_contributions = None;
        self.last_gradient = None;
    }

    /// Model memory footprint: the sample buffer plus the bandwidth vector
    /// (the quantities the paper's d·4 KiB budget constrains).
    pub fn memory_bytes(&self) -> usize {
        (self.host_sample.len() + self.bandwidth.len()) * std::mem::size_of::<f64>()
    }

    /// Reference host-side estimate over an arbitrary sample — the oracle
    /// the device path is tested against, also used by the batch/CV
    /// objectives where device timing must not be polluted.
    pub fn estimate_host(
        sample: &[f64],
        dims: usize,
        bandwidth: &[f64],
        kernel: KernelFn,
        region: &Rect,
    ) -> f64 {
        assert_eq!(sample.len() % dims, 0);
        let s = sample.len() / dims;
        if s == 0 {
            return 0.0;
        }
        let sum: f64 = sample
            .chunks_exact(dims)
            .map(|row| kernel.contribution(row, region.lo(), region.hi(), bandwidth))
            .sum();
        (sum / s as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::Backend;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_sample(n: usize, dims: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dims).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn make(backend: Backend, n: usize, dims: usize) -> KdeEstimator {
        let sample = uniform_sample(n, dims, 42);
        KdeEstimator::new(Device::new(backend), &sample, dims, KernelFn::Gaussian)
    }

    #[test]
    fn estimate_of_everything_is_one() {
        let mut e = make(Backend::CpuSeq, 256, 3);
        let est = e.estimate(&Rect::cube(3, -100.0, 101.0));
        assert!((est - 1.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn estimate_of_far_away_region_is_zero() {
        let mut e = make(Backend::CpuSeq, 256, 3);
        let est = e.estimate(&Rect::cube(3, 500.0, 501.0));
        assert!(est < 1e-12, "estimate {est}");
    }

    #[test]
    fn estimate_tracks_uniform_selectivity() {
        // Uniform sample on [0,1]²: a query of volume v should estimate ≈ v.
        let mut e = make(Backend::CpuPar, 4096, 2);
        let q = Rect::from_intervals(&[(0.2, 0.7), (0.1, 0.5)]);
        let est = e.estimate(&q);
        assert!((est - 0.2).abs() < 0.05, "estimate {est} for volume 0.2");
    }

    #[test]
    fn backends_agree_bitwise() {
        let sample = uniform_sample(1000, 4, 7);
        let q = Rect::from_intervals(&[(0.1, 0.6), (0.3, 0.9), (0.0, 0.4), (0.5, 1.0)]);
        let mut results = Vec::new();
        for b in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let mut e = KdeEstimator::new(Device::new(b), &sample, 4, KernelFn::Gaussian);
            results.push((e.estimate(&q), e.estimator_gradient(&q)));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn device_path_matches_host_reference() {
        let sample = uniform_sample(512, 3, 9);
        let mut e = KdeEstimator::new(Device::new(Backend::SimGpu), &sample, 3, KernelFn::Gaussian);
        let q = Rect::from_intervals(&[(0.2, 0.8), (0.0, 0.5), (0.4, 0.9)]);
        let dev = e.estimate(&q);
        let host = KdeEstimator::estimate_host(&sample, 3, e.bandwidth(), KernelFn::Gaussian, &q);
        assert!((dev - host).abs() < 1e-12, "{dev} vs {host}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let sample = uniform_sample(200, 2, 3);
        let e = KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let q = Rect::from_intervals(&[(0.3, 0.6), (0.2, 0.9)]);
        let grad = e.estimator_gradient(&q);
        let bw = e.bandwidth().to_vec();
        for i in 0..2 {
            let eps = 1e-7;
            let mut bp = bw.clone();
            bp[i] += eps;
            let mut bm = bw.clone();
            bm[i] -= eps;
            let fp = KdeEstimator::estimate_host(&sample, 2, &bp, KernelFn::Gaussian, &q);
            let fm = KdeEstimator::estimate_host(&sample, 2, &bm, KernelFn::Gaussian, &q);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-6,
                "dim {i}: fd {fd} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn loss_gradient_is_scaled_estimator_gradient() {
        let mut e = make(Backend::CpuSeq, 128, 2);
        let q = Rect::from_intervals(&[(0.1, 0.4), (0.2, 0.8)]);
        let est = e.estimate(&q);
        let actual = 0.05;
        let lg = e.loss_gradient(&q, est, actual, LossFunction::Quadratic);
        let eg = e.estimator_gradient(&q);
        let scale = 2.0 * (est - actual);
        for (l, g) in lg.iter().zip(&eg) {
            assert!((l - scale * g).abs() < 1e-12);
        }
    }

    #[test]
    fn contributions_are_retained_and_sized() {
        let mut e = make(Backend::CpuSeq, 64, 2);
        assert!(e.last_contributions().is_none());
        e.estimate(&Rect::cube(2, 0.0, 1.0));
        let c = e.last_contributions().expect("retained");
        assert_eq!(c.len(), 64);
    }

    #[test]
    fn replace_point_changes_estimates_and_invalidates_contributions() {
        let sample = vec![0.0, 0.0, 0.1, 0.1, 0.2, 0.2, 0.15, 0.05];
        let mut e = KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        e.set_bandwidth(vec![0.01, 0.01]);
        let near_origin = Rect::cube(2, -0.5, 0.5);
        let est_before = e.estimate(&near_origin);
        assert!((est_before - 1.0).abs() < 1e-6);
        // Move every point far away.
        for i in 0..4 {
            e.replace_point(i, &[100.0, 100.0]);
        }
        assert!(e.last_contributions().is_none());
        let est_after = e.estimate(&near_origin);
        assert!(est_after < 1e-9, "estimate {est_after}");
        assert_eq!(e.sample_point(2), &[100.0, 100.0]);
    }

    #[test]
    fn estimate_uses_few_transfers() {
        // Paper §2.4 footnote: "the only required transfers are the query
        // bounds and the computed estimate".
        let mut e = make(Backend::SimGpu, 1024, 4);
        let stats0 = e.device().stats();
        e.estimate(&Rect::cube(4, 0.0, 0.5));
        let stats1 = e.device().stats();
        assert_eq!(stats1.uploads - stats0.uploads, 1, "one bounds upload");
        assert_eq!(
            stats1.downloads - stats0.downloads,
            1,
            "one result download"
        );
        // Uploaded bytes: 2·d·8 = 64.
        assert_eq!(stats1.bytes_up - stats0.bytes_up, 64);
    }

    #[test]
    fn fused_estimate_with_gradient_is_bit_identical_to_separate_calls() {
        let sample = uniform_sample(700, 3, 11);
        let queries = [
            Rect::from_intervals(&[(0.1, 0.6), (0.3, 0.9), (0.0, 0.4)]),
            Rect::from_intervals(&[(-0.2, 0.2), (0.5, 1.5), (0.1, 0.3)]),
        ];
        for b in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let mut e = KdeEstimator::new(Device::new(b), &sample, 3, KernelFn::Gaussian);
            for q in &queries {
                let est = e.estimate(q);
                let grad = e.estimator_gradient(q);
                let retained = e.device().download(e.last_contributions().unwrap());
                let (fused_est, fused_grad) = e.estimate_with_gradient(q);
                assert_eq!(fused_est, est, "{}", b.name());
                assert_eq!(fused_grad, grad, "{}", b.name());
                // The fused path retains the same contribution buffer.
                let fused_retained = e.device().download(e.last_contributions().unwrap());
                assert_eq!(fused_retained, retained, "{}", b.name());
            }
        }
    }

    #[test]
    fn batched_estimates_match_per_query_estimates_bitwise() {
        let sample = uniform_sample(600, 2, 13);
        let regions: Vec<Rect> = (0..7)
            .map(|i| {
                let a = i as f64 * 0.1;
                Rect::from_intervals(&[(a, a + 0.4), (0.2 - a, 1.0)])
            })
            .collect();
        for b in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let mut e = KdeEstimator::new(Device::new(b), &sample, 2, KernelFn::Gaussian);
            let batched = e.estimate_batch(&regions);
            let looped: Vec<f64> = regions.iter().map(|q| e.estimate(q)).collect();
            assert_eq!(batched, looped, "{}", b.name());
        }
    }

    #[test]
    fn batched_gradients_match_per_query_paths_bitwise() {
        let sample = uniform_sample(300, 2, 17);
        let regions: Vec<Rect> = (0..5)
            .map(|i| {
                let a = i as f64 * 0.15;
                Rect::from_intervals(&[(a, a + 0.5), (0.0, 0.6 + a)])
            })
            .collect();
        let candidate = vec![0.21, 0.34];
        for b in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let mut e = KdeEstimator::new(Device::new(b), &sample, 2, KernelFn::Gaussian);
            let batched = e.estimate_batch_with_gradients_at(&candidate, &regions);
            e.set_bandwidth(candidate.clone());
            for (q, (est, grad)) in regions.iter().zip(&batched) {
                assert_eq!(*est, e.estimate(q), "{}", b.name());
                assert_eq!(*grad, e.estimator_gradient(q), "{}", b.name());
            }
        }
    }

    #[test]
    fn fused_estimate_with_gradient_uses_one_kernel_and_one_download() {
        let mut e = make(Backend::SimGpu, 1024, 4);
        let q = Rect::cube(4, 0.1, 0.7);
        let s0 = e.device().stats();
        let _ = e.estimate_with_gradient(&q);
        let s1 = e.device().stats();
        assert_eq!(s1.kernels - s0.kernels, 1, "one fused launch");
        assert_eq!(s1.uploads - s0.uploads, 1, "one bounds upload");
        assert_eq!(s1.downloads - s0.downloads, 1, "one result download");
        // (1+d)·8 = 40 bytes come back: the estimate and the gradient.
        assert_eq!(s1.bytes_down - s0.bytes_down, 40);
    }

    #[test]
    fn batched_objective_evaluation_uses_constant_launches() {
        let e = make(Backend::SimGpu, 512, 3);
        let regions: Vec<Rect> = (0..24)
            .map(|i| Rect::cube(3, 0.01 * i as f64, 0.5 + 0.01 * i as f64))
            .collect();
        let _bounds = e.stage_bounds(&regions);
        let s0 = e.device().stats();
        let _ = e.estimate_batch_with_gradients_at(&[0.2, 0.2, 0.2], &regions);
        let s1 = e.device().stats();
        // O(1) in |workload|: one bandwidth upload, one fused kernel, one
        // download of the 24·(1+3) reduced sums.
        assert_eq!(s1.kernels - s0.kernels, 1);
        assert_eq!(s1.uploads - s0.uploads, 1);
        assert_eq!(s1.downloads - s0.downloads, 1);
        assert_eq!(s1.bytes_down - s0.bytes_down, 24 * 4 * 8);
        // And the single-shot batched estimate is also one launch.
        let _ = e.estimate_batch(&regions);
        let s2 = e.device().stats();
        assert_eq!(s2.kernels - s1.kernels, 1);
    }

    #[test]
    fn gradient_cache_hits_same_region_and_invalidates_on_change() {
        let mut e = make(Backend::CpuSeq, 128, 2);
        let q = Rect::from_intervals(&[(0.1, 0.5), (0.2, 0.8)]);
        assert!(e.cached_gradient(&q).is_none());
        let (_, grad) = e.estimate_with_gradient(&q);
        assert_eq!(e.cached_gradient(&q).unwrap(), grad.as_slice());
        let other = Rect::from_intervals(&[(0.0, 0.5), (0.2, 0.8)]);
        assert!(e.cached_gradient(&other).is_none());
        e.set_bandwidth(vec![0.3, 0.3]);
        assert!(e.cached_gradient(&q).is_none(), "bandwidth change");
        let (_, _) = e.estimate_with_gradient(&q);
        e.replace_point(0, &[0.5, 0.5]);
        assert!(e.cached_gradient(&q).is_none(), "sample change");
    }

    #[test]
    fn epanechnikov_estimates_are_sane() {
        let sample = uniform_sample(2048, 2, 5);
        let mut e = KdeEstimator::new(
            Device::new(Backend::CpuPar),
            &sample,
            2,
            KernelFn::Epanechnikov,
        );
        let q = Rect::from_intervals(&[(0.25, 0.75), (0.25, 0.75)]);
        let est = e.estimate(&q);
        assert!((est - 0.25).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn memory_accounting() {
        let e = make(Backend::CpuSeq, 100, 3);
        assert_eq!(e.memory_bytes(), (300 + 3) * 8);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        KdeEstimator::new(Device::new(Backend::CpuSeq), &[], 2, KernelFn::Gaussian);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nonpositive_bandwidth_rejected() {
        let mut e = make(Backend::CpuSeq, 16, 2);
        e.set_bandwidth(vec![1.0, 0.0]);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn estimates_are_selectivities(
                seed in 0u64..1000,
                a in -0.5f64..1.0,
                w in 0.0f64..1.5
            ) {
                let sample = uniform_sample(128, 2, seed);
                let mut e = KdeEstimator::new(
                    Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
                let q = Rect::from_intervals(&[(a, a + w), (a, a + w)]);
                let est = e.estimate(&q);
                prop_assert!((0.0..=1.0).contains(&est));
            }

            #[test]
            fn monotone_under_region_growth(
                seed in 0u64..1000,
                a in -0.5f64..0.5,
                w in 0.1f64..1.0,
                extra in 0.0f64..1.0
            ) {
                let sample = uniform_sample(128, 2, seed);
                let mut e = KdeEstimator::new(
                    Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
                let small = e.estimate(&Rect::from_intervals(&[(a, a + w), (a, a + w)]));
                let large = e.estimate(&Rect::from_intervals(
                    &[(a - extra, a + w + extra), (a - extra, a + w + extra)]));
                prop_assert!(large >= small - 1e-12);
            }
        }
    }
}
