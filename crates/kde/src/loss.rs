//! Differentiable loss functions (paper Appendix C.1).
//!
//! The gradient of the bandwidth objective factorizes (eq. 14) into
//! `∂L/∂p̂ · ∂p̂/∂h_i`; this module supplies the first factor for each of
//! the paper's five metrics. The smoothing constant `λ` prevents division
//! by zero for empty query regions (footnote 6).

use kdesel_types::QERROR_SMOOTHING;

/// A loss `L(p̂, p)` with closed-form `∂L/∂p̂`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossFunction {
    /// Quadratic (L2): `(p̂ − p)²` — the default optimization target; its
    /// gradient is smooth everywhere, which keeps both L-BFGS and RMSprop
    /// well-behaved.
    #[default]
    Quadratic,
    /// Absolute (L1): `|p̂ − p|` — the paper's *reporting* metric.
    Absolute,
    /// Relative: `|p̂ − p| / (λ + p)`.
    Relative,
    /// Squared relative: `((p̂ − p) / (λ + p))²`.
    SquaredRelative,
    /// Squared Q-error: `(log(λ+p̂) − log(λ+p))²` [Moerkotte et al. 2009].
    SquaredQ,
}

impl LossFunction {
    /// All loss functions.
    pub const ALL: [LossFunction; 5] = [
        LossFunction::Quadratic,
        LossFunction::Absolute,
        LossFunction::Relative,
        LossFunction::SquaredRelative,
        LossFunction::SquaredQ,
    ];

    /// Stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            LossFunction::Quadratic => "quadratic",
            LossFunction::Absolute => "absolute",
            LossFunction::Relative => "relative",
            LossFunction::SquaredRelative => "squared_relative",
            LossFunction::SquaredQ => "squared_q",
        }
    }

    /// Loss value `L(estimate, actual)`.
    pub fn value(self, estimate: f64, actual: f64) -> f64 {
        let l = QERROR_SMOOTHING;
        match self {
            LossFunction::Quadratic => {
                let d = estimate - actual;
                d * d
            }
            LossFunction::Absolute => (estimate - actual).abs(),
            LossFunction::Relative => (estimate - actual).abs() / (l + actual),
            LossFunction::SquaredRelative => {
                let r = (estimate - actual) / (l + actual);
                r * r
            }
            LossFunction::SquaredQ => {
                let q = (l + estimate).ln() - (l + actual).ln();
                q * q
            }
        }
    }

    /// Partial derivative `∂L/∂p̂` (Appendix C.1's table).
    pub fn dvalue_destimate(self, estimate: f64, actual: f64) -> f64 {
        let l = QERROR_SMOOTHING;
        match self {
            LossFunction::Quadratic => 2.0 * (estimate - actual),
            LossFunction::Absolute => (estimate - actual).signum_or_zero(),
            LossFunction::Relative => (estimate - actual).signum_or_zero() / (l + actual),
            LossFunction::SquaredRelative => {
                2.0 * (estimate - actual) / ((l + actual) * (l + actual))
            }
            LossFunction::SquaredQ => {
                2.0 * ((l + estimate).ln() - (l + actual).ln()) / (l + estimate)
            }
        }
    }
}

/// `signum` that returns 0 at 0 (the subgradient choice in Appendix C.1).
trait SignumOrZero {
    fn signum_or_zero(self) -> f64;
}

impl SignumOrZero for f64 {
    fn signum_or_zero(self) -> f64 {
        if self > 0.0 {
            1.0
        } else if self < 0.0 {
            -1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_error_metrics() {
        // LossFunction mirrors kdesel_types::ErrorMetric; they must agree.
        use kdesel_types::ErrorMetric;
        let pairs = [
            (LossFunction::Quadratic, ErrorMetric::Squared),
            (LossFunction::Absolute, ErrorMetric::Absolute),
            (LossFunction::Relative, ErrorMetric::Relative),
            (LossFunction::SquaredRelative, ErrorMetric::SquaredRelative),
            (LossFunction::SquaredQ, ErrorMetric::SquaredQ),
        ];
        for (loss, metric) in pairs {
            for (e, a) in [(0.1, 0.3), (0.5, 0.5), (0.9, 0.01), (0.0, 0.0)] {
                assert_eq!(loss.value(e, a), metric.eval(e, a), "{}", loss.name());
            }
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        for loss in LossFunction::ALL {
            for (e, a) in [(0.1, 0.3), (0.42, 0.05), (0.9, 0.6)] {
                let eps = 1e-8;
                let fd = (loss.value(e + eps, a) - loss.value(e - eps, a)) / (2.0 * eps);
                let an = loss.dvalue_destimate(e, a);
                assert!(
                    (fd - an).abs() < 1e-5 * an.abs().max(1.0),
                    "{} at ({e},{a}): fd {fd} vs {an}",
                    loss.name()
                );
            }
        }
    }

    #[test]
    fn derivative_sign_reflects_over_or_under_estimation() {
        for loss in LossFunction::ALL {
            assert!(loss.dvalue_destimate(0.8, 0.2) > 0.0, "{}", loss.name());
            assert!(loss.dvalue_destimate(0.1, 0.5) < 0.0, "{}", loss.name());
        }
    }

    #[test]
    fn perfect_estimate_has_zero_loss() {
        for loss in LossFunction::ALL {
            assert_eq!(loss.value(0.37, 0.37), 0.0, "{}", loss.name());
        }
    }

    #[test]
    fn absolute_loss_subgradient_at_zero() {
        assert_eq!(LossFunction::Absolute.dvalue_destimate(0.5, 0.5), 0.0);
    }

    #[test]
    fn relative_losses_finite_for_empty_queries() {
        for loss in LossFunction::ALL {
            assert!(loss.value(0.1, 0.0).is_finite(), "{}", loss.name());
            assert!(
                loss.dvalue_destimate(0.1, 0.0).is_finite(),
                "{}",
                loss.name()
            );
            // SquaredQ at (0,0) uses the smoothing constant on both sides.
            assert!(loss.value(0.0, 0.0).is_finite());
        }
    }
}
