//! The four KDE estimator variants compared in the paper's evaluation
//! (§6.1.1), as [`SelectivityEstimator`] implementations.
//!
//! * [`HeuristicKde`] — Scott's-rule bandwidth, static ("KDE heuristic"),
//! * [`ScvKde`] — smoothed-cross-validation bandwidth, static ("KDE SCV"),
//! * [`BatchKde`] — bandwidth numerically optimized over a training
//!   workload at construction ("KDE batch", §3.4),
//! * [`AdaptiveKde`] — Scott initialization plus continuous RMSprop
//!   bandwidth tuning and Karma-based sample maintenance ("KDE adaptive",
//!   §4). Sample replacement is mediated by the engine: `observe` flags
//!   outdated points, [`AdaptiveKde::take_pending_replacements`] hands them
//!   to the caller, and [`AdaptiveKde::replace_point`] installs the fresh
//!   tuples the caller sampled from the database.

use crate::bandwidth::adaptive::{AdaptiveConfig, AdaptiveTuner};
use crate::bandwidth::batch::{optimize_bandwidth, BatchConfig};
use crate::bandwidth::cv::{scv_bandwidth, CvConfig};
use crate::estimator::KdeEstimator;
use crate::karma::{KarmaConfig, KarmaMaintenance};
use crate::kernel::KernelFn;
use kdesel_device::{Device, DeviceGroup};
use kdesel_types::{LabelledQuery, QueryFeedback, Rect, SelectivityEstimator};
use rand::Rng;

/// "KDE heuristic": Scott's rule, no tuning (the paper's baseline for
/// existing KDE estimators).
#[derive(Debug)]
pub struct HeuristicKde {
    inner: KdeEstimator,
}

impl HeuristicKde {
    /// Builds the model from a row-major sample.
    pub fn new(device: Device, sample: &[f64], dims: usize, kernel: KernelFn) -> Self {
        Self {
            inner: KdeEstimator::new(device, sample, dims, kernel),
        }
    }

    /// Access to the underlying model.
    pub fn model(&self) -> &KdeEstimator {
        &self.inner
    }

    /// Unwraps the underlying model (e.g. to register it with
    /// `kdesel-serve`).
    pub fn into_model(self) -> KdeEstimator {
        self.inner
    }
}

impl SelectivityEstimator for HeuristicKde {
    fn estimate(&mut self, region: &Rect) -> f64 {
        self.inner.estimate(region)
    }
    fn observe(&mut self, _feedback: &QueryFeedback) {}
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
    fn name(&self) -> &str {
        "kde-heuristic"
    }
}

/// "KDE SCV": bandwidth selected by smoothed cross-validation at
/// construction, static afterwards.
#[derive(Debug)]
pub struct ScvKde {
    inner: KdeEstimator,
}

impl ScvKde {
    /// Builds the model and runs the SCV selector.
    pub fn new<R: Rng + ?Sized>(
        device: Device,
        sample: &[f64],
        dims: usize,
        kernel: KernelFn,
        config: &CvConfig,
        rng: &mut R,
    ) -> Self {
        let mut inner = KdeEstimator::new(device, sample, dims, kernel);
        let bw = scv_bandwidth(sample, dims, config, rng);
        inner.set_bandwidth(bw);
        Self { inner }
    }

    /// Access to the underlying model.
    pub fn model(&self) -> &KdeEstimator {
        &self.inner
    }

    /// Unwraps the underlying model (e.g. to register it with
    /// `kdesel-serve`).
    pub fn into_model(self) -> KdeEstimator {
        self.inner
    }
}

impl SelectivityEstimator for ScvKde {
    fn estimate(&mut self, region: &Rect) -> f64 {
        self.inner.estimate(region)
    }
    fn observe(&mut self, _feedback: &QueryFeedback) {}
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
    fn name(&self) -> &str {
        "kde-scv"
    }
}

/// "KDE batch": the optimal estimator of §3 — bandwidth minimizing the
/// training-workload loss, found by global+local numerical optimization.
#[derive(Debug)]
pub struct BatchKde {
    inner: KdeEstimator,
    training_loss: f64,
}

impl BatchKde {
    /// Builds the model and optimizes its bandwidth over `training`.
    pub fn new<R: Rng + ?Sized>(
        device: Device,
        sample: &[f64],
        dims: usize,
        kernel: KernelFn,
        training: &[LabelledQuery],
        config: &BatchConfig,
        rng: &mut R,
    ) -> Self {
        let mut inner = KdeEstimator::new(device, sample, dims, kernel);
        let result = optimize_bandwidth(&inner, training, config, rng);
        inner.set_bandwidth(result.bandwidth);
        Self {
            inner,
            training_loss: result.training_loss,
        }
    }

    /// Mean training loss at the optimized bandwidth.
    pub fn training_loss(&self) -> f64 {
        self.training_loss
    }

    /// Access to the underlying model.
    pub fn model(&self) -> &KdeEstimator {
        &self.inner
    }

    /// Unwraps the underlying model (e.g. to register it with
    /// `kdesel-serve`).
    pub fn into_model(self) -> KdeEstimator {
        self.inner
    }
}

impl SelectivityEstimator for BatchKde {
    fn estimate(&mut self, region: &Rect) -> f64 {
        self.inner.estimate(region)
    }
    fn observe(&mut self, _feedback: &QueryFeedback) {}
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
    fn name(&self) -> &str {
        "kde-batch"
    }
}

/// "KDE adaptive": the self-tuning estimator of §4 — online bandwidth
/// learning plus Karma-based sample maintenance.
#[derive(Debug)]
pub struct AdaptiveKde {
    inner: KdeEstimator,
    tuner: AdaptiveTuner,
    karma: KarmaMaintenance,
    pending: Vec<usize>,
}

impl AdaptiveKde {
    /// Builds the model with Scott initialization and fresh tuning state.
    pub fn new(
        device: Device,
        sample: &[f64],
        dims: usize,
        kernel: KernelFn,
        adaptive: AdaptiveConfig,
        karma: KarmaConfig,
    ) -> Self {
        let inner = KdeEstimator::new(device, sample, dims, kernel);
        Self::from_estimator(inner, adaptive, karma)
    }

    /// Builds the model on a [`DeviceGroup`]: the sample is sharded into
    /// stripe blocks across the members and every estimate/gradient runs
    /// as a work-stealing group sweep. Results — including the tuning and
    /// Karma trajectories — are bitwise-identical to the single-device
    /// model; only timing differs.
    pub fn new_on_group(
        group: DeviceGroup,
        sample: &[f64],
        dims: usize,
        kernel: KernelFn,
        adaptive: AdaptiveConfig,
        karma: KarmaConfig,
    ) -> Self {
        let inner = KdeEstimator::new_on_group(group, sample, dims, kernel);
        Self::from_estimator(inner, adaptive, karma)
    }

    /// Wraps an existing model (e.g. one restored from a
    /// [`ModelSnapshot`](crate::ModelSnapshot)) with fresh tuning state —
    /// the tuned bandwidth carries over, the RMSprop accumulator and Karma
    /// counts restart.
    pub fn from_estimator(
        inner: KdeEstimator,
        adaptive: AdaptiveConfig,
        karma: KarmaConfig,
    ) -> Self {
        let karma = KarmaMaintenance::new(&inner, karma);
        Self {
            tuner: AdaptiveTuner::new(inner.dims(), adaptive),
            inner,
            karma,
            pending: Vec::new(),
        }
    }

    /// The tuner configuration this model was built with.
    pub fn adaptive_config(&self) -> &AdaptiveConfig {
        self.tuner.config()
    }

    /// The Karma configuration this model was built with.
    pub fn karma_config(&self) -> &KarmaConfig {
        self.karma.config()
    }

    /// Sample points flagged as outdated and awaiting replacement. The
    /// caller (engine) samples fresh tuples from the database and installs
    /// them via [`replace_point`](Self::replace_point).
    pub fn take_pending_replacements(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.pending)
    }

    /// Installs a fresh tuple at `index` (single device transfer) and
    /// clears the slot's Karma.
    pub fn replace_point(&mut self, index: usize, row: &[f64]) {
        self.inner.replace_point(index, row);
        self.karma.reset_point(&self.inner, index);
    }

    /// Reservoir-sampling hook for inserts (§4.2): replaces the slot chosen
    /// by the host-side reservoir decision with the newly inserted tuple.
    pub fn reservoir_replace(&mut self, slot: usize, row: &[f64]) {
        self.replace_point(slot, row);
    }

    /// Access to the underlying model.
    pub fn model(&self) -> &KdeEstimator {
        &self.inner
    }

    /// Number of RMSprop updates applied.
    pub fn updates_applied(&self) -> u64 {
        self.tuner.updates_applied()
    }
}

impl SelectivityEstimator for AdaptiveKde {
    fn estimate(&mut self, region: &Rect) -> f64 {
        // Fused sweep (§5.5): the adaptive estimator always needs the
        // bandwidth gradient for the upcoming feedback, so one launch
        // computes p̂ and caches ∂p̂/∂h — `observe` then pays no second
        // sample sweep.
        self.inner.estimate_with_gradient(region).0
    }

    fn observe(&mut self, feedback: &QueryFeedback) {
        // Karma first: it consumes the contribution buffer retained by the
        // estimate for exactly this query, before any bandwidth change.
        let mut flagged = self.karma.update(&self.inner, feedback);
        self.pending.append(&mut flagged);
        self.pending.sort_unstable();
        self.pending.dedup();
        // Then the bandwidth update (Listing 1).
        self.tuner.observe(&mut self.inner, feedback);
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes() + self.karma.memory_bytes()
    }

    fn name(&self) -> &str {
        "kde-adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::Backend;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * 2).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn labelled_queries(sample: &[f64], count: usize, seed: u64) -> Vec<LabelledQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = sample.len() / 2;
        (0..count)
            .map(|_| {
                let i = rng.gen_range(0..n);
                let c = [sample[i * 2], sample[i * 2 + 1]];
                let region = Rect::centered(&c, &[0.1, 0.1]);
                let sel = sample
                    .chunks_exact(2)
                    .filter(|r| region.contains(r))
                    .count() as f64
                    / n as f64;
                LabelledQuery::new(region, sel)
            })
            .collect()
    }

    #[test]
    fn all_variants_estimate_within_unit_interval() {
        let sample = uniform_sample(64, 1);
        let queries = labelled_queries(&sample, 20, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut estimators: Vec<Box<dyn SelectivityEstimator>> = vec![
            Box::new(HeuristicKde::new(
                Device::new(Backend::CpuSeq),
                &sample,
                2,
                KernelFn::Gaussian,
            )),
            Box::new(ScvKde::new(
                Device::new(Backend::CpuSeq),
                &sample,
                2,
                KernelFn::Gaussian,
                &CvConfig::default(),
                &mut rng,
            )),
            Box::new(BatchKde::new(
                Device::new(Backend::CpuSeq),
                &sample,
                2,
                KernelFn::Gaussian,
                &queries,
                &BatchConfig::default(),
                &mut rng,
            )),
            Box::new(AdaptiveKde::new(
                Device::new(Backend::CpuSeq),
                &sample,
                2,
                KernelFn::Gaussian,
                AdaptiveConfig::default(),
                KarmaConfig::default(),
            )),
        ];
        let region = Rect::from_intervals(&[(0.2, 0.6), (0.3, 0.8)]);
        for e in &mut estimators {
            let v = e.estimate(&region);
            assert!((0.0..=1.0).contains(&v), "{}: {v}", e.name());
            assert!(e.memory_bytes() > 0);
        }
        let names: Vec<_> = estimators.iter().map(|e| e.name().to_string()).collect();
        assert_eq!(
            names,
            ["kde-heuristic", "kde-scv", "kde-batch", "kde-adaptive"]
        );
    }

    #[test]
    fn batch_beats_heuristic_on_training_distribution() {
        let sample = uniform_sample(128, 4);
        // Clustered "database": the sample IS the database here.
        let train = labelled_queries(&sample, 50, 5);
        let test = labelled_queries(&sample, 50, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let mut heuristic =
            HeuristicKde::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let mut batch = BatchKde::new(
            Device::new(Backend::CpuSeq),
            &sample,
            2,
            KernelFn::Gaussian,
            &train,
            &BatchConfig::default(),
            &mut rng,
        );
        let err = |e: &mut dyn SelectivityEstimator| {
            test.iter()
                .map(|q| (e.estimate(&q.region) - q.selectivity).abs())
                .sum::<f64>()
                / test.len() as f64
        };
        let he = err(&mut heuristic);
        let be = err(&mut batch);
        assert!(be < he, "batch {be} should beat heuristic {he}");
    }

    #[test]
    fn adaptive_flags_and_replaces_outdated_points() {
        let mut sample = uniform_sample(31, 8);
        sample.extend_from_slice(&[50.0, 50.0]);
        let mut adaptive = AdaptiveKde::new(
            Device::new(Backend::CpuSeq),
            &sample,
            2,
            KernelFn::Gaussian,
            AdaptiveConfig::default(),
            KarmaConfig::default(),
        );
        // Query the stray point's region with actual = 0 (deleted data).
        let region = Rect::from_intervals(&[(49.0, 51.0), (49.0, 51.0)]);
        let est = adaptive.estimate(&region);
        adaptive.observe(&QueryFeedback {
            region: region.clone(),
            estimate: est,
            actual: 0.0,
            cardinality: 0,
        });
        let pending = adaptive.take_pending_replacements();
        assert_eq!(pending, vec![31]);
        assert!(adaptive.take_pending_replacements().is_empty(), "drained");
        adaptive.replace_point(31, &[0.5, 0.5]);
        let est_after = adaptive.estimate(&region);
        assert!(est_after < est, "estimate should drop after replacement");
    }

    #[test]
    fn adaptive_feedback_cycle_is_one_fused_sample_sweep() {
        let sample = uniform_sample(64, 10);
        let mut adaptive = AdaptiveKde::new(
            Device::new(Backend::SimGpu),
            &sample,
            2,
            KernelFn::Gaussian,
            AdaptiveConfig::default(),
            KarmaConfig::default(),
        );
        let region = Rect::from_intervals(&[(0.1, 0.6), (0.2, 0.7)]);
        let s0 = adaptive.model().device().stats();
        let est = adaptive.estimate(&region);
        let s_est = adaptive.model().device().stats();
        adaptive.observe(&QueryFeedback {
            region: region.clone(),
            estimate: est,
            actual: 0.3,
            cardinality: 0,
        });
        let s1 = adaptive.model().device().stats();
        // The estimate is ONE fused launch producing both p̂ and ∂p̂/∂h
        // (down from the two separate sweeps of the unfused path)…
        assert_eq!(s_est.kernels - s0.kernels, 1, "fused estimate+gradient");
        // …and the feedback step adds only Karma's two passes — the tuner
        // reuses the cached gradient instead of re-traversing the sample.
        assert_eq!(s1.kernels - s_est.kernels, 2, "karma accumulate + flag");
        assert_eq!(s1.downloads - s_est.downloads, 1, "flag bitmap");
    }

    #[test]
    fn observe_is_safe_without_prior_estimate() {
        let sample = uniform_sample(16, 9);
        let mut adaptive = AdaptiveKde::new(
            Device::new(Backend::CpuSeq),
            &sample,
            2,
            KernelFn::Gaussian,
            AdaptiveConfig::default(),
            KarmaConfig::default(),
        );
        adaptive.observe(&QueryFeedback {
            region: Rect::cube(2, 0.0, 1.0),
            estimate: 0.5,
            actual: 0.4,
            cardinality: 0,
        });
        assert!(adaptive.take_pending_replacements().is_empty());
    }
}
