//! Model persistence: snapshot and restore estimator state.
//!
//! A production optimizer keeps its statistics in the catalog (Postgres:
//! `pg_statistic`) so they survive restarts; the paper's estimator would
//! live there too. [`ModelSnapshot`] captures everything a KDE model needs
//! — the sample, the kernel, the bandwidth — in a serde-serializable form;
//! restoring uploads the sample to a fresh device and reinstates the tuned
//! bandwidth, skipping both ANALYZE and re-optimization.

use crate::estimator::KdeEstimator;
use crate::kernel::KernelFn;
use kdesel_device::Device;
use serde::{Deserialize, Serialize};

/// Serializable snapshot of a KDE model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Row-major sample.
    pub sample: Vec<f64>,
    /// Dimensionality.
    pub dims: usize,
    /// Kernel name ("gaussian" | "epanechnikov").
    pub kernel: String,
    /// Diagonal bandwidth.
    pub bandwidth: Vec<f64>,
}

impl ModelSnapshot {
    /// Captures the state of a live model.
    pub fn of(estimator: &KdeEstimator) -> Self {
        Self {
            sample: estimator.host_sample().to_vec(),
            dims: estimator.dims(),
            kernel: estimator.kernel().name().to_string(),
            bandwidth: estimator.bandwidth().to_vec(),
        }
    }

    /// Rebuilds a model on `device` from this snapshot.
    ///
    /// # Panics
    /// Panics on an unknown kernel name or inconsistent snapshot contents
    /// (the same validations as direct construction).
    pub fn restore(&self, device: Device) -> KdeEstimator {
        let kernel = match self.kernel.as_str() {
            "gaussian" => KernelFn::Gaussian,
            "epanechnikov" => KernelFn::Epanechnikov,
            other => panic!("unknown kernel {other:?} in snapshot"),
        };
        let mut estimator = KdeEstimator::new(device, &self.sample, self.dims, kernel);
        estimator.set_bandwidth(self.bandwidth.clone());
        estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::Backend;
    use kdesel_types::Rect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn model() -> KdeEstimator {
        let mut rng = StdRng::seed_from_u64(1);
        let sample: Vec<f64> = (0..256).map(|_| rng.gen_range(0.0..10.0)).collect();
        let mut e = KdeEstimator::new(
            Device::new(Backend::CpuSeq),
            &sample,
            2,
            KernelFn::Epanechnikov,
        );
        e.set_bandwidth(vec![0.42, 1.7]); // a "tuned" bandwidth
        e
    }

    #[test]
    fn snapshot_restore_roundtrips_estimates() {
        let mut original = model();
        let snapshot = ModelSnapshot::of(&original);
        let mut restored = snapshot.restore(Device::new(Backend::CpuPar));
        assert_eq!(restored.bandwidth(), original.bandwidth());
        assert_eq!(restored.kernel(), original.kernel());
        for q in [
            Rect::cube(2, 0.0, 5.0),
            Rect::from_intervals(&[(1.0, 2.0), (3.0, 9.0)]),
        ] {
            assert_eq!(original.estimate(&q), restored.estimate(&q));
        }
    }

    #[test]
    fn snapshot_survives_serde_roundtrip() {
        // serde-serialize through JSON and back.
        let original = model();
        let snapshot = ModelSnapshot::of(&original);
        let json = serde_json::to_string(&snapshot).expect("serialize");
        let back: ModelSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snapshot);
        let mut restored = back.restore(Device::new(Backend::CpuSeq));
        let q = Rect::cube(2, 2.0, 8.0);
        let mut orig = model();
        assert_eq!(restored.estimate(&q), orig.estimate(&q));
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn corrupt_kernel_name_rejected() {
        let mut snapshot = ModelSnapshot::of(&model());
        snapshot.kernel = "triangular".to_string();
        snapshot.restore(Device::new(Backend::CpuSeq));
    }
}
