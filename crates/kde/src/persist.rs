//! Model persistence: snapshot and restore estimator state.
//!
//! A production optimizer keeps its statistics in the catalog (Postgres:
//! `pg_statistic`) so they survive restarts; the paper's estimator would
//! live there too. [`ModelSnapshot`] captures everything a KDE model needs
//! — the sample, the kernel, the bandwidth — with a first-party JSON
//! round-trip (no external serialization crates); restoring uploads the
//! sample to a fresh device and reinstates the tuned bandwidth, skipping
//! both ANALYZE and re-optimization.

use crate::estimator::KdeEstimator;
use crate::kernel::KernelFn;
use kdesel_device::Device;
use kdesel_types::RouterState;

/// Serializable snapshot of a KDE model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Row-major sample.
    pub sample: Vec<f64>,
    /// Dimensionality.
    pub dims: usize,
    /// Kernel name ("gaussian" | "epanechnikov").
    pub kernel: String,
    /// Diagonal bandwidth.
    pub bandwidth: Vec<f64>,
    /// Hybrid-router state, present when the snapshot was taken from a
    /// hybrid model (KDE + learned + exact behind a cost/error router).
    /// Plain KDE snapshots omit it and restore exactly as before.
    pub router: Option<RouterState>,
}

impl ModelSnapshot {
    /// Captures the state of a live model.
    pub fn of(estimator: &KdeEstimator) -> Self {
        Self {
            sample: estimator.host_sample().to_vec(),
            dims: estimator.dims(),
            kernel: estimator.kernel().name().to_string(),
            bandwidth: estimator.bandwidth().to_vec(),
            router: None,
        }
    }

    /// Attaches hybrid-router state to the snapshot.
    pub fn with_router(mut self, router: RouterState) -> Self {
        self.router = Some(router);
        self
    }

    /// Rebuilds a model on `device` from this snapshot.
    ///
    /// # Panics
    /// Panics on an unknown kernel name or inconsistent snapshot contents
    /// (the same validations as direct construction).
    pub fn restore(&self, device: Device) -> KdeEstimator {
        let kernel = match self.kernel.as_str() {
            "gaussian" => KernelFn::Gaussian,
            "epanechnikov" => KernelFn::Epanechnikov,
            other => panic!("unknown kernel {other:?} in snapshot"),
        };
        let mut estimator = KdeEstimator::new(device, &self.sample, self.dims, kernel);
        estimator.set_bandwidth(self.bandwidth.clone());
        estimator
    }

    /// Serializes the snapshot as one JSON object. Floats use Rust's
    /// round-trip (`{:?}`) formatting, so `from_json` recovers them
    /// bit-exactly.
    pub fn to_json(&self) -> String {
        fn push_floats(out: &mut String, values: &[f64]) {
            out.push('[');
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{v:?}"));
            }
            out.push(']');
        }
        let mut out = String::with_capacity(32 + self.sample.len() * 20);
        out.push_str("{\"sample\":");
        push_floats(&mut out, &self.sample);
        out.push_str(&format!(",\"dims\":{}", self.dims));
        // Kernel names are identifiers from `KernelFn::name` — no
        // escaping needed, but reject surprises rather than emit bad JSON.
        assert!(
            self.kernel
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "kernel name {:?} is not a plain identifier",
            self.kernel
        );
        out.push_str(&format!(",\"kernel\":\"{}\"", self.kernel));
        out.push_str(",\"bandwidth\":");
        push_floats(&mut out, &self.bandwidth);
        if let Some(router) = &self.router {
            out.push_str(",\"router\":");
            out.push_str(&router.to_json());
        }
        out.push('}');
        out
    }

    /// Parses a snapshot serialized by [`ModelSnapshot::to_json`]. Keys
    /// may appear in any order; unknown keys are an error.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: json.as_bytes(),
            pos: 0,
        };
        let mut sample = None;
        let mut dims = None;
        let mut kernel = None;
        let mut bandwidth = None;
        let mut router = None;
        p.skip_ws();
        p.expect(b'{')?;
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "sample" => sample = Some(p.float_array()?),
                "bandwidth" => bandwidth = Some(p.float_array()?),
                "dims" => dims = Some(p.number()? as usize),
                "kernel" => kernel = Some(p.string()?),
                "router" => {
                    // The router state parses (and validates) itself;
                    // resume this parser just past its closing brace.
                    let (state, end) = RouterState::parse_embedded(p.bytes, p.pos)?;
                    p.pos = end;
                    router = Some(state);
                }
                other => return Err(format!("unknown snapshot key {other:?}")),
            }
            p.skip_ws();
            match p.next()? {
                b',' => continue,
                b'}' => break,
                c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("trailing data after snapshot object".to_string());
        }
        Ok(Self {
            sample: sample.ok_or("missing key \"sample\"")?,
            dims: dims.ok_or("missing key \"dims\"")?,
            kernel: kernel.ok_or("missing key \"kernel\"")?,
            bandwidth: bandwidth.ok_or("missing key \"bandwidth\"")?,
            router,
        })
    }
}

/// Minimal parser for the snapshot's own JSON dialect (objects of
/// strings, integers, and flat float arrays; strings without escapes).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<u8, String> {
        let b = *self.bytes.get(self.pos).ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "expected {:?}, found {:?}",
                want as char, got as char
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.next()? {
                b'"' => break,
                b'\\' => return Err("escapes are not used in snapshots".to_string()),
                _ => {}
            }
        }
        String::from_utf8(self.bytes[start..self.pos - 1].to_vec())
            .map_err(|_| "invalid UTF-8 in string".to_string())
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "invalid number".to_string())
    }

    fn float_array(&mut self) -> Result<Vec<f64>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(self.number()?);
            self.skip_ws();
            match self.next()? {
                b',' => continue,
                b']' => break,
                c => return Err(format!("expected ',' or ']', found {:?}", c as char)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::Backend;
    use kdesel_types::Rect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn model() -> KdeEstimator {
        let mut rng = StdRng::seed_from_u64(1);
        let sample: Vec<f64> = (0..256).map(|_| rng.gen_range(0.0..10.0)).collect();
        let mut e = KdeEstimator::new(
            Device::new(Backend::CpuSeq),
            &sample,
            2,
            KernelFn::Epanechnikov,
        );
        e.set_bandwidth(vec![0.42, 1.7]); // a "tuned" bandwidth
        e
    }

    #[test]
    fn snapshot_restore_roundtrips_estimates() {
        let mut original = model();
        let snapshot = ModelSnapshot::of(&original);
        let mut restored = snapshot.restore(Device::new(Backend::CpuPar));
        assert_eq!(restored.bandwidth(), original.bandwidth());
        assert_eq!(restored.kernel(), original.kernel());
        for q in [
            Rect::cube(2, 0.0, 5.0),
            Rect::from_intervals(&[(1.0, 2.0), (3.0, 9.0)]),
        ] {
            assert_eq!(original.estimate(&q), restored.estimate(&q));
        }
    }

    #[test]
    fn snapshot_survives_json_roundtrip() {
        let original = model();
        let snapshot = ModelSnapshot::of(&original);
        let json = snapshot.to_json();
        let back = ModelSnapshot::from_json(&json).expect("deserialize");
        assert_eq!(back, snapshot);
        let mut restored = back.restore(Device::new(Backend::CpuSeq));
        let q = Rect::cube(2, 2.0, 8.0);
        let mut orig = model();
        assert_eq!(restored.estimate(&q), orig.estimate(&q));
    }

    #[test]
    fn from_json_accepts_whitespace_and_key_reordering() {
        let json = r#" { "dims" : 1 , "kernel" : "gaussian" ,
                         "bandwidth" : [ 0.5 ] , "sample" : [ 1.0 , 2.0 ] } "#;
        let snap = ModelSnapshot::from_json(json).expect("parse");
        assert_eq!(snap.dims, 1);
        assert_eq!(snap.kernel, "gaussian");
        assert_eq!(snap.bandwidth, vec![0.5]);
        assert_eq!(snap.sample, vec![1.0, 2.0]);
    }

    #[test]
    fn from_json_rejects_garbage() {
        for bad in [
            "",
            "{",
            r#"{"dims":1}"#,
            r#"{"dims":1,"kernel":"gaussian","bandwidth":[],"sample":[]}x"#,
            r#"{"mystery":3}"#,
        ] {
            assert!(ModelSnapshot::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn router_state_roundtrips_inside_snapshot() {
        let state = RouterState {
            families: vec!["kde".into(), "learned".into(), "exact".into()],
            windows: vec![vec![1.0, 2.5], vec![], vec![1.25]],
            decisions: vec![7, 0, 3],
            last: Some("exact".into()),
        };
        let snapshot = ModelSnapshot::of(&model()).with_router(state.clone());
        let json = snapshot.to_json();
        let back = ModelSnapshot::from_json(&json).expect("deserialize");
        assert_eq!(back, snapshot);
        assert_eq!(back.router, Some(state));
        // An embedded-but-invalid router state is rejected, not dropped.
        let bad = json.replace("\"last\":\"exact\"", "\"last\":\"stholes\"");
        assert!(ModelSnapshot::from_json(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn corrupt_kernel_name_rejected() {
        let mut snapshot = ModelSnapshot::of(&model());
        snapshot.kernel = "triangular".to_string();
        snapshot.restore(Device::new(Backend::CpuSeq));
    }
}
