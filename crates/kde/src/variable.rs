//! Variable (adaptive) kernel density models — the paper's §8 future-work
//! item: "Variable – or adaptive – KDE models are an extension of KDE using
//! distinct bandwidth parameters for each sample point... These models have
//! shown very promising results in density estimation for very
//! high-dimensional spaces."
//!
//! This module implements the classic Abramson/Terrell–Scott construction
//! [Terrell & Scott 1992]: a pilot density estimate `p̃(x)` (fixed-bandwidth
//! KDE with Scott's rule) assigns each sample point a local scale factor
//!
//! ```text
//! λᵢ = (p̃(tᵢ) / g)^(−α),   g = geometric mean of p̃(tⱼ),   α = 1/2
//! ```
//!
//! so points in sparse regions spread their mass wider and points in dense
//! regions stay sharp. The per-point bandwidth is `λᵢ·h` with a shared base
//! bandwidth `h`, and the closed-form range integral (paper eq. 13) applies
//! per point unchanged. The base bandwidth remains compatible with the
//! batch optimizer's log-space search (the factors are constants of the
//! optimization).

use crate::kernel::KernelFn;
use kdesel_math::FRAC_1_SQRT_2PI;
use kdesel_types::Rect;

/// Sensitivity exponent `α`. Abramson's square-root law.
const ALPHA: f64 = 0.5;

/// Clamp for the local factors, keeping degenerate pilot estimates from
/// producing useless kernels.
const LAMBDA_RANGE: (f64, f64) = (0.1, 10.0);

/// A variable-bandwidth KDE model (host-side; the device path of the main
/// estimator covers the paper's published system, this module its §8
/// extension).
#[derive(Debug, Clone)]
pub struct VariableKde {
    sample: Vec<f64>,
    dims: usize,
    kernel: KernelFn,
    /// Shared base bandwidth (diagonal).
    bandwidth: Vec<f64>,
    /// Per-point scale factors λᵢ.
    factors: Vec<f64>,
}

impl VariableKde {
    /// Builds the model: pilot estimate with Scott's rule, then per-point
    /// factors via the square-root law.
    ///
    /// # Panics
    /// Panics on an empty or ragged sample.
    pub fn new(sample: &[f64], dims: usize, kernel: KernelFn) -> Self {
        assert!(dims > 0);
        assert!(!sample.is_empty(), "empty sample");
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        let bandwidth = crate::bandwidth::scott::scott_bandwidth(sample, dims);
        let n = sample.len() / dims;

        // Pilot density at each sample point (leave-self-in is fine for a
        // pilot; the geometric-mean normalization absorbs the bias).
        let pilot: Vec<f64> = (0..n)
            .map(|i| {
                let xi = &sample[i * dims..(i + 1) * dims];
                let mut acc = 0.0;
                for point in sample.chunks_exact(dims) {
                    let mut k = 1.0;
                    for d in 0..dims {
                        let u = (xi[d] - point[d]) / bandwidth[d];
                        k *= FRAC_1_SQRT_2PI / bandwidth[d] * (-0.5 * u * u).exp();
                    }
                    acc += k;
                }
                (acc / n as f64).max(f64::MIN_POSITIVE)
            })
            .collect();
        let log_gmean = pilot.iter().map(|p| p.ln()).sum::<f64>() / n as f64;
        let gmean = log_gmean.exp();
        let factors = pilot
            .iter()
            .map(|&p| {
                (p / gmean)
                    .powf(-ALPHA)
                    .clamp(LAMBDA_RANGE.0, LAMBDA_RANGE.1)
            })
            .collect();
        Self {
            sample: sample.to_vec(),
            dims,
            kernel,
            bandwidth,
            factors,
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Sample size.
    pub fn sample_size(&self) -> usize {
        self.sample.len() / self.dims
    }

    /// The shared base bandwidth.
    pub fn bandwidth(&self) -> &[f64] {
        &self.bandwidth
    }

    /// Replaces the base bandwidth (e.g. after batch optimization).
    ///
    /// # Panics
    /// Panics unless every component is positive and finite.
    pub fn set_bandwidth(&mut self, bandwidth: Vec<f64>) {
        assert_eq!(bandwidth.len(), self.dims);
        assert!(bandwidth.iter().all(|&h| h > 0.0 && h.is_finite()));
        self.bandwidth = bandwidth;
    }

    /// Per-point scale factors λᵢ.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Estimates the selectivity of `region`: eq. 2 with per-point
    /// bandwidths `λᵢ·h`.
    pub fn estimate(&self, region: &Rect) -> f64 {
        assert_eq!(region.dims(), self.dims);
        let lo = region.lo();
        let hi = region.hi();
        let n = self.sample_size();
        let mut scaled = vec![0.0; self.dims];
        let sum: f64 = self
            .sample
            .chunks_exact(self.dims)
            .zip(&self.factors)
            .map(|(point, &lambda)| {
                for (s, &h) in scaled.iter_mut().zip(&self.bandwidth) {
                    *s = lambda * h;
                }
                self.kernel.contribution(point, lo, hi, &scaled)
            })
            .sum();
        (sum / n as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::KdeEstimator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Heteroscedastic 1D data: a sharp spike plus a broad plateau — the
    /// regime where variable bandwidths beat a single global one.
    fn spike_and_plateau(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    // spike at 0 with σ ≈ 0.05
                    rng.gen_range(-0.05..0.05)
                } else {
                    // plateau over [5, 15]
                    rng.gen_range(5.0..15.0)
                }
            })
            .collect()
    }

    #[test]
    fn factors_are_smaller_in_dense_regions() {
        let sample = spike_and_plateau(400, 1);
        let model = VariableKde::new(&sample, 1, KernelFn::Gaussian);
        // Average factor of spike points vs plateau points.
        let (mut dense, mut sparse) = (0.0, 0.0);
        let (mut nd, mut ns) = (0, 0);
        for (i, &x) in sample.iter().enumerate() {
            if x.abs() < 0.1 {
                dense += model.factors()[i];
                nd += 1;
            } else {
                sparse += model.factors()[i];
                ns += 1;
            }
        }
        let dense = dense / nd as f64;
        let sparse = sparse / ns as f64;
        assert!(
            dense < sparse,
            "dense-region factors {dense} should be below sparse {sparse}"
        );
    }

    #[test]
    fn variable_beats_fixed_on_heteroscedastic_data() {
        // Probe the sharp spike: a fixed Scott bandwidth (dominated by the
        // plateau's σ) washes it out; the variable model keeps it sharp.
        let sample = spike_and_plateau(600, 2);
        let variable = VariableKde::new(&sample, 1, KernelFn::Gaussian);
        let truth_region = Rect::from_intervals(&[(-0.1, 0.1)]);
        let truth = sample
            .iter()
            .filter(|&&x| (-0.1..=0.1).contains(&x))
            .count() as f64
            / sample.len() as f64;

        let fixed = KdeEstimator::estimate_host(
            &sample,
            1,
            variable.bandwidth(),
            KernelFn::Gaussian,
            &truth_region,
        );
        let var = variable.estimate(&truth_region);
        let fixed_err = (fixed - truth).abs();
        let var_err = (var - truth).abs();
        assert!(
            var_err < fixed_err,
            "variable {var_err} should beat fixed {fixed_err} (truth {truth})"
        );
    }

    #[test]
    fn estimates_are_selectivities() {
        let sample = spike_and_plateau(200, 3);
        let model = VariableKde::new(&sample, 1, KernelFn::Gaussian);
        for (a, b) in [(-1.0, 1.0), (0.0, 0.0), (-100.0, 100.0), (40.0, 50.0)] {
            let v = model.estimate(&Rect::from_intervals(&[(a, b)]));
            assert!((0.0..=1.0).contains(&v), "estimate {v} for ({a},{b})");
        }
        // The whole line integrates to ≈1.
        let all = model.estimate(&Rect::from_intervals(&[(-1e4, 1e4)]));
        assert!((all - 1.0).abs() < 1e-9);
    }

    #[test]
    fn factors_are_clamped_and_centered() {
        let sample = spike_and_plateau(300, 4);
        let model = VariableKde::new(&sample, 1, KernelFn::Gaussian);
        for &f in model.factors() {
            assert!((LAMBDA_RANGE.0..=LAMBDA_RANGE.1).contains(&f));
        }
        // Geometric-mean normalization keeps the factors centered around 1.
        let log_mean: f64 =
            model.factors().iter().map(|f| f.ln()).sum::<f64>() / model.factors().len() as f64;
        assert!(log_mean.abs() < 0.7, "log-mean factor {log_mean}");
    }

    #[test]
    fn multidimensional_variable_model() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sample = Vec::new();
        for i in 0..200 {
            if i % 2 == 0 {
                sample.push(rng.gen_range(-0.1..0.1));
                sample.push(rng.gen_range(-0.1..0.1));
            } else {
                sample.push(rng.gen_range(5.0..15.0));
                sample.push(rng.gen_range(5.0..15.0));
            }
        }
        let model = VariableKde::new(&sample, 2, KernelFn::Gaussian);
        // Half the points form the spike; probe a box wide enough to hold
        // the kernel-smoothed spike mass (per-point bandwidths are ≈0.3-0.8
        // here) while excluding the plateau at [5,15]².
        let spike = model.estimate(&Rect::cube(2, -3.0, 3.0));
        assert!((spike - 0.5).abs() < 0.15, "spike mass {spike}");
    }
}
