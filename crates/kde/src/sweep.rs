//! Vectorized columnar kernel sweeps.
//!
//! These are the SoA counterparts of the scalar per-row kernels in
//! [`crate::kernel`]: each function consumes a [`ColsView`] — one
//! unit-stride stripe per dimension, as staged by
//! `Device::stage_rows_soa` — and processes [`LANES`] sample points per
//! step with [`F64s`] elementwise arithmetic. Loop bodies are
//! branch-free, so with `-C target-cpu=native` LLVM lowers them to
//! packed vector instructions.
//!
//! # Pre-scaled bandwidths
//!
//! The sweeps hoist every bandwidth-derived divisor out of the
//! per-point loop: [`DimParams`] precomputes `1/h` (Epanechnikov),
//! `1/(√2·h)`, `1/(2h²)` and `1/(√2·√π·h²)` (Gaussian) once per
//! dimension per sweep, and the inner loops multiply. Division has a
//! fraction of multiply throughput on both the scalar and the packed
//! units, so the scalar kernels' `(lo − t)/h` form is division-bound;
//! replacing it with `(lo − t)·(1/h)` makes the Epanechnikov sweep pure
//! mul/add/min/max and is the same pre-scaling a GPU kernel performs
//! before launching over the sample. The reciprocal is rounded once, so
//! sweep results differ from the reference kernels in
//! [`crate::kernel`] by ~1 ulp per factor — well inside the 1e-12 band
//! the estimator pins its device-vs-host tests to.
//!
//! # Bit-identity across device paths
//!
//! What stays *bitwise* exact is agreement between every device sweep
//! path — that is the contract the fusion/batch/backend pins rely on:
//!
//! * Vector body and scalar tail evaluate the identical IEEE-754
//!   operation sequence: the tail helpers ([`factor_scalar`],
//!   [`dfactor_scalar`]) are the per-lane expressions of
//!   [`factor_lanes`]/[`dfactor_lanes`] verbatim, and [`F64s`] never
//!   reassociates or fuses (transcendentals run the same scalar
//!   function per lane).
//! * [`DimParams::new`] is deterministic, so recomputing it in a tail
//!   helper yields the same bits as the hoisted copy.
//! * Range factors are always `≥ +0.0` (they are probabilities; both
//!   kernels produce an exact `+0.0` when the mass vanishes — clamping
//!   and `erf` saturation survive the pre-scaling), so the scalar
//!   early-exit-on-zero product equals the full ordered product.
//! * All product loops multiply factors in ascending-dimension order,
//!   in both the vector groups and the tails.
//!
//! High dimensionalities (`d >` [`MAX_STACK_DIMS`]) run the scalar tail
//! helpers over every row (heap scratch), which keeps the same
//! formulation and therefore the same bits as a hypothetical vector
//! pass.

use crate::kernel::KernelFn;
use kdesel_device::ColsView;
use kdesel_math::simd::{F64s, LANES};
use kdesel_math::{erf, SQRT_2, SQRT_PI};

/// Largest dimensionality served by the stack-scratch vector path;
/// matches the scalar kernels' stack-factor limit. Beyond it the sweep
/// falls back to the scalar tail helpers (heap scratch).
const MAX_STACK_DIMS: usize = 32;

/// Per-dimension sweep constants, computed once per sweep call so the
/// per-point loops are division-free.
#[derive(Clone, Copy, Default)]
struct DimParams {
    lo: f64,
    hi: f64,
    /// Epanechnikov: `1/h`. Gaussian: `1/(√2·h)` (the erf argument scale).
    inv: f64,
    /// Gaussian derivative normalizer `1/(√2·√π·h²)`; unused otherwise.
    dnorm: f64,
    /// Gaussian exponent scale `1/(2h²)`; unused otherwise.
    inv_2h2: f64,
}

impl DimParams {
    #[inline]
    fn new(kernel: KernelFn, lo: f64, hi: f64, h: f64) -> Self {
        match kernel {
            KernelFn::Gaussian => {
                let h2 = h * h;
                Self {
                    lo,
                    hi,
                    inv: 1.0 / (SQRT_2 * h),
                    dnorm: 1.0 / (SQRT_2 * SQRT_PI * h2),
                    inv_2h2: 1.0 / (2.0 * h2),
                }
            }
            KernelFn::Epanechnikov => Self {
                lo,
                hi,
                inv: 1.0 / h,
                dnorm: 0.0,
                inv_2h2: 0.0,
            },
        }
    }
}

/// [`LANES`] range factors of one dimension: the pre-scaled vector form
/// of [`KernelFn::range_factor`].
#[inline]
fn factor_lanes(kernel: KernelFn, t: F64s, p: DimParams) -> F64s {
    match kernel {
        KernelFn::Gaussian => {
            let e_hi = ((F64s::splat(p.hi) - t) * p.inv).map(erf);
            let e_lo = ((F64s::splat(p.lo) - t) * p.inv).map(erf);
            (e_hi - e_lo) * 0.5
        }
        KernelFn::Epanechnikov => {
            let a = ((F64s::splat(p.lo) - t) * p.inv).clamp(-1.0, 1.0);
            let b = ((F64s::splat(p.hi) - t) * p.inv).clamp(-1.0, 1.0);
            epa_cdf_lanes(b) - epa_cdf_lanes(a)
        }
    }
}

/// Per-lane expression of [`factor_lanes`] — the scalar-tail twin. Must
/// stay textually in sync so tails and vector groups agree bitwise.
#[inline]
fn factor_scalar(kernel: KernelFn, t: f64, p: DimParams) -> f64 {
    match kernel {
        KernelFn::Gaussian => {
            let e_hi = erf((p.hi - t) * p.inv);
            let e_lo = erf((p.lo - t) * p.inv);
            (e_hi - e_lo) * 0.5
        }
        KernelFn::Epanechnikov => {
            let a = ((p.lo - t) * p.inv).clamp(-1.0, 1.0);
            let b = ((p.hi - t) * p.inv).clamp(-1.0, 1.0);
            epa_cdf(b) - epa_cdf(a)
        }
    }
}

/// Elementwise Epanechnikov CDF `0.25·(3u − u³) + 0.5`.
#[inline]
fn epa_cdf_lanes(u: F64s) -> F64s {
    (u * 3.0 - u * u * u) * 0.25 + 0.5
}

/// Scalar twin of [`epa_cdf_lanes`] (same operation order).
#[inline]
fn epa_cdf(u: f64) -> f64 {
    (u * 3.0 - u * u * u) * 0.25 + 0.5
}

/// [`LANES`] bandwidth derivatives of one dimension: the pre-scaled
/// vector form of [`KernelFn::range_factor_dh`]. Guarded terms
/// (infinite bounds, compact support) are branch-free: every lane
/// computes unconditionally and the out-of-support lanes are zeroed,
/// matching the scalar `else { 0.0 }` arms.
#[inline]
fn dfactor_lanes(kernel: KernelFn, t: F64s, p: DimParams) -> F64s {
    match kernel {
        KernelFn::Gaussian => {
            let term = |d: f64| -> f64 {
                if d.is_finite() {
                    d * (-d * d * p.inv_2h2).exp()
                } else {
                    0.0
                }
            };
            let t_lo = (F64s::splat(p.lo) - t).map(term);
            let t_hi = (F64s::splat(p.hi) - t).map(term);
            (t_lo - t_hi) * p.dnorm
        }
        KernelFn::Epanechnikov => {
            let u_lo = (F64s::splat(p.lo) - t) * p.inv;
            let u_hi = (F64s::splat(p.hi) - t) * p.inv;
            // `epa_pdf(u)·(−u/h)` with both divisions pre-scaled away;
            // lanes outside the support (including NaN from ±∞ bounds)
            // are zeroed by the mask.
            let term = |u: F64s| -> F64s {
                ((F64s::splat(1.0) - u * u) * 0.75 * (-u * p.inv)).zero_unless_within(u, -1.0, 1.0)
            };
            term(u_hi) - term(u_lo)
        }
    }
}

/// Per-lane expression of [`dfactor_lanes`] — the scalar-tail twin.
#[inline]
fn dfactor_scalar(kernel: KernelFn, t: f64, p: DimParams) -> f64 {
    match kernel {
        KernelFn::Gaussian => {
            let term = |d: f64| -> f64 {
                if d.is_finite() {
                    d * (-d * d * p.inv_2h2).exp()
                } else {
                    0.0
                }
            };
            (term(p.lo - t) - term(p.hi - t)) * p.dnorm
        }
        KernelFn::Epanechnikov => {
            let term = |u: f64| -> f64 {
                let v = (1.0 - u * u) * 0.75 * (-u * p.inv);
                // NaN `u` (±∞ bounds) fails the containment test → 0.0,
                // like the vector mask.
                if (-1.0..=1.0).contains(&u) {
                    v
                } else {
                    0.0
                }
            };
            term((p.hi - t) * p.inv) - term((p.lo - t) * p.inv)
        }
    }
}

/// Scalar-tail contribution of row `r`, reading column-wise — the
/// per-lane operation sequence of the vector sweep, with the scalar
/// early-exit on an exact-zero partial product (equivalent because
/// factors are `≥ +0.0`; see the module notes).
#[inline]
fn contribution_at(
    kernel: KernelFn,
    cols: &ColsView<'_>,
    lo: &[f64],
    hi: &[f64],
    bandwidth: &[f64],
    r: usize,
) -> f64 {
    let mut p = 1.0;
    for j in 0..cols.dims() {
        let dp = DimParams::new(kernel, lo[j], hi[j], bandwidth[j]);
        p *= factor_scalar(kernel, cols.col(j)[r], dp);
        if p == 0.0 {
            return 0.0;
        }
    }
    p
}

/// Writes the per-point contributions (eq. 13) of every row into the
/// contiguous `out` (`out.len() == cols.rows()`). Dimension-major: each
/// dimension streams its unit-stride stripe once, initializing
/// (dimension 0) or multiplying into (dimensions 1..) the running
/// products — the same ascending-dimension order as the scalar path.
pub(crate) fn contributions_into(
    kernel: KernelFn,
    cols: &ColsView<'_>,
    lo: &[f64],
    hi: &[f64],
    bandwidth: &[f64],
    out: &mut [f64],
) {
    let n = cols.rows();
    let d = cols.dims();
    debug_assert_eq!(out.len(), n);
    let main = n - n % LANES;
    for j in 0..d {
        let col = cols.col(j);
        let p = DimParams::new(kernel, lo[j], hi[j], bandwidth[j]);
        let mut r = 0;
        while r < main {
            let f = factor_lanes(kernel, F64s::from_slice(&col[r..]), p);
            if j == 0 {
                f.write_to(&mut out[r..]);
            } else {
                (F64s::from_slice(&out[r..]) * f).write_to(&mut out[r..]);
            }
            r += LANES;
        }
    }
    for (r, slot) in out.iter_mut().enumerate().skip(main) {
        *slot = contribution_at(kernel, cols, lo, hi, bandwidth, r);
    }
}

/// Fills `params` (stack for `d ≤` [`MAX_STACK_DIMS`], else heap) with
/// the hoisted per-dimension constants for one sweep call.
#[inline]
fn hoist_params<'a>(
    kernel: KernelFn,
    lo: &[f64],
    hi: &[f64],
    bandwidth: &[f64],
    stack: &'a mut [DimParams; MAX_STACK_DIMS],
    heap: &'a mut Vec<DimParams>,
) -> &'a [DimParams] {
    let d = lo.len();
    if d <= MAX_STACK_DIMS {
        for j in 0..d {
            stack[j] = DimParams::new(kernel, lo[j], hi[j], bandwidth[j]);
        }
        &stack[..d]
    } else {
        heap.extend((0..d).map(|j| DimParams::new(kernel, lo[j], hi[j], bandwidth[j])));
        heap
    }
}

/// Writes the per-point contributions of one query at column `offset`
/// of each `width`-wide output row: `out[r·width + offset]`. The
/// strided form used by the batched sweeps, where `B` queries interleave
/// per row so the device's column reduction returns all sums at once.
pub(crate) fn contributions_strided_into(
    kernel: KernelFn,
    cols: &ColsView<'_>,
    lo: &[f64],
    hi: &[f64],
    bandwidth: &[f64],
    out: &mut [f64],
    width: usize,
    offset: usize,
) {
    let n = cols.rows();
    debug_assert_eq!(out.len(), n * width);
    let mut params_stack = [DimParams::default(); MAX_STACK_DIMS];
    let mut params_heap = Vec::new();
    let params = hoist_params(
        kernel,
        lo,
        hi,
        bandwidth,
        &mut params_stack,
        &mut params_heap,
    );
    let main = n - n % LANES;
    let mut r = 0;
    while r < main {
        let mut acc = factor_lanes(kernel, F64s::from_slice(&cols.col(0)[r..]), params[0]);
        for (j, &p) in params.iter().enumerate().skip(1) {
            acc = acc * factor_lanes(kernel, F64s::from_slice(&cols.col(j)[r..]), p);
        }
        for (l, v) in acc.to_array().iter().enumerate() {
            out[(r + l) * width + offset] = *v;
        }
        r += LANES;
    }
    for r in main..n {
        out[r * width + offset] = contribution_at(kernel, cols, lo, hi, bandwidth, r);
    }
}

/// Fused value + bandwidth gradient of one query for every row,
/// strided: the value lands at `out[r·width + offset]` and the gradient
/// at the `d` columns after it (the §5.5 factor-sharing layout). With
/// `with_value == false` the value column is omitted and the gradient
/// starts at `offset` — the unfused [`KernelFn::contribution_gradient`]
/// shape.
///
/// Vector path: per [`LANES`]-row group, all `d` factors and
/// `d` derivative factors are computed once into stack scratch, then the
/// value product and the `d` gradient products are formed in
/// ascending-dimension order. The scalar tail repeats the identical
/// sequence per row via the scalar twins.
#[allow(clippy::too_many_arguments)] // mirrors the scalar kernel signature plus the stride pair
pub(crate) fn fused_strided_into(
    kernel: KernelFn,
    cols: &ColsView<'_>,
    lo: &[f64],
    hi: &[f64],
    bandwidth: &[f64],
    out: &mut [f64],
    width: usize,
    offset: usize,
    with_value: bool,
) {
    let n = cols.rows();
    let d = cols.dims();
    debug_assert_eq!(out.len(), n * width);
    let mut params_stack = [DimParams::default(); MAX_STACK_DIMS];
    let mut params_heap = Vec::new();
    let params = hoist_params(
        kernel,
        lo,
        hi,
        bandwidth,
        &mut params_stack,
        &mut params_heap,
    );
    let mut point_stack = [0.0f64; MAX_STACK_DIMS];
    let mut grad_stack = [0.0f64; MAX_STACK_DIMS];
    let mut point_heap = Vec::new();
    let mut grad_heap = Vec::new();
    let (point, grad): (&mut [f64], &mut [f64]) = if d <= MAX_STACK_DIMS {
        (&mut point_stack[..d], &mut grad_stack[..d])
    } else {
        point_heap.resize(d, 0.0);
        grad_heap.resize(d, 0.0);
        (&mut point_heap, &mut grad_heap)
    };
    let main = if d <= MAX_STACK_DIMS {
        n - n % LANES
    } else {
        0 // scalar fallback handles everything
    };
    let mut factors = [[0.0f64; LANES]; MAX_STACK_DIMS];
    let mut dfactors = [[0.0f64; LANES]; MAX_STACK_DIMS];
    let gbase = offset + usize::from(with_value);
    let mut r = 0;
    while r < main {
        for (j, &p) in params.iter().enumerate() {
            let t = F64s::from_slice(&cols.col(j)[r..]);
            factors[j] = factor_lanes(kernel, t, p).to_array();
            dfactors[j] = dfactor_lanes(kernel, t, p).to_array();
        }
        if with_value {
            let mut acc = F64s(factors[0]);
            for f in &factors[1..d] {
                acc = acc * F64s(*f);
            }
            for (l, v) in acc.to_array().iter().enumerate() {
                out[(r + l) * width + offset] = *v;
            }
        }
        for i in 0..d {
            let mut acc = F64s(dfactors[i]);
            for (j, f) in factors[..d].iter().enumerate() {
                if j != i {
                    acc = acc * F64s(*f);
                }
            }
            for (l, v) in acc.to_array().iter().enumerate() {
                out[(r + l) * width + gbase + i] = *v;
            }
        }
        r += LANES;
    }
    // Scalar tail (and the d > MAX_STACK_DIMS whole-range fallback):
    // evaluate the scalar twins per dimension, then form the value and
    // gradient products in the vector path's exact order. `point` holds
    // the row's factors, `grad` its derivative factors.
    for r in main..n {
        for (j, &p) in params.iter().enumerate() {
            let t = cols.col(j)[r];
            point[j] = factor_scalar(kernel, t, p);
            grad[j] = dfactor_scalar(kernel, t, p);
        }
        let base = r * width;
        if with_value {
            let mut acc = point[0];
            for &f in &point[1..d] {
                acc *= f;
            }
            out[base + offset] = acc;
        }
        for i in 0..d {
            let mut acc = grad[i];
            for (j, &f) in point[..d].iter().enumerate() {
                if j != i {
                    acc *= f;
                }
            }
            out[base + gbase + i] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::{Backend, Device};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const KERNELS: [KernelFn; 2] = [KernelFn::Gaussian, KernelFn::Epanechnikov];

    fn sample_rows(n: usize, d: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * d).map(|_| rng.gen_range(-1.0..2.0)).collect()
    }

    /// Asserts the pre-scaled sweep result agrees with the reference
    /// kernels' division form: exact zeros must match exactly (support
    /// tests are value-preserving), everything else to ~1 ulp per
    /// factor.
    fn assert_close(got: f64, want: f64, ctx: &str) {
        if want == 0.0 {
            assert_eq!(got, want, "{ctx}: expected exact zero");
        } else {
            let tol = 1e-12 * want.abs().max(got.abs()).max(1.0);
            assert!((got - want).abs() <= tol, "{ctx}: {got} vs {want}");
        }
    }

    /// Runs `f` against the full-sample ColsView of a staged sample.
    fn with_cols<R: Send>(rows: &[f64], d: usize, f: impl Fn(ColsView<'_>) -> R + Sync) -> R {
        let device = Device::new(Backend::CpuSeq);
        let staged = device.stage_rows_soa(rows, d);
        let cell = std::sync::Mutex::new(None);
        let n = staged.rows();
        // sweep_multi hands the callback block-sized windows; use a
        // 1-wide sweep only to borrow its view plumbing when the sample
        // fits one block, else construct via the public sweep API per
        // block — tests below keep n within one block.
        assert!(n <= kdesel_device::SWEEP_BLOCK_ROWS);
        let _ = device.sweep_multi(&staged, 1, 1.0, |view, _out| {
            *cell.lock().unwrap() = Some(f(view));
        });
        cell.into_inner().unwrap().unwrap()
    }

    #[test]
    fn contributions_match_scalar_reference_including_tail() {
        for kernel in KERNELS {
            for (n, d) in [(1, 3), (LANES, 2), (LANES * 5 + 3, 4), (97, 1)] {
                let rows = sample_rows(n, d, 7 + n as u64);
                let lo = vec![-0.25; d];
                let hi: Vec<f64> = (0..d).map(|j| 0.3 + 0.2 * j as f64).collect();
                let bw: Vec<f64> = (0..d).map(|j| 0.2 + 0.1 * j as f64).collect();
                let got = with_cols(&rows, d, |view| {
                    let mut out = vec![0.0; n];
                    contributions_into(kernel, &view, &lo, &hi, &bw, &mut out);
                    out
                });
                // Vector groups and scalar tail must agree with the
                // sweep's own scalar formulation bitwise...
                let twin: Vec<f64> = rows
                    .chunks_exact(d)
                    .map(|row| {
                        let mut p = 1.0;
                        for j in 0..d {
                            let dp = DimParams::new(kernel, lo[j], hi[j], bw[j]);
                            p *= factor_scalar(kernel, row[j], dp);
                            if p == 0.0 {
                                return 0.0;
                            }
                        }
                        p
                    })
                    .collect();
                assert_eq!(got, twin, "{} n={n} d={d}", kernel.name());
                // ...and with the reference kernels to ~1 ulp.
                for (r, row) in rows.chunks_exact(d).enumerate() {
                    let want = kernel.contribution(row, &lo, &hi, &bw);
                    assert_close(
                        got[r],
                        want,
                        &format!("{} n={n} d={d} r={r}", kernel.name()),
                    );
                }
            }
        }
    }

    #[test]
    fn strided_contributions_match_contiguous_bitwise() {
        let (n, d, width) = (LANES * 3 + 5, 3, 4);
        let rows = sample_rows(n, d, 11);
        let lo = [-0.5, 0.0, 0.1];
        let hi = [0.5, 0.9, 1.4];
        let bw = [0.3, 0.25, 0.4];
        for kernel in KERNELS {
            let (strided, contiguous) = with_cols(&rows, d, |view| {
                let mut strided = vec![f64::NAN; n * width];
                for q in 0..width {
                    contributions_strided_into(
                        kernel,
                        &view,
                        &lo,
                        &hi,
                        &bw,
                        &mut strided,
                        width,
                        q,
                    );
                }
                let mut contiguous = vec![0.0; n];
                contributions_into(kernel, &view, &lo, &hi, &bw, &mut contiguous);
                (strided, contiguous)
            });
            for (r, row) in rows.chunks_exact(d).enumerate() {
                let want = kernel.contribution(row, &lo, &hi, &bw);
                assert_close(contiguous[r], want, &format!("{} r={r}", kernel.name()));
                for q in 0..width {
                    // Every stride offset must reproduce the contiguous
                    // sweep exactly — the batch paths rely on it.
                    assert_eq!(
                        strided[r * width + q].to_bits(),
                        contiguous[r].to_bits(),
                        "{} r={r} q={q}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fused_sweep_matches_scalar_reference() {
        for kernel in KERNELS {
            for (n, d) in [(LANES * 4 + 6, 3), (LANES - 1, 5), (200, 2)] {
                let rows = sample_rows(n, d, 23 + d as u64);
                // Epanechnikov's compact support makes exact-zero factors
                // common with these bounds, exercising the ±0.0 cases.
                let lo: Vec<f64> = (0..d).map(|j| -0.2 + 0.1 * j as f64).collect();
                let hi: Vec<f64> = (0..d).map(|j| 0.4 + 0.1 * j as f64).collect();
                let bw = vec![0.21; d];
                let width = 1 + d;
                let (fused, grads_only, values) = with_cols(&rows, d, |view| {
                    let mut fused = vec![f64::NAN; n * width];
                    fused_strided_into(kernel, &view, &lo, &hi, &bw, &mut fused, width, 0, true);
                    let mut grads_only = vec![f64::NAN; n * d];
                    fused_strided_into(kernel, &view, &lo, &hi, &bw, &mut grads_only, d, 0, false);
                    let mut values = vec![0.0; n];
                    contributions_into(kernel, &view, &lo, &hi, &bw, &mut values);
                    (fused, grads_only, values)
                });
                let mut grad = vec![0.0; d];
                for (r, row) in rows.chunks_exact(d).enumerate() {
                    // The fused value column is the estimate sweep's
                    // contribution, bitwise — the §5.5 fusion pin.
                    assert_eq!(
                        fused[r * width].to_bits(),
                        values[r].to_bits(),
                        "{} r={r}",
                        kernel.name()
                    );
                    // Fused and unfused gradients are bitwise equal.
                    assert_eq!(
                        &fused[r * width + 1..][..d],
                        &grads_only[r * d..][..d],
                        "{} unfused r={r}",
                        kernel.name()
                    );
                    // Both agree with the reference kernels to ~1 ulp.
                    let value = kernel.contribution_with_gradient(row, &lo, &hi, &bw, &mut grad);
                    assert_close(fused[r * width], value, &format!("{} r={r}", kernel.name()));
                    for i in 0..d {
                        assert_close(
                            fused[r * width + 1 + i],
                            grad[i],
                            &format!("{} r={r} grad {i}", kernel.name()),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn high_dimensional_fallback_matches_scalar() {
        // d > MAX_STACK_DIMS exercises the heap-scratch scalar path.
        let d = MAX_STACK_DIMS + 1;
        let n = LANES + 3;
        let rows = sample_rows(n, d, 31);
        let lo = vec![-0.4; d];
        let hi = vec![0.6; d];
        let bw = vec![0.5; d];
        let kernel = KernelFn::Gaussian;
        let width = 1 + d;
        let fused = with_cols(&rows, d, |view| {
            let mut out = vec![f64::NAN; n * width];
            fused_strided_into(kernel, &view, &lo, &hi, &bw, &mut out, width, 0, true);
            out
        });
        let mut grad = vec![0.0; d];
        for (r, row) in rows.chunks_exact(d).enumerate() {
            let value = kernel.contribution_with_gradient(row, &lo, &hi, &bw, &mut grad);
            assert_close(fused[r * width], value, &format!("r={r}"));
            for i in 0..d {
                assert_close(
                    fused[r * width + 1 + i],
                    grad[i],
                    &format!("r={r} grad {i}"),
                );
            }
        }
    }

    #[test]
    fn infinite_bounds_stay_finite_in_vector_path() {
        // Unbounded predicates (lo = −∞) hit the guarded Gaussian dh term.
        let (n, d) = (LANES * 2, 2);
        let rows = sample_rows(n, d, 41);
        let lo = [f64::NEG_INFINITY, 0.0];
        let hi = [0.5, f64::INFINITY];
        let bw = [0.3, 0.4];
        let kernel = KernelFn::Gaussian;
        let fused = with_cols(&rows, d, |view| {
            let mut out = vec![f64::NAN; n * (1 + d)];
            fused_strided_into(kernel, &view, &lo, &hi, &bw, &mut out, 1 + d, 0, true);
            out
        });
        let mut grad = vec![0.0; d];
        for (r, row) in rows.chunks_exact(d).enumerate() {
            let value = kernel.contribution_with_gradient(row, &lo, &hi, &bw, &mut grad);
            assert_close(fused[r * (1 + d)], value, &format!("r={r}"));
            for i in 0..d {
                assert_close(
                    fused[r * (1 + d) + 1 + i],
                    grad[i],
                    &format!("r={r} grad {i}"),
                );
            }
            assert!(fused[r * (1 + d)..][..1 + d].iter().all(|v| v.is_finite()));
        }
    }
}
