//! Mixed continuous/discrete kernel density models — the paper's §8
//! future-work item on "Support for Discrete and String Data".
//!
//! §8 observes that the published estimator already *degrades gracefully*
//! on discrete attributes ("the bandwidth optimization will observe that it
//! does not profit from increasing the bandwidth for discrete attributes
//! and therefore set it to a very small value. Effectively, this means that
//! the estimator automatically degrades to counting matching tuples") and
//! points to the statistics literature on KDE over mixed variables
//! [Li & Racine 2003] as the principled extension. This module implements
//! that extension: continuous dimensions keep the Gaussian range kernel
//! (eq. 13), discrete dimensions use the Aitchison–Aitken kernel
//!
//! ```text
//! K(t, x; λ) = 1 − λ         if x = t
//!            = λ / (c − 1)   otherwise,     λ ∈ [0, (c−1)/c]
//! ```
//!
//! whose range contribution is the sum of `K` over the category values
//! inside the query interval. `λ = 0` recovers exact counting; `λ > 0`
//! lends probability mass to categories missing from the sample.

use crate::kernel::KernelFn;
use kdesel_types::Rect;

/// Per-dimension attribute kind.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeKind {
    /// Real-valued; uses the continuous kernel with bandwidth `h`.
    Continuous,
    /// Categorical with the given (sorted, deduplicated) category values;
    /// uses the Aitchison–Aitken kernel with smoothing `λ`.
    Discrete(Vec<f64>),
}

/// A KDE model over mixed continuous/discrete attributes.
#[derive(Debug, Clone)]
pub struct MixedKde {
    sample: Vec<f64>,
    dims: usize,
    kinds: Vec<AttributeKind>,
    kernel: KernelFn,
    /// `h` for continuous dims, `λ` for discrete dims.
    params: Vec<f64>,
}

impl MixedKde {
    /// Builds the model. Continuous bandwidths start at Scott's rule;
    /// discrete smoothings start at a small default (0.05). Discrete
    /// category sets are inferred from the sample when the corresponding
    /// `kinds` entry carries an empty list.
    ///
    /// # Panics
    /// Panics on an empty/ragged sample or a kinds-arity mismatch.
    pub fn new(
        sample: &[f64],
        dims: usize,
        mut kinds: Vec<AttributeKind>,
        kernel: KernelFn,
    ) -> Self {
        assert!(dims > 0);
        assert!(!sample.is_empty(), "empty sample");
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        assert_eq!(kinds.len(), dims, "kinds arity mismatch");
        // Infer categories where requested.
        for (d, kind) in kinds.iter_mut().enumerate() {
            if let AttributeKind::Discrete(cats) = kind {
                if cats.is_empty() {
                    let mut vals: Vec<f64> = sample.iter().skip(d).step_by(dims).copied().collect();
                    vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                    vals.dedup();
                    *cats = vals;
                }
                assert!(
                    !matches!(kind, AttributeKind::Discrete(c) if c.is_empty()),
                    "no categories for discrete dim {d}"
                );
            }
        }
        let scott = crate::bandwidth::scott::scott_bandwidth(sample, dims);
        let params = kinds
            .iter()
            .zip(&scott)
            .map(|(kind, &h)| match kind {
                AttributeKind::Continuous => h,
                AttributeKind::Discrete(_) => 0.05,
            })
            .collect();
        Self {
            sample: sample.to_vec(),
            dims,
            kinds,
            kernel,
            params,
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Per-dimension parameters (`h` or `λ`).
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Sets one dimension's parameter.
    ///
    /// # Panics
    /// Panics when a continuous bandwidth is non-positive or a discrete
    /// smoothing leaves `[0, (c−1)/c]`.
    pub fn set_param(&mut self, dim: usize, value: f64) {
        match &self.kinds[dim] {
            AttributeKind::Continuous => {
                assert!(value > 0.0 && value.is_finite(), "bad bandwidth {value}");
            }
            AttributeKind::Discrete(cats) => {
                let max = (cats.len() as f64 - 1.0) / cats.len() as f64;
                assert!((0.0..=max).contains(&value), "λ {value} outside [0, {max}]");
            }
        }
        self.params[dim] = value;
    }

    /// Aitchison–Aitken range factor: mass the kernel at category `t`
    /// assigns to categories within `(lo, hi)`.
    fn discrete_factor(categories: &[f64], t: f64, lo: f64, hi: f64, lambda: f64) -> f64 {
        let c = categories.len() as f64;
        let mut mass = 0.0;
        for &v in categories {
            if v < lo || v > hi {
                continue;
            }
            mass += if v == t {
                1.0 - lambda
            } else if c > 1.0 {
                lambda / (c - 1.0)
            } else {
                0.0
            };
        }
        mass
    }

    /// Estimates the selectivity of `region`.
    pub fn estimate(&self, region: &Rect) -> f64 {
        assert_eq!(region.dims(), self.dims);
        let n = self.sample.len() / self.dims;
        let sum: f64 = self
            .sample
            .chunks_exact(self.dims)
            .map(|point| {
                let mut p = 1.0;
                for (d, &coord) in point.iter().enumerate() {
                    let (lo, hi) = region.interval(d);
                    p *= match &self.kinds[d] {
                        AttributeKind::Continuous => {
                            self.kernel.range_factor(coord, lo, hi, self.params[d])
                        }
                        AttributeKind::Discrete(cats) => {
                            Self::discrete_factor(cats, coord, lo, hi, self.params[d])
                        }
                    };
                    if p == 0.0 {
                        break;
                    }
                }
                p
            })
            .sum();
        (sum / n as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 2D sample: continuous uniform [0,100) × category {0,1,2} skewed 60/30/10.
    fn mixed_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n * 2);
        for _ in 0..n {
            out.push(rng.gen_range(0.0..100.0));
            let u: f64 = rng.gen();
            out.push(if u < 0.6 {
                0.0
            } else if u < 0.9 {
                1.0
            } else {
                2.0
            });
        }
        out
    }

    fn kinds() -> Vec<AttributeKind> {
        vec![
            AttributeKind::Continuous,
            AttributeKind::Discrete(Vec::new()), // infer categories
        ]
    }

    #[test]
    fn categories_are_inferred_from_sample() {
        let sample = mixed_sample(500, 1);
        let model = MixedKde::new(&sample, 2, kinds(), KernelFn::Gaussian);
        match &model.kinds[1] {
            AttributeKind::Discrete(cats) => assert_eq!(cats, &vec![0.0, 1.0, 2.0]),
            _ => panic!("dim 1 should be discrete"),
        }
    }

    #[test]
    fn aa_kernel_is_a_distribution_over_categories() {
        // Mass over ALL categories must be 1 for any λ.
        let cats = [0.0, 1.0, 2.0, 3.0];
        for lambda in [0.0, 0.1, 0.5, 0.75] {
            let m = MixedKde::discrete_factor(&cats, 2.0, -10.0, 10.0, lambda);
            assert!((m - 1.0).abs() < 1e-12, "λ={lambda}: mass {m}");
        }
    }

    #[test]
    fn lambda_zero_degrades_to_counting() {
        let sample = mixed_sample(400, 2);
        let mut model = MixedKde::new(&sample, 2, kinds(), KernelFn::Gaussian);
        model.set_param(1, 0.0);
        // Query: category exactly 1, all of the continuous dim.
        let q = Rect::from_intervals(&[(-1e3, 1e3), (0.5, 1.5)]);
        let est = model.estimate(&q);
        let truth = sample.chunks_exact(2).filter(|r| r[1] == 1.0).count() as f64 / 400.0;
        assert!((est - truth).abs() < 1e-9, "est {est} vs count {truth}");
    }

    #[test]
    fn positive_lambda_smooths_unseen_categories() {
        // Sample only contains categories {0,1}; the domain also has 2.
        let mut sample = mixed_sample(200, 3);
        for r in sample.chunks_exact_mut(2) {
            if r[1] == 2.0 {
                r[1] = 0.0;
            }
        }
        let kinds = vec![
            AttributeKind::Continuous,
            AttributeKind::Discrete(vec![0.0, 1.0, 2.0]),
        ];
        let mut model = MixedKde::new(&sample, 2, kinds, KernelFn::Gaussian);
        let unseen = Rect::from_intervals(&[(-1e3, 1e3), (1.5, 2.5)]);
        model.set_param(1, 0.0);
        assert_eq!(model.estimate(&unseen), 0.0, "counting gives zero");
        model.set_param(1, 0.1);
        assert!(
            model.estimate(&unseen) > 0.0,
            "smoothing must assign mass to the unseen category"
        );
    }

    #[test]
    fn continuous_dimension_still_behaves_like_kde() {
        let sample = mixed_sample(2000, 4);
        let model = MixedKde::new(&sample, 2, kinds(), KernelFn::Gaussian);
        // Half the continuous range, all categories → ≈ 0.5.
        let q = Rect::from_intervals(&[(0.0, 50.0), (-1.0, 3.0)]);
        let est = model.estimate(&q);
        assert!((est - 0.5).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn estimates_are_selectivities() {
        let sample = mixed_sample(300, 5);
        let model = MixedKde::new(&sample, 2, kinds(), KernelFn::Gaussian);
        for (a, b, c, d) in [
            (0.0, 10.0, 0.0, 0.0),
            (-5.0, 200.0, -1.0, 5.0),
            (40.0, 40.0, 1.0, 1.0),
        ] {
            let v = model.estimate(&Rect::from_intervals(&[(a, b), (c, d)]));
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn lambda_range_enforced() {
        let sample = mixed_sample(100, 6);
        let mut model = MixedKde::new(&sample, 2, kinds(), KernelFn::Gaussian);
        model.set_param(1, 0.9); // max for c=3 is 2/3
    }

    /// The §8 claim on the *published* estimator: the batch optimizer drives
    /// a discrete attribute's Gaussian bandwidth toward a very small value,
    /// degrading to counting.
    #[test]
    fn batch_optimizer_shrinks_bandwidth_on_discrete_attribute() {
        use crate::bandwidth::batch::{optimize_bandwidth, BatchConfig};
        use crate::estimator::KdeEstimator;
        use kdesel_device::{Backend, Device};
        use kdesel_types::LabelledQuery;

        let mut rng = StdRng::seed_from_u64(7);
        // dim 0 continuous, dim 1 binary {0, 10}.
        let rows = 4000;
        let mut data = Vec::new();
        for _ in 0..rows {
            data.push(rng.gen_range(0.0f64..100.0));
            data.push(if rng.gen_bool(0.5) { 0.0 } else { 10.0 });
        }
        let sample: Vec<f64> = data[..2 * 256].to_vec();
        let estimator =
            KdeEstimator::new(Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
        let scott = estimator.bandwidth().to_vec();

        // Training queries that isolate single categories.
        let mut train = Vec::new();
        for i in 0..60 {
            let cat = if i % 2 == 0 { 0.0 } else { 10.0 };
            let c0: f64 = rng.gen_range(10.0..90.0);
            let region = Rect::from_intervals(&[(c0 - 10.0, c0 + 10.0), (cat - 1.0, cat + 1.0)]);
            let sel =
                data.chunks_exact(2).filter(|r| region.contains(r)).count() as f64 / rows as f64;
            train.push(LabelledQuery::new(region, sel));
        }
        let result = optimize_bandwidth(&estimator, &train, &BatchConfig::default(), &mut rng);
        // The discrete dimension's bandwidth must shrink far below Scott's
        // (categories are 10 apart; anything ≲ 1 behaves like counting).
        assert!(
            result.bandwidth[1] < scott[1] * 0.5,
            "discrete bw {} vs scott {}",
            result.bandwidth[1],
            scott[1]
        );
        assert!(result.bandwidth[1] < 2.0, "bw {}", result.bandwidth[1]);
    }
}
