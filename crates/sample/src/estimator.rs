//! The naive sample-based selectivity estimator.
//!
//! §2.3 of the paper contrasts KDE with "methods that 'naïvely' evaluate
//! the query on a sample [Larson et al., Lipton et al.]" and notes KDE "has
//! been shown to consistently offer superior estimation quality". This is
//! that baseline: count the sample points falling into the region and
//! divide by the sample size — equivalently, a KDE whose bandwidth is zero.
//! Its weakness is variance: with `s` points the estimate is quantized to
//! multiples of `1/s`, and low-selectivity queries frequently hit zero
//! sampled tuples. (The KDE-vs-sampling comparison itself lives in the
//! workspace integration tests and the `baselines_extra` bench.)

use kdesel_types::{QueryFeedback, Rect, SelectivityEstimator};

/// Sample-counting estimator.
#[derive(Debug, Clone)]
pub struct SampleEstimator {
    sample: Vec<f64>,
    dims: usize,
}

impl SampleEstimator {
    /// Wraps a row-major sample.
    ///
    /// # Panics
    /// Panics on an empty or ragged sample.
    pub fn new(sample: &[f64], dims: usize) -> Self {
        assert!(dims > 0);
        assert!(!sample.is_empty(), "empty sample");
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        Self {
            sample: sample.to_vec(),
            dims,
        }
    }

    /// Sample size.
    pub fn sample_size(&self) -> usize {
        self.sample.len() / self.dims
    }

    /// Fraction of sample points inside `region`.
    pub fn estimate(&self, region: &Rect) -> f64 {
        assert_eq!(region.dims(), self.dims);
        let hits = self
            .sample
            .chunks_exact(self.dims)
            .filter(|row| region.contains(row))
            .count();
        hits as f64 / self.sample_size() as f64
    }

    /// Replaces one sample point (so the estimator can share the reservoir
    /// maintenance path).
    pub fn replace_point(&mut self, index: usize, row: &[f64]) {
        assert!(index < self.sample_size());
        assert_eq!(row.len(), self.dims);
        self.sample[index * self.dims..(index + 1) * self.dims].copy_from_slice(row);
    }
}

impl SelectivityEstimator for SampleEstimator {
    fn estimate(&mut self, region: &Rect) -> f64 {
        SampleEstimator::estimate(self, region)
    }
    fn observe(&mut self, _feedback: &QueryFeedback) {}
    fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.sample.as_slice())
    }
    fn name(&self) -> &str {
        "sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counts_exactly() {
        let sample = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let est = SampleEstimator::new(&sample, 2);
        assert_eq!(est.estimate(&Rect::cube(2, 0.5, 2.5)), 0.5);
        assert_eq!(est.estimate(&Rect::cube(2, 10.0, 11.0)), 0.0);
        assert_eq!(est.estimate(&Rect::cube(2, -1.0, 4.0)), 1.0);
    }

    #[test]
    fn estimates_are_quantized_to_sample_granularity() {
        let mut rng = StdRng::seed_from_u64(1);
        let sample: Vec<f64> = (0..64).map(|_| rng.gen_range(0.0..1.0)).collect();
        let est = SampleEstimator::new(&sample, 1);
        let v = est.estimate(&Rect::from_intervals(&[(0.0, 0.31)]));
        let quantum = v * 64.0;
        assert!((quantum - quantum.round()).abs() < 1e-12, "{v} not k/64");
    }

    #[test]
    fn replace_point_updates_counts() {
        let sample = vec![0.0, 10.0, 20.0, 30.0];
        let mut est = SampleEstimator::new(&sample, 1);
        let q = Rect::from_intervals(&[(100.0, 200.0)]);
        assert_eq!(est.estimate(&q), 0.0);
        est.replace_point(2, &[150.0]);
        assert_eq!(SampleEstimator::estimate(&est, &q), 0.25);
    }

    #[test]
    fn trait_surface() {
        let mut est = SampleEstimator::new(&[1.0, 2.0], 1);
        assert_eq!(SelectivityEstimator::name(&est), "sampling");
        assert_eq!(SelectivityEstimator::memory_bytes(&est), 16);
        let v = SelectivityEstimator::estimate(&mut est, &Rect::from_intervals(&[(0.0, 1.5)]));
        assert_eq!(v, 0.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        SampleEstimator::new(&[], 1);
    }
}
