//! Sample maintenance under insert streams.
//!
//! For insert-only workloads the paper keeps the GPU-resident sample fresh
//! with reservoir sampling (§4.2): "Reservoir sampling adds newly inserted
//! data to the sample with probability |S|/|R|, replacing a random point in
//! the process. It is optimal with regard to transfers, as all decisions are
//! made independently by the host and only points that will end up in the
//! sample are transferred to the graphics card."
//!
//! * [`ReservoirSampler`] — the per-insert decision procedure (Vitter's
//!   Algorithm R), returning *which slot to overwrite* so the caller can
//!   schedule a single transfer,
//! * [`SkipSampler`] — Vitter's Algorithm Z, which draws the number of
//!   stream records to skip between replacements in O(1) expected time,
//! * [`StreamSampler`] — an owning convenience wrapper that materializes a
//!   uniform sample from any stream (used by tests and dataset tooling).

pub mod estimator;
pub mod reservoir;

pub use estimator::SampleEstimator;
pub use reservoir::{ReservoirDecision, ReservoirSampler, SkipSampler, StreamSampler};
