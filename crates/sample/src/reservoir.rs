//! Reservoir sampling [Vitter, *Random sampling with a reservoir*, TOMS 1985].
//!
//! Two interchangeable decision procedures are provided:
//!
//! * [`ReservoirSampler`] — Algorithm R: one uniform draw per stream record,
//!   the textbook method the paper describes in §4.2,
//! * [`SkipSampler`] — the skip-count formulation (Vitter's Algorithm X):
//!   draws how many records to *skip* until the next replacement, needing
//!   one uniform draw per **accepted** record instead of per stream record.
//!   (Vitter's Algorithm Z accelerates X with rejection sampling; the output
//!   distribution is identical, and X's sequential search is already
//!   negligible next to the table scan it piggybacks on.)
//!
//! Both return *slot replacement decisions* rather than owning the sample:
//! in the paper the sample lives on the GPU, and "only points that will end
//! up in the sample are transferred", so the host-side decision and the
//! device-side write are deliberately separated.

use rand::Rng;

/// Decision for one newly inserted tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservoirDecision {
    /// The tuple does not enter the sample.
    Skip,
    /// The tuple replaces the sample point in this slot.
    Replace(usize),
}

/// Algorithm R decision procedure for a full reservoir of `capacity` points.
///
/// Construct it once the initial sample (e.g. from `ANALYZE`) is in place,
/// with `seen` equal to the relation size the sample was drawn from; each
/// subsequent insert calls [`observe`](Self::observe).
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    capacity: usize,
    seen: u64,
}

impl ReservoirSampler {
    /// Creates the decision procedure.
    ///
    /// `seen` is the number of stream records already represented by the
    /// current sample (at least `capacity`).
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `seen < capacity`.
    pub fn new(capacity: usize, seen: u64) -> Self {
        assert!(capacity > 0, "empty reservoir");
        assert!(
            seen >= capacity as u64,
            "sample cannot represent fewer records than its size"
        );
        Self { capacity, seen }
    }

    /// Reservoir capacity `|S|`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stream records observed so far (`|R|` for an insert-only relation).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Decides the fate of the next inserted tuple: include it with
    /// probability `|S|/|R|`, replacing a uniformly chosen slot.
    pub fn observe<R: Rng + ?Sized>(&mut self, rng: &mut R) -> ReservoirDecision {
        self.seen += 1;
        let j = rng.gen_range(0..self.seen);
        if j < self.capacity as u64 {
            ReservoirDecision::Replace(j as usize)
        } else {
            ReservoirDecision::Skip
        }
    }
}

/// Skip-count decision procedure (Vitter's Algorithm X).
///
/// [`next_skip`](Self::next_skip) returns how many upcoming records to
/// discard; the record after the skipped run replaces a uniform slot.
#[derive(Debug, Clone)]
pub struct SkipSampler {
    capacity: u64,
    seen: u64,
}

impl SkipSampler {
    /// Creates the skip sampler; arguments as for [`ReservoirSampler::new`].
    pub fn new(capacity: usize, seen: u64) -> Self {
        assert!(capacity > 0, "empty reservoir");
        assert!(seen >= capacity as u64);
        Self {
            capacity: capacity as u64,
            seen,
        }
    }

    /// Stream records represented so far (accepted record included).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Draws the number of records to skip before the next acceptance, and
    /// the slot the accepted record replaces. Advances internal state past
    /// the skipped run and the accepted record.
    pub fn next_skip<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (u64, usize) {
        // Algorithm X: find the smallest s ≥ 0 with
        //   ∏_{i=0..s} (t+1+i−n)/(t+1+i) ≤ V,  V ~ U(0,1),
        // i.e. the probability that records t+1 .. t+1+s all miss the sample
        // has dropped below V.
        let n = self.capacity;
        let v: f64 = rng.gen_range(0.0..1.0);
        let mut s = 0u64;
        let mut t = self.seen;
        let mut quot = (t + 1 - n) as f64 / (t + 1) as f64;
        while quot > v {
            s += 1;
            t += 1;
            quot *= (t + 1 - n) as f64 / (t + 1) as f64;
        }
        self.seen += s + 1;
        let slot = rng.gen_range(0..n) as usize;
        (s, slot)
    }
}

/// Owning reservoir: builds a uniform `capacity`-point sample from a stream
/// of `d`-dimensional rows. Convenience wrapper used by tests and tooling.
#[derive(Debug, Clone)]
pub struct StreamSampler {
    dims: usize,
    capacity: usize,
    /// Row-major sample storage.
    sample: Vec<f64>,
    seen: u64,
}

impl StreamSampler {
    /// Creates an empty sampler.
    pub fn new(dims: usize, capacity: usize) -> Self {
        assert!(dims > 0 && capacity > 0);
        Self {
            dims,
            capacity,
            sample: Vec::with_capacity(dims * capacity),
            seen: 0,
        }
    }

    /// Feeds one row.
    pub fn push<R: Rng + ?Sized>(&mut self, row: &[f64], rng: &mut R) {
        assert_eq!(row.len(), self.dims);
        self.seen += 1;
        let filled = self.sample.len() / self.dims;
        if filled < self.capacity {
            self.sample.extend_from_slice(row);
            return;
        }
        let j = rng.gen_range(0..self.seen);
        if j < self.capacity as u64 {
            let base = j as usize * self.dims;
            self.sample[base..base + self.dims].copy_from_slice(row);
        }
    }

    /// Rows seen so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample (row-major; shorter than capacity until filled).
    pub fn sample(&self) -> &[f64] {
        &self.sample
    }

    /// Consumes the sampler, returning the sample.
    pub fn into_sample(self) -> Vec<f64> {
        self.sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn acceptance_probability_is_s_over_r() {
        // After seeing t records, the next record enters with prob s/(t+1).
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 200_000;
        let mut accepted = 0;
        for _ in 0..trials {
            let mut r = ReservoirSampler::new(10, 99);
            if matches!(r.observe(&mut rng), ReservoirDecision::Replace(_)) {
                accepted += 1;
            }
        }
        let p = accepted as f64 / trials as f64;
        assert!((p - 0.1).abs() < 0.005, "acceptance rate {p}");
    }

    #[test]
    fn replacement_slots_are_uniform() {
        // Fresh sampler per draw: with seen = 5 the next record replaces
        // with probability 5/6, and the chosen slot must be uniform.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 5];
        let mut n = 0;
        while n < 50_000 {
            let mut r = ReservoirSampler::new(5, 5);
            if let ReservoirDecision::Replace(slot) = r.observe(&mut rng) {
                counts[slot] += 1;
                n += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..=11_000).contains(&c), "slot {i}: {c}");
        }
    }

    #[test]
    fn stream_sampler_produces_uniform_samples() {
        // Sample 10 of 100 streamed values many times; each value should be
        // retained with probability 1/10.
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 100];
        let reps = 5_000;
        for _ in 0..reps {
            let mut s = StreamSampler::new(1, 10);
            for i in 0..100 {
                s.push(&[i as f64], &mut rng);
            }
            for &v in s.sample() {
                counts[v as usize] += 1;
            }
        }
        // Expected 500 per value; allow ±30%.
        for (i, &c) in counts.iter().enumerate() {
            assert!((350..=650).contains(&c), "value {i} retained {c} times");
        }
    }

    #[test]
    fn skip_sampler_matches_algorithm_r_distribution() {
        // Drive a length-1000 stream with both algorithms; compare per-value
        // inclusion frequencies.
        let reps = 3_000;
        let n = 8;
        let stream_len = 1000u64;
        let mut rng = StdRng::seed_from_u64(4);

        let mut incl_r = vec![0u32; stream_len as usize];
        for _ in 0..reps {
            let mut sample: Vec<u64> = (0..n as u64).collect();
            let mut r = ReservoirSampler::new(n, n as u64);
            for rec in n as u64..stream_len {
                if let ReservoirDecision::Replace(slot) = r.observe(&mut rng) {
                    sample[slot] = rec;
                }
            }
            for &v in &sample {
                incl_r[v as usize] += 1;
            }
        }

        let mut incl_x = vec![0u32; stream_len as usize];
        for _ in 0..reps {
            let mut sample: Vec<u64> = (0..n as u64).collect();
            let mut x = SkipSampler::new(n, n as u64);
            let mut pos = n as u64; // next unseen record index
            loop {
                let (skip, slot) = x.next_skip(&mut rng);
                let accept = pos + skip;
                if accept >= stream_len {
                    break;
                }
                sample[slot] = accept;
                pos = accept + 1;
            }
            for &v in &sample {
                incl_x[v as usize] += 1;
            }
        }

        // Every record should be included with probability n/stream_len.
        let expected = reps as f64 * n as f64 / stream_len as f64; // = 24
        let mean_r = incl_r.iter().map(|&c| c as f64).sum::<f64>() / stream_len as f64;
        let mean_x = incl_x.iter().map(|&c| c as f64).sum::<f64>() / stream_len as f64;
        assert!((mean_r - expected).abs() < 1.0, "R mean {mean_r}");
        assert!((mean_x - expected).abs() < 1.0, "X mean {mean_x}");
        // Early vs late stream positions must be included equally often.
        let first_half_x: u32 = incl_x[..500].iter().sum();
        let second_half_x: u32 = incl_x[500..].iter().sum();
        let ratio = first_half_x as f64 / second_half_x as f64;
        assert!((0.9..=1.1).contains(&ratio), "X halves ratio {ratio}");
    }

    #[test]
    fn skip_sampler_advances_state() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = SkipSampler::new(4, 4);
        let before = x.seen();
        let (skip, slot) = x.next_skip(&mut rng);
        assert_eq!(x.seen(), before + skip + 1);
        assert!(slot < 4);
    }

    #[test]
    fn stream_sampler_fills_before_replacing() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = StreamSampler::new(2, 3);
        for i in 0..3 {
            s.push(&[i as f64, 0.0], &mut rng);
        }
        assert_eq!(s.sample(), &[0.0, 0.0, 1.0, 0.0, 2.0, 0.0]);
        assert_eq!(s.seen(), 3);
    }

    #[test]
    #[should_panic(expected = "empty reservoir")]
    fn zero_capacity_rejected() {
        ReservoirSampler::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "fewer records")]
    fn seen_below_capacity_rejected() {
        ReservoirSampler::new(10, 5);
    }
}
