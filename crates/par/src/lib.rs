//! Deterministic data-parallel helpers on scoped `std` threads.
//!
//! The workspace previously leaned on `rayon` for its data-parallel
//! backends; this crate replaces the subset it used with `std::thread`
//! scoped fan-out, with one property rayon does not guarantee:
//! **determinism independent of thread count**. Work is split into
//! *fixed* contiguous chunks (`CHUNKS`, not `available_parallelism`),
//! chunk results are combined in chunk order, and element outputs land at
//! their input index — so a run on 1 core and a run on 64 cores produce
//! bit-identical results. That matches the device layer's pairwise-sum
//! discipline (all backends agree bitwise) and keeps every experiment
//! reproducible.
//!
//! Tiny inputs skip thread spawning entirely: below
//! [`PARALLEL_THRESHOLD`] items the helpers run inline, so the kernel
//! launch overhead modeled by `kdesel-device` is not drowned in real
//! thread overhead on the hot small-query path.
//!
//! The device layer's *fused* kernels (`map_rows_reduce`,
//! `map_rows_multi_reduce`, `map_rows_batch`) lean on the same guarantee
//! from the other direction: because `par_map_collect` /
//! `par_for_each_row_mut` place every output at its input index
//! regardless of scheduling, a fused launch feeds the pairwise reduction
//! the exact element order the unfused two-launch path would — which is
//! what makes fused-vs-unfused bit-identity a structural property rather
//! than a numerical accident.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fixed chunk count for reductions — determinism demands this never
/// depend on the machine's core count.
pub const CHUNKS: usize = 64;

/// Inputs shorter than this run inline on the calling thread.
pub const PARALLEL_THRESHOLD: usize = 2048;

/// Number of worker threads to fan out to (cached).
fn workers() -> usize {
    static WORKERS: AtomicUsize = AtomicUsize::new(0);
    let cached = WORKERS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    WORKERS.store(n, Ordering::Relaxed);
    n
}

/// Splits `len` items into at most `pieces` contiguous ranges.
fn ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.clamp(1, len.max(1));
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Maps `f` over `0..len`, collecting results in index order.
///
/// Deterministic: output position `i` always holds `f(i)`.
pub fn par_map_collect<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if len < PARALLEL_THRESHOLD || workers() == 1 {
        return (0..len).map(f).collect();
    }
    let mut pieces: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges(len, workers())
            .into_iter()
            .map(|range| scope.spawn(|| range.map(&f).collect::<Vec<T>>()))
            .collect();
        pieces = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    let mut out = Vec::with_capacity(len);
    for piece in pieces {
        out.extend(piece);
    }
    out
}

/// Calls `f(i, &mut items[i])` for every element, in parallel over
/// contiguous sub-slices.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if len < PARALLEL_THRESHOLD || workers() == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let splits = ranges(len, workers());
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut offset = 0;
        for range in splits {
            let (head, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let base = offset;
            offset += range.len();
            let f = &f;
            scope.spawn(move || {
                for (i, item) in head.iter_mut().enumerate() {
                    f(base + i, item);
                }
            });
        }
    });
}

/// Calls `f(row_index, &mut out[row*width..][..width])` for every
/// `width`-wide output row, in parallel over contiguous row ranges.
///
/// # Panics
/// Panics when `out.len()` is not a multiple of `width`.
pub fn par_for_each_row_mut<T, F>(out: &mut [T], width: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(width > 0, "zero row width");
    assert_eq!(out.len() % width, 0, "ragged row buffer");
    let rows = out.len() / width;
    if rows < PARALLEL_THRESHOLD || workers() == 1 {
        for (i, row) in out.chunks_exact_mut(width).enumerate() {
            f(i, row);
        }
        return;
    }
    let splits = ranges(rows, workers());
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut row_offset = 0;
        for range in splits {
            let (head, tail) = rest.split_at_mut(range.len() * width);
            rest = tail;
            let base = row_offset;
            row_offset += range.len();
            let f = &f;
            scope.spawn(move || {
                for (i, row) in head.chunks_exact_mut(width).enumerate() {
                    f(base + i, row);
                }
            });
        }
    });
}

/// Calls `f(block_index, &mut out[block*block_elems..])` for every
/// contiguous block of at most `block_elems` elements — the trailing
/// block may be shorter. Blocks are fixed by `block_elems` alone (never
/// by worker count), so a 1-core and a 64-core run see identical block
/// boundaries; each block's output is written by exactly one thread.
///
/// This is the dispatch shape of the cache-blocked columnar sweeps: the
/// device layer hands each block of rows to the vectorized kernel as one
/// unit-stride stripe.
///
/// # Panics
/// Panics when `block_elems` is zero.
pub fn par_for_each_block_mut<T, F>(out: &mut [T], block_elems: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(block_elems > 0, "zero block size");
    let len = out.len();
    if len < PARALLEL_THRESHOLD || workers() == 1 {
        for (i, block) in out.chunks_mut(block_elems).enumerate() {
            f(i, block);
        }
        return;
    }
    let blocks = len.div_ceil(block_elems);
    let splits = ranges(blocks, workers());
    std::thread::scope(|scope| {
        let mut rest = out;
        for range in splits {
            if range.is_empty() {
                continue;
            }
            let elems = (range.len() * block_elems).min(rest.len());
            let (head, tail) = rest.split_at_mut(elems);
            rest = tail;
            let base = range.start;
            let f = &f;
            scope.spawn(move || {
                for (i, block) in head.chunks_mut(block_elems).enumerate() {
                    f(base + i, block);
                }
            });
        }
    });
}

/// Parallel map-reduce with an explicit accumulator combiner (the shape
/// `rayon`'s `map(..).reduce(identity, combine)` had). Deterministic:
/// fixed chunking, in-order combination.
pub fn par_map_combine<A, M, C, I>(len: usize, identity: I, map: M, combine: C) -> A
where
    A: Send,
    M: Fn(usize) -> A + Sync,
    C: Fn(A, A) -> A + Sync,
    I: Fn() -> A + Sync,
{
    let chunks = ranges(len, CHUNKS.min(len.max(1)));
    let chunk_results: Vec<A> = if len < PARALLEL_THRESHOLD || workers() == 1 {
        chunks
            .into_iter()
            .map(|range| range.map(&map).fold(identity(), &combine))
            .collect()
    } else {
        let thread_loads = ranges(chunks.len(), workers());
        let mut per_thread: Vec<Vec<A>> = Vec::new();
        std::thread::scope(|scope| {
            let chunks = &chunks;
            let map = &map;
            let combine = &combine;
            let identity = &identity;
            let handles: Vec<_> = thread_loads
                .into_iter()
                .map(|load| {
                    scope.spawn(move || {
                        chunks[load]
                            .iter()
                            .map(|range| range.clone().map(map).fold(identity(), combine))
                            .collect::<Vec<A>>()
                    })
                })
                .collect();
            per_thread = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        per_thread.into_iter().flatten().collect()
    };
    chunk_results.into_iter().fold(identity(), combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_matches_sequential() {
        for len in [0, 1, 100, PARALLEL_THRESHOLD + 7] {
            let par = par_map_collect(len, |i| i * 3);
            let seq: Vec<usize> = (0..len).map(|i| i * 3).collect();
            assert_eq!(par, seq, "len {len}");
        }
    }

    #[test]
    fn for_each_mut_visits_every_index_once() {
        let mut items = vec![0u64; PARALLEL_THRESHOLD * 3 + 5];
        par_for_each_mut(&mut items, |i, v| *v = i as u64 + 1);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn row_helper_writes_disjoint_rows() {
        let width = 3;
        let rows = PARALLEL_THRESHOLD + 11;
        let mut out = vec![0.0f64; rows * width];
        par_for_each_row_mut(&mut out, width, |i, row| {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (i * width + j) as f64;
            }
        });
        for (k, &v) in out.iter().enumerate() {
            assert_eq!(v, k as f64);
        }
    }

    #[test]
    fn block_helper_covers_ragged_tail_exactly_once() {
        for (len, block) in [
            (0usize, 7usize),
            (5, 7),
            (PARALLEL_THRESHOLD * 2 + 13, 512),
            (PARALLEL_THRESHOLD, PARALLEL_THRESHOLD),
        ] {
            let mut out = vec![0.0f64; len];
            par_for_each_block_mut(&mut out, block, |b, chunk| {
                for (j, cell) in chunk.iter_mut().enumerate() {
                    *cell += (b * block + j) as f64 + 1.0;
                }
            });
            for (k, &v) in out.iter().enumerate() {
                assert_eq!(v, k as f64 + 1.0, "len {len} block {block} idx {k}");
            }
        }
    }

    #[test]
    fn map_combine_is_deterministic_and_correct() {
        let len = PARALLEL_THRESHOLD * 2 + 3;
        let a = par_map_combine(len, || 0.0f64, |i| (i as f64).sin(), |x, y| x + y);
        let b = par_map_combine(len, || 0.0f64, |i| (i as f64).sin(), |x, y| x + y);
        assert_eq!(a, b, "two parallel runs disagree");
        // Matches the fixed-chunk sequential fold (NOT the naive
        // left-to-right sum — chunking changes float association).
        let seq: f64 = ranges(len, CHUNKS)
            .into_iter()
            .map(|r| r.map(|i| (i as f64).sin()).sum::<f64>())
            .fold(0.0, |x, y| x + y);
        assert_eq!(a, seq);
    }

    #[test]
    fn small_inputs_stay_inline() {
        // Just exercises the inline path for coverage of both branches.
        let v = par_map_collect(10, |i| i);
        assert_eq!(v, (0..10).collect::<Vec<_>>());
        let s = par_map_combine(10, || 0usize, |i| i, |a, b| a + b);
        assert_eq!(s, 45);
    }

    #[test]
    fn ranges_partition_exactly() {
        for (len, pieces) in [(10, 3), (0, 4), (5, 8), (100, 7)] {
            let rs = ranges(len, pieces);
            let mut expect = 0;
            for r in &rs {
                assert_eq!(r.start, expect);
                expect = r.end;
            }
            assert_eq!(expect, len);
        }
    }
}
