//! Uniform random sampling of live rows — the `ANALYZE` entry point.
//!
//! The paper's model construction "utilize[s] Postgres' internal routines to
//! collect a random sample of the requested size" (§5.2). These functions
//! provide the equivalent: a uniform sample (without replacement) of the
//! live rows of a [`Table`], plus single-row draws used when the Karma
//! maintenance requests replacement points.

use crate::table::{RowId, Table};
use rand::seq::SliceRandom;
use rand::Rng;

/// Draws a uniform sample of `n` distinct live rows, returned row-major.
///
/// When fewer than `n` live rows exist, all of them are returned (shuffled).
/// Uses a Fisher–Yates partial shuffle over the live slot list — O(live)
/// setup, O(n) draws.
pub fn sample_rows<R: Rng + ?Sized>(table: &Table, n: usize, rng: &mut R) -> Vec<f64> {
    let dims = table.dims();
    let mut slots: Vec<RowId> = table.rows().map(|(id, _)| id).collect();
    let take = n.min(slots.len());
    let (chosen, _) = slots.partial_shuffle(rng, take);
    let mut out = Vec::with_capacity(take * dims);
    for &slot in chosen.iter() {
        out.extend_from_slice(table.row(slot).expect("live slot"));
    }
    out
}

/// Draws one uniform live row (`None` for an empty table).
pub fn sample_one<R: Rng + ?Sized>(table: &Table, rng: &mut R) -> Option<Vec<f64>> {
    if table.is_empty() {
        return None;
    }
    // Rejection sampling over slots: the live fraction is ≥ 1/2 amortized in
    // typical workloads (free slots are recycled first), so this terminates
    // quickly; fall back to materializing after many misses.
    for _ in 0..64 {
        let slot = rng.gen_range(0..table.slot_count());
        if let Some(row) = table.row(slot) {
            return Some(row.to_vec());
        }
    }
    let slots: Vec<RowId> = table.rows().map(|(id, _)| id).collect();
    let slot = *slots.as_slice().choose(rng)?;
    table.row(slot).map(|r| r.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table_0_to_99() -> Table {
        let mut t = Table::new(1);
        for i in 0..100 {
            t.insert(&[i as f64]);
        }
        t
    }

    #[test]
    fn sample_size_and_distinctness() {
        let t = table_0_to_99();
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_rows(&t, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let mut vals = s.clone();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        assert_eq!(vals.len(), 10, "sampling must be without replacement");
    }

    #[test]
    fn oversampling_returns_everything() {
        let t = table_0_to_99();
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_rows(&t, 1000, &mut rng);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn empty_table_yields_empty_sample() {
        let t = Table::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_rows(&t, 5, &mut rng).is_empty());
        assert!(sample_one(&t, &mut rng).is_none());
    }

    #[test]
    fn sample_skips_tombstones() {
        let mut t = table_0_to_99();
        // Delete everything below 90.
        for slot in 0..90 {
            t.delete(slot);
        }
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let row = sample_one(&t, &mut rng).unwrap();
            assert!(row[0] >= 90.0, "sampled deleted row {row:?}");
        }
        let s = sample_rows(&t, 10, &mut rng);
        assert!(s.iter().all(|&v| v >= 90.0));
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // χ²-style sanity bound: sample 10 of 100 rows, 2000 times; each row
        // should be picked ≈200 times. Allow ±40%.
        let t = table_0_to_99();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 100];
        for _ in 0..2000 {
            for v in sample_rows(&t, 10, &mut rng) {
                counts[v as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((120..=280).contains(&c), "row {i} drawn {c} times");
        }
    }

    #[test]
    fn sample_one_mostly_live_fastpath() {
        let mut t = Table::new(1);
        for i in 0..10 {
            t.insert(&[i as f64]);
        }
        t.delete(0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen_min = f64::INFINITY;
        for _ in 0..100 {
            let v = sample_one(&t, &mut rng).unwrap()[0];
            assert!(v >= 1.0);
            seen_min = seen_min.min(v);
        }
        assert_eq!(seen_min, 1.0, "live rows should all be reachable");
    }
}
