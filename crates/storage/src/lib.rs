//! Miniature in-memory relational substrate.
//!
//! The paper integrates its estimator into Postgres 9.3.1, using the host
//! database for exactly three things: collecting random samples (`ANALYZE`,
//! §5.2), observing the update stream (reservoir sampling & Karma
//! maintenance, §4.2/§5.6), and producing true selectivities as query
//! feedback (§4.1). This crate provides those three interfaces over an
//! in-memory table of real-valued attributes:
//!
//! * [`Table`] — row-major storage with insert/delete/update, full-scan
//!   range counting, and tombstone-based row identity,
//! * [`TableEvent`] — a drainable change log the maintenance layer consumes
//!   (standing in for Postgres' trigger notifications),
//! * [`sampling`] — uniform random sampling of live rows (standing in for
//!   Postgres' `ANALYZE` row sampling).

pub mod events;
pub mod sampling;
pub mod table;

pub use events::TableEvent;
pub use table::{RowId, Table};
