//! In-memory relation with real-valued attributes.

use crate::events::TableEvent;
use kdesel_types::Rect;

/// Stable identifier of a row slot.
///
/// Slots of deleted rows are recycled by later inserts, so a `RowId` only
/// identifies a live row until that row is deleted (the same contract as a
/// Postgres TID without VACUUM concerns).
pub type RowId = usize;

/// A `d`-column relation of `f64` attributes, stored row-major.
///
/// Row-major layout matches the paper's sample buffer representation
/// (§5.1: "the row-major format allows us to efficiently update points in
/// the sample using only a single PCI Express transfer") and makes
/// whole-row reads and writes contiguous.
#[derive(Debug, Clone)]
pub struct Table {
    dims: usize,
    /// Row-major attribute storage; slot `i` occupies `i·dims .. (i+1)·dims`.
    data: Vec<f64>,
    /// Liveness per slot (false = tombstone).
    live: Vec<bool>,
    /// Recycled slots available for reuse.
    free: Vec<RowId>,
    /// Number of live rows.
    row_count: usize,
    /// Change log, populated only when event recording is on.
    events: Vec<TableEvent>,
    events_enabled: bool,
}

impl Table {
    /// Creates an empty table with `dims` attributes.
    ///
    /// # Panics
    /// Panics for `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "table needs at least one attribute");
        Self {
            dims,
            data: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            row_count: 0,
            events: Vec::new(),
            events_enabled: false,
        }
    }

    /// Creates a table and bulk-loads `rows` (row-major).
    ///
    /// # Panics
    /// Panics if `rows.len()` is not a multiple of `dims`.
    pub fn from_rows(dims: usize, rows: &[f64]) -> Self {
        assert_eq!(rows.len() % dims, 0, "ragged row data");
        let mut t = Self::new(dims);
        t.data.extend_from_slice(rows);
        let n = rows.len() / dims;
        t.live = vec![true; n];
        t.row_count = n;
        t
    }

    /// Number of attributes `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live rows `|R|`.
    #[inline]
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Number of slots (live + tombstoned); the upper bound for `RowId`s.
    pub fn slot_count(&self) -> usize {
        self.live.len()
    }

    /// Starts recording change events (drained via
    /// [`drain_events`](Self::drain_events)).
    pub fn enable_events(&mut self) {
        self.events_enabled = true;
    }

    /// Stops recording and discards any pending events.
    pub fn disable_events(&mut self) {
        self.events_enabled = false;
        self.events.clear();
    }

    /// Removes and returns all recorded events since the last drain.
    pub fn drain_events(&mut self) -> Vec<TableEvent> {
        std::mem::take(&mut self.events)
    }

    /// Inserts a row, returning its slot id.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch or NaN attributes.
    pub fn insert(&mut self, row: &[f64]) -> RowId {
        assert_eq!(row.len(), self.dims, "row dimensionality mismatch");
        assert!(row.iter().all(|v| !v.is_nan()), "NaN attribute");
        let id = if let Some(slot) = self.free.pop() {
            let base = slot * self.dims;
            self.data[base..base + self.dims].copy_from_slice(row);
            self.live[slot] = true;
            slot
        } else {
            self.data.extend_from_slice(row);
            self.live.push(true);
            self.live.len() - 1
        };
        self.row_count += 1;
        if self.events_enabled {
            self.events.push(TableEvent::Inserted {
                row: id,
                values: row.to_vec(),
            });
        }
        id
    }

    /// Bulk insert of row-major data; returns the ids in order.
    pub fn insert_many(&mut self, rows: &[f64]) -> Vec<RowId> {
        assert_eq!(rows.len() % self.dims, 0, "ragged row data");
        rows.chunks_exact(self.dims)
            .map(|r| self.insert(r))
            .collect()
    }

    /// Deletes the row in `slot`. Returns `false` when the slot is already
    /// dead or out of range.
    pub fn delete(&mut self, slot: RowId) -> bool {
        if slot >= self.live.len() || !self.live[slot] {
            return false;
        }
        self.live[slot] = false;
        self.free.push(slot);
        self.row_count -= 1;
        if self.events_enabled {
            let base = slot * self.dims;
            self.events.push(TableEvent::Deleted {
                row: slot,
                values: self.data[base..base + self.dims].to_vec(),
            });
        }
        true
    }

    /// Overwrites the row in `slot`. Returns `false` when the slot is dead.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch or NaN attributes.
    pub fn update(&mut self, slot: RowId, row: &[f64]) -> bool {
        assert_eq!(row.len(), self.dims, "row dimensionality mismatch");
        assert!(row.iter().all(|v| !v.is_nan()), "NaN attribute");
        if slot >= self.live.len() || !self.live[slot] {
            return false;
        }
        let base = slot * self.dims;
        if self.events_enabled {
            self.events.push(TableEvent::Updated {
                row: slot,
                old: self.data[base..base + self.dims].to_vec(),
                new: row.to_vec(),
            });
        }
        self.data[base..base + self.dims].copy_from_slice(row);
        true
    }

    /// Returns the row in `slot`, or `None` when dead/out of range.
    pub fn row(&self, slot: RowId) -> Option<&[f64]> {
        if slot < self.live.len() && self.live[slot] {
            let base = slot * self.dims;
            Some(&self.data[base..base + self.dims])
        } else {
            None
        }
    }

    /// Iterates over `(slot, row)` pairs of live rows in slot order.
    pub fn rows(&self) -> impl Iterator<Item = (RowId, &[f64])> {
        self.data
            .chunks_exact(self.dims)
            .enumerate()
            .filter(move |(i, _)| self.live[*i])
    }

    /// Counts live rows inside `region` by a full scan (closed bounds, the
    /// semantics of a SQL `BETWEEN` predicate).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn count_in(&self, region: &Rect) -> u64 {
        assert_eq!(region.dims(), self.dims, "query dimensionality mismatch");
        self.rows().filter(|(_, r)| region.contains(r)).count() as u64
    }

    /// True selectivity of `region`: `|σ(R)| / |R|`. Zero for an empty
    /// relation.
    pub fn selectivity(&self, region: &Rect) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        self.count_in(region) as f64 / self.row_count as f64
    }

    /// Bounding box of the live rows (`None` when empty).
    pub fn bounding_box(&self) -> Option<Rect> {
        Rect::bounding_box(self.dims, self.rows().map(|(_, r)| r))
    }

    /// Per-dimension population standard deviations of the live rows.
    pub fn column_std_devs(&self) -> Vec<f64> {
        let mut m = vec![kdesel_math::OnlineMoments::new(); self.dims];
        for (_, row) in self.rows() {
            for (mi, &x) in m.iter_mut().zip(row) {
                mi.add(x);
            }
        }
        m.iter().map(|mi| mi.std_dev_population()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        // 4 rows in 2D: (0,0) (1,1) (2,2) (3,3).
        Table::from_rows(2, &[0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
    }

    #[test]
    fn bulk_load_and_count() {
        let t = sample_table();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.dims(), 2);
        let q = Rect::from_intervals(&[(0.5, 2.5), (0.5, 2.5)]);
        assert_eq!(t.count_in(&q), 2);
        assert_eq!(t.selectivity(&q), 0.5);
    }

    #[test]
    fn closed_bound_semantics() {
        let t = sample_table();
        // Boundary points count.
        let q = Rect::from_intervals(&[(1.0, 2.0), (1.0, 2.0)]);
        assert_eq!(t.count_in(&q), 2);
    }

    #[test]
    fn insert_delete_update_lifecycle() {
        let mut t = Table::new(2);
        let a = t.insert(&[1.0, 1.0]);
        let b = t.insert(&[2.0, 2.0]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(a), Some([1.0, 1.0].as_slice()));

        assert!(t.delete(a));
        assert!(!t.delete(a), "double delete must fail");
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.row(a), None);

        // Freed slot is recycled.
        let c = t.insert(&[9.0, 9.0]);
        assert_eq!(c, a);
        assert_eq!(t.row_count(), 2);

        assert!(t.update(b, &[5.0, 5.0]));
        assert_eq!(t.row(b), Some([5.0, 5.0].as_slice()));
        assert!(!t.update(999, &[0.0, 0.0]));
    }

    #[test]
    fn selectivity_of_empty_table_is_zero() {
        let t = Table::new(3);
        assert_eq!(t.selectivity(&Rect::cube(3, 0.0, 1.0)), 0.0);
    }

    #[test]
    fn rows_iterator_skips_tombstones() {
        let mut t = sample_table();
        t.delete(1);
        let live: Vec<RowId> = t.rows().map(|(id, _)| id).collect();
        assert_eq!(live, vec![0, 2, 3]);
    }

    #[test]
    fn events_record_changes_in_order() {
        let mut t = Table::new(1);
        t.enable_events();
        let a = t.insert(&[1.0]);
        t.update(a, &[2.0]);
        t.delete(a);
        let evs = t.drain_events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(&evs[0], TableEvent::Inserted { values, .. } if values == &[1.0]));
        assert!(
            matches!(&evs[1], TableEvent::Updated { old, new, .. } if old == &[1.0] && new == &[2.0])
        );
        assert!(matches!(&evs[2], TableEvent::Deleted { values, .. } if values == &[2.0]));
        assert!(t.drain_events().is_empty(), "drain must consume");
    }

    #[test]
    fn events_disabled_by_default() {
        let mut t = Table::new(1);
        t.insert(&[1.0]);
        assert!(t.drain_events().is_empty());
    }

    #[test]
    fn bounding_box_and_std_devs() {
        let t = sample_table();
        let bb = t.bounding_box().unwrap();
        assert_eq!(bb, Rect::from_intervals(&[(0.0, 3.0), (0.0, 3.0)]));
        let sd = t.column_std_devs();
        // Population std of {0,1,2,3} is √1.25.
        assert!((sd[0] - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(sd[0], sd[1]);
        assert!(Table::new(2).bounding_box().is_none());
    }

    #[test]
    #[should_panic(expected = "NaN attribute")]
    fn nan_rows_rejected() {
        Table::new(1).insert(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_arity_rejected() {
        Table::new(2).insert(&[1.0]);
    }

    #[test]
    fn count_after_churn_matches_fresh_scan() {
        let mut t = Table::new(1);
        for i in 0..100 {
            t.insert(&[i as f64]);
        }
        for slot in (0..100).step_by(2) {
            t.delete(slot);
        }
        for i in 0..25 {
            t.insert(&[1000.0 + i as f64]);
        }
        assert_eq!(t.row_count(), 75);
        let all = Rect::from_intervals(&[(f64::NEG_INFINITY, f64::INFINITY)]);
        assert_eq!(t.count_in(&all), 75);
        let originals = Rect::from_intervals(&[(0.0, 99.0)]);
        assert_eq!(t.count_in(&originals), 50);
    }
}
