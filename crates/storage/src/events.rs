//! Table change events.
//!
//! Postgres notifies the paper's sample-maintenance routine about inserted
//! tuples (§5.6: "Whenever a new tuple is inserted into relation R, the
//! sample maintenance routine gets notified by the database engine").
//! [`TableEvent`] is the equivalent notification record; the engine drains
//! the table's event log after each statement and forwards it to the
//! estimator's maintenance hooks.

use crate::table::RowId;

/// One change to a [`Table`](crate::Table).
#[derive(Debug, Clone, PartialEq)]
pub enum TableEvent {
    /// A row was inserted.
    Inserted {
        /// Slot that received the row.
        row: RowId,
        /// Attribute values of the new row.
        values: Vec<f64>,
    },
    /// A row was deleted.
    Deleted {
        /// Slot the row occupied.
        row: RowId,
        /// Attribute values of the deleted row.
        values: Vec<f64>,
    },
    /// A row was overwritten in place.
    Updated {
        /// Slot of the row.
        row: RowId,
        /// Values before the update.
        old: Vec<f64>,
        /// Values after the update.
        new: Vec<f64>,
    },
}

impl TableEvent {
    /// The slot the event concerns.
    pub fn row(&self) -> RowId {
        match self {
            TableEvent::Inserted { row, .. }
            | TableEvent::Deleted { row, .. }
            | TableEvent::Updated { row, .. } => *row,
        }
    }

    /// Whether this event adds a live tuple (insert).
    pub fn is_insert(&self) -> bool {
        matches!(self, TableEvent::Inserted { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = TableEvent::Inserted {
            row: 7,
            values: vec![1.0],
        };
        assert_eq!(e.row(), 7);
        assert!(e.is_insert());
        let d = TableEvent::Deleted {
            row: 3,
            values: vec![2.0],
        };
        assert_eq!(d.row(), 3);
        assert!(!d.is_insert());
    }
}
