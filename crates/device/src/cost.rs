//! Analytical device cost model.
//!
//! Charges per-operation costs with four parameters: kernel-launch latency,
//! transfer latency, transfer bandwidth, and effective arithmetic
//! throughput. The *shape* of the paper's Figure 7 falls out of this
//! structure: total estimation overhead is flat while latency dominates
//! (`n · flops / throughput ≪ per-op latencies`) and linear once compute
//! dominates; the GPU's higher launch/transfer latency but ~4× higher
//! throughput reproduces the CPU/GPU crossover the paper reports.

/// Cost-model parameters for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Seconds of fixed latency per kernel launch.
    pub kernel_launch_latency: f64,
    /// Seconds of fixed latency per host↔device transfer.
    pub transfer_latency: f64,
    /// Transfer bandwidth in bytes/second.
    pub transfer_bandwidth: f64,
    /// Effective arithmetic throughput in FLOP/s for this workload.
    pub compute_throughput: f64,
    /// Per-lane width multiplier applied to *vectorized* kernels
    /// ([`CostModel::kernel_vectorized`]): a sweep written against the
    /// columnar SoA layout retires `vector_width` lanes per modeled FLOP
    /// slot. The calibrated paper profiles keep this at `1.0` because
    /// their `compute_throughput` numbers already describe fully
    /// SIMT/SIMD-occupied kernels — so the modeled Figure-7 curves are
    /// unchanged by the layout rewire — but a profile can raise it to
    /// model a device whose scalar ALU path and vector path differ.
    pub vector_width: f64,
}

impl CostProfile {
    /// Calibrated to the paper's NVIDIA GTX-460 over PCIe 2.0 (§6.4):
    /// estimates on 128 K-point models complete "in under 1 ms", the
    /// overhead curve is flat until ≈32 K points, and large-model throughput
    /// is ≈4× the CPU's.
    pub fn gtx460() -> Self {
        Self {
            kernel_launch_latency: 25e-6,
            transfer_latency: 25e-6,
            transfer_bandwidth: 6e9,
            compute_throughput: 120e9,
            vector_width: 1.0,
        }
    }

    /// Calibrated to the paper's quad-core Xeon E5620 under the Intel
    /// OpenCL SDK (§6.4): ≈1 ms per estimate at 32 K points, flat until
    /// ≈16 K points (the OpenCL runtime's scheduling latency), ≈4× slower
    /// than the GPU asymptotically.
    pub fn xeon_e5620_opencl() -> Self {
        Self {
            kernel_launch_latency: 80e-6,
            transfer_latency: 10e-6,
            transfer_bandwidth: 10e9,
            compute_throughput: 30e9,
            vector_width: 1.0,
        }
    }

    /// A zero-cost profile for backends whose time is *measured* rather
    /// than modeled (native CPU execution).
    pub fn free() -> Self {
        Self {
            kernel_launch_latency: 0.0,
            transfer_latency: 0.0,
            transfer_bandwidth: f64::INFINITY,
            compute_throughput: f64::INFINITY,
            vector_width: 1.0,
        }
    }
}

/// Accumulates modeled cost.
#[derive(Debug, Clone)]
pub struct CostModel {
    profile: CostProfile,
}

impl CostModel {
    /// Creates a model with the given profile.
    pub fn new(profile: CostProfile) -> Self {
        Self { profile }
    }

    /// The profile in use.
    pub fn profile(&self) -> &CostProfile {
        &self.profile
    }

    /// Modeled seconds for one host↔device transfer of `bytes`.
    pub fn transfer(&self, bytes: usize) -> f64 {
        self.profile.transfer_latency + bytes as f64 / self.profile.transfer_bandwidth
    }

    /// Modeled seconds for one kernel over `items` items at `flops_per_item`.
    pub fn kernel(&self, items: usize, flops_per_item: f64) -> f64 {
        self.profile.kernel_launch_latency
            + items as f64 * flops_per_item / self.profile.compute_throughput
    }

    /// Modeled seconds for one *vectorized* kernel over `items` items:
    /// the launch latency is unchanged but the compute term retires
    /// [`CostProfile::vector_width`] lanes per cycle. With the default
    /// `vector_width = 1.0` this equals [`CostModel::kernel`], keeping
    /// the calibrated GTX-460 / Xeon curves intact when the columnar
    /// sweeps replace the row-major maps.
    pub fn kernel_vectorized(&self, items: usize, flops_per_item: f64) -> f64 {
        self.profile.kernel_launch_latency
            + items as f64 * flops_per_item
                / (self.profile.compute_throughput * self.profile.vector_width)
    }

    /// Modeled seconds for a parallel binary-reduction of `items` values:
    /// two launch rounds (tree reduction then final pass, following the
    /// paper's reduction scheme [19]) plus ~4 FLOP per element.
    pub fn reduction(&self, items: usize) -> f64 {
        2.0 * self.profile.kernel_launch_latency
            + items as f64 * 4.0 / self.profile.compute_throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let m = CostModel::new(CostProfile::gtx460());
        let small = m.transfer(8);
        let large = m.transfer(8_000_000);
        assert!(large > small);
        // Latency floor dominates tiny transfers.
        assert!((small - 25e-6) / 25e-6 < 0.01);
        // Bandwidth dominates large ones: 8 MB at 6 GB/s ≈ 1.33 ms.
        assert!((large - 8e6 / 6e9 - 25e-6).abs() < 1e-9);
    }

    #[test]
    fn kernel_cost_flat_then_linear() {
        let m = CostModel::new(CostProfile::gtx460());
        let flops = 480.0;
        let tiny = m.kernel(128, flops);
        let small = m.kernel(1024, flops);
        // Latency-bound region: 8x more items, nearly same cost.
        assert!(small / tiny < 1.5);
        let big = m.kernel(1 << 20, flops);
        let bigger = m.kernel(1 << 21, flops);
        // Compute-bound region: doubling items roughly doubles cost.
        assert!((bigger / big - 2.0).abs() < 0.1);
    }

    #[test]
    fn gpu_beats_cpu_asymptotically_by_about_4x() {
        let gpu = CostModel::new(CostProfile::gtx460());
        let cpu = CostModel::new(CostProfile::xeon_e5620_opencl());
        let flops = 480.0;
        let n = 1 << 20;
        let ratio = cpu.kernel(n, flops) / gpu.kernel(n, flops);
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cpu_beats_gpu_on_latency() {
        let gpu = CostModel::new(CostProfile::gtx460());
        let cpu = CostModel::new(CostProfile::xeon_e5620_opencl());
        assert!(cpu.transfer(8) < gpu.transfer(8));
    }

    #[test]
    fn free_profile_costs_nothing() {
        let m = CostModel::new(CostProfile::free());
        assert_eq!(m.transfer(1 << 30), 0.0);
        assert_eq!(m.kernel(1 << 30, 1000.0), 0.0);
        assert_eq!(m.reduction(1 << 30), 0.0);
    }

    #[test]
    fn vectorized_kernel_scales_compute_by_lane_width() {
        let base = CostProfile::gtx460();
        let m1 = CostModel::new(base);
        // Default width 1.0: vectorized and scalar kernels cost the same,
        // so swapping the sweeps in changes no calibrated number.
        assert_eq!(
            m1.kernel_vectorized(1 << 20, 480.0),
            m1.kernel(1 << 20, 480.0)
        );
        let m4 = CostModel::new(CostProfile {
            vector_width: 4.0,
            ..base
        });
        // Width 4: compute term shrinks 4x, launch latency does not.
        let scalar = m4.kernel(1 << 20, 480.0) - base.kernel_launch_latency;
        let vector = m4.kernel_vectorized(1 << 20, 480.0) - base.kernel_launch_latency;
        assert!(
            (scalar / vector - 4.0).abs() < 1e-9,
            "ratio {}",
            scalar / vector
        );
        assert_eq!(m4.kernel_vectorized(1, 0.0), base.kernel_launch_latency);
    }

    #[test]
    fn reduction_has_two_launches() {
        let m = CostModel::new(CostProfile::gtx460());
        assert!(m.reduction(1) >= 2.0 * 25e-6);
    }
}
