//! Multi-device execution — the paper's final §8 outlook: "It would also
//! be interesting to investigate how to accelerate KDE estimation across
//! multiple graphics cards."
//!
//! KDE is a sum over sample points, so the natural multi-GPU plan is data
//! parallel: partition the sample across devices, run the same kernel on
//! each partition, reduce partial sums per device, and combine the per-
//! device scalars on the host. [`DeviceGroup`] implements exactly that over
//! any set of [`Device`]s. Modeled time is the *maximum* over the devices
//! (they run concurrently) plus the host-side combine, so an `n`-way group
//! approaches an `n`-fold speedup in the throughput-bound regime while the
//! latency floor stays put — the same structural behaviour real multi-GPU
//! setups show.

use crate::cost::CostProfile;
use crate::device::{Backend, Device, DeviceBuffer};

/// A group of devices executing one logical kernel data-parallel.
#[derive(Debug)]
pub struct DeviceGroup {
    devices: Vec<Device>,
}

/// A sample partitioned across the group (one buffer per device).
#[derive(Debug)]
pub struct PartitionedBuffer {
    parts: Vec<DeviceBuffer>,
    dims: usize,
}

impl PartitionedBuffer {
    /// Total rows across all partitions.
    pub fn rows(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum::<usize>() / self.dims
    }
}

impl DeviceGroup {
    /// Creates a group.
    ///
    /// # Panics
    /// Panics on an empty device list.
    pub fn new(devices: Vec<Device>) -> Self {
        assert!(!devices.is_empty(), "empty device group");
        Self { devices }
    }

    /// Creates a group of `count` identical devices sharing one cost
    /// profile — the natural constructor for a profile produced by
    /// calibration (`MeasuredProfile::profile`), where every member of
    /// the group is the same physical device class.
    ///
    /// # Panics
    /// Panics when `count` is zero.
    pub fn homogeneous(backend: Backend, profile: CostProfile, count: usize) -> Self {
        assert!(count > 0, "empty device group");
        Self::new(
            (0..count)
                .map(|_| Device::with_profile(backend, profile))
                .collect(),
        )
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the group is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The member devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Uploads a row-major sample, split into contiguous per-device chunks
    /// of (nearly) equal row counts.
    ///
    /// # Panics
    /// Panics on ragged data.
    pub fn upload_partitioned(&self, sample: &[f64], dims: usize) -> PartitionedBuffer {
        assert!(dims > 0);
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        let rows = sample.len() / dims;
        let n = self.devices.len();
        let base = rows / n;
        let extra = rows % n;
        let mut parts = Vec::with_capacity(n);
        let mut offset = 0;
        for (i, device) in self.devices.iter().enumerate() {
            let take = base + usize::from(i < extra);
            let end = offset + take * dims;
            parts.push(device.upload(&sample[offset..end]));
            offset = end;
        }
        PartitionedBuffer { parts, dims }
    }

    /// Runs a per-row kernel on every partition concurrently and returns
    /// the total sum of outputs (the distributed version of the estimate
    /// pipeline: map on each device, reduce on each device, combine on the
    /// host).
    ///
    /// The caller reads the modeled wall time via
    /// [`modeled_seconds_parallel`](Self::modeled_seconds_parallel), which
    /// accounts for the devices running side by side.
    pub fn map_reduce_sum<F>(&self, buffer: &PartitionedBuffer, flops_per_row: f64, f: F) -> f64
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        assert_eq!(buffer.parts.len(), self.devices.len(), "foreign buffer");
        let mut total = 0.0;
        for (device, part) in self.devices.iter().zip(&buffer.parts) {
            if part.is_empty() {
                continue;
            }
            // Fused map+reduce: one launch per device instead of three.
            let (sum, _) = device.map_rows_reduce(part, buffer.dims, flops_per_row, false, &f);
            total += sum;
        }
        total
    }

    /// Modeled wall time of the group under concurrent execution: the
    /// slowest device's accumulated modeled time.
    pub fn modeled_seconds_parallel(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.modeled_seconds())
            .fold(0.0, f64::max)
    }

    /// Resets every member's timing.
    pub fn reset_timing(&self) {
        for d in &self.devices {
            d.reset_timing();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Backend;

    fn group(n: usize) -> DeviceGroup {
        DeviceGroup::new((0..n).map(|_| Device::new(Backend::SimGpu)).collect())
    }

    #[test]
    fn partitioning_covers_all_rows() {
        let g = group(3);
        let sample: Vec<f64> = (0..20).map(|i| i as f64).collect(); // 10 rows × 2
        let buf = g.upload_partitioned(&sample, 2);
        assert_eq!(buf.rows(), 10);
        // 10 rows over 3 devices: 4 + 3 + 3.
        assert_eq!(buf.parts[0].len(), 8);
        assert_eq!(buf.parts[1].len(), 6);
        assert_eq!(buf.parts[2].len(), 6);
    }

    #[test]
    fn distributed_sum_matches_single_device() {
        let sample: Vec<f64> = (0..4000).map(|i| (i as f64).sin()).collect();
        let single = group(1);
        let quad = group(4);
        let b1 = single.upload_partitioned(&sample, 2);
        let b4 = quad.upload_partitioned(&sample, 2);
        let f = |row: &[f64]| row[0] * row[0] + row[1];
        let s1 = single.map_reduce_sum(&b1, 10.0, f);
        let s4 = quad.map_reduce_sum(&b4, 10.0, f);
        assert!((s1 - s4).abs() < 1e-9 * s1.abs().max(1.0), "{s1} vs {s4}");
    }

    #[test]
    fn four_devices_approach_4x_speedup_when_compute_bound() {
        let rows = 1 << 20;
        let sample: Vec<f64> = vec![1.0; rows];
        let single = group(1);
        let quad = group(4);
        let b1 = single.upload_partitioned(&sample, 1);
        let b4 = quad.upload_partitioned(&sample, 1);
        single.reset_timing();
        quad.reset_timing();
        let _ = single.map_reduce_sum(&b1, 480.0, |r| r[0]);
        let _ = quad.map_reduce_sum(&b4, 480.0, |r| r[0]);
        let speedup = single.modeled_seconds_parallel() / quad.modeled_seconds_parallel();
        assert!((3.0..4.2).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn latency_floor_does_not_shrink_with_more_devices() {
        // Tiny model: adding devices cannot beat the per-device latency.
        let sample: Vec<f64> = vec![1.0; 64];
        let single = group(1);
        let quad = group(4);
        let b1 = single.upload_partitioned(&sample, 1);
        let b4 = quad.upload_partitioned(&sample, 1);
        single.reset_timing();
        quad.reset_timing();
        let _ = single.map_reduce_sum(&b1, 480.0, |r| r[0]);
        let _ = quad.map_reduce_sum(&b4, 480.0, |r| r[0]);
        assert!(
            quad.modeled_seconds_parallel() >= single.modeled_seconds_parallel() * 0.95,
            "latency-bound work should not speed up: {} vs {}",
            quad.modeled_seconds_parallel(),
            single.modeled_seconds_parallel()
        );
    }

    #[test]
    fn more_devices_than_rows_is_fine() {
        let g = group(4);
        let buf = g.upload_partitioned(&[1.0, 2.0], 1); // 2 rows, 4 devices
        assert_eq!(buf.rows(), 2);
        let s = g.map_reduce_sum(&buf, 1.0, |r| r[0]);
        assert_eq!(s, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty device group")]
    fn empty_group_rejected() {
        DeviceGroup::new(Vec::new());
    }
}
