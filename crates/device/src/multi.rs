//! Multi-device execution — the paper's final §8 outlook: "It would also
//! be interesting to investigate how to accelerate KDE estimation across
//! multiple graphics cards."
//!
//! KDE is a sum over sample points, so the natural multi-GPU plan is data
//! parallel — but a *static* split caps the group at the straggler's
//! pace. [`DeviceGroup`] therefore distributes work in **stripe blocks**:
//!
//! * [`DeviceGroup::stage_partitioned_soa`] shards the columnar (SoA)
//!   stripes into blocks of [`SWEEP_BLOCK_ROWS`] rows (a power of two,
//!   multiple of the SIMD lane width, so no device ever sweeps a
//!   misaligned tail). Each member owns a contiguous block range, seeded
//!   proportional to its calibrated `CostProfile` throughput and staged
//!   through its own buffer pool.
//! * Each group sweep spawns one worker thread per member device (the
//!   scoped-threadpool-per-device shape — each worker drives exactly one
//!   `Device`, preserving the crate's Send/Sync thread-ownership
//!   contract). Workers drain a shared queue of block indices: own
//!   blocks pop from the front; an idle worker **steals** from the back
//!   of the fullest victim's deque, so a fast CpuPar member relieves a
//!   latency-bound SimGpu and group throughput tracks aggregate
//!   bandwidth at any backend mix.
//! * **Deterministic combine.** Workers never touch a shared
//!   accumulator. Every full block's partial sum is an *exact aligned
//!   subtree* of the global pairwise reduction (a full block has
//!   `SWEEP_BLOCK_ROWS = 2^10` rows and starts at a multiple of it), so
//!   partials land in a block-indexed slot array and the host folds them
//!   *in block order* into the same [`PairwiseAcc`] binary counter the
//!   single-device sweeps use — `push_block(sum, 10)` per full block,
//!   element/256-window pushes for the single ragged tail block. The
//!   result is bitwise-identical to single-device `CpuSeq` regardless of
//!   which device executed which block in which order.
//!
//! Modeled time charges each participating device **one** launch per
//! group sweep (the persistent-kernel model: blocks are claimed inside
//! one kernel invocation, not one launch per block) covering the rows it
//! executed, plus peer-transfer bandwidth for stolen blocks. Modeled
//! wall time of the group is the maximum over members
//! ([`DeviceGroup::modeled_seconds_parallel`]) — the same structural
//! behaviour real multi-GPU setups show.
//!
//! Because `SimGpu` executes at real CPU speed and is only slow in
//! *modeled* time, stealing decisions based on wall clock alone would
//! never see the modeled imbalance. [`DeviceGroup::with_pace`] runs
//! workers against a virtual clock (wall seconds per modeled second) so
//! benches and stress tests can make block claims track modeled
//! throughput; estimates are bitwise-unchanged by pacing — only the
//! interleaving moves.

use crate::cost::CostProfile;
use crate::device::{
    pairwise_block_sum, pairwise_sum, pairwise_sum_columns, Backend, ColsView, Device,
    DeviceBuffer, DeviceStats, PairwiseAcc, SoaBuffer, PAIRWISE_BLOCK, PAIRWISE_BLOCK_LEVEL,
    SWEEP_BLOCK_LEVEL, SWEEP_BLOCK_ROWS,
};
use crate::profile::{Launch, LaunchKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide group id source: every [`DeviceGroup`] gets a distinct
/// tag, stamped onto the buffers it stages so cross-group use fails
/// loudly instead of silently sweeping the wrong device's memory.
static NEXT_GROUP_ID: AtomicU64 = AtomicU64::new(1);

/// Telemetry handles for the group scheduler, resolved once at
/// construction (mirroring the per-device `Meters`).
#[derive(Debug)]
struct GroupMeters {
    steals: Arc<kdesel_telemetry::Counter>,
    blocks: Arc<kdesel_telemetry::Counter>,
    imbalance: Arc<kdesel_telemetry::Gauge>,
}

impl GroupMeters {
    fn new() -> Self {
        let r = kdesel_telemetry::registry();
        Self {
            steals: r.counter("device.group.steals"),
            blocks: r.counter("device.group.blocks_executed"),
            imbalance: r.gauge("device.group.imbalance"),
        }
    }
}

/// Cumulative scheduler counters (behind the group's mutex).
#[derive(Debug, Default)]
struct GroupCounters {
    steals: u64,
    blocks_executed: u64,
    per_device_blocks: Vec<u64>,
    imbalance: f64,
}

/// Point-in-time view of the group scheduler: how many stripe blocks ran
/// where, how many were stolen, and how skewed the last sweep's shares
/// were. Surfaced on `serve.launch` spans when a group backs a model.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Blocks executed by a device other than their seeded owner.
    pub steals: u64,
    /// Total stripe blocks executed across all sweeps.
    pub blocks_executed: u64,
    /// Last sweep's max/mean executed-block share across devices (1.0 is
    /// perfectly balanced; `len()` means one device ran everything).
    pub imbalance: f64,
    /// Lifetime blocks executed per member device, in member order.
    pub per_device_blocks: Vec<u64>,
}

/// How [`DeviceGroup::stage_partitioned_soa_with`] seeds the initial
/// contiguous block ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Blocks proportional to each member's calibrated
    /// `compute_throughput × vector_width` (largest-remainder rounding),
    /// so stealing starts near-balanced.
    Profile,
    /// Equal block counts regardless of member speed — the static-split
    /// baseline the work-stealing bench measures against.
    Equal,
}

/// A group of devices executing one logical kernel data-parallel over a
/// work-stealing stripe-block queue.
#[derive(Debug)]
pub struct DeviceGroup {
    devices: Vec<Device>,
    id: u64,
    /// Wall seconds per modeled second for the worker virtual clock;
    /// `None` (default) claims blocks at real speed.
    pace: Option<f64>,
    /// Whether idle workers steal blocks (on by default).
    steal: bool,
    meters: GroupMeters,
    counters: Mutex<GroupCounters>,
}

/// A sample partitioned row-major across the group (one row-major buffer
/// per device) — the legacy layout consumed by
/// [`DeviceGroup::map_reduce_sum`] and the calibration harness.
#[derive(Debug)]
pub struct PartitionedBuffer {
    group_id: u64,
    parts: Vec<DeviceBuffer>,
    dims: usize,
}

impl PartitionedBuffer {
    /// Total rows across all partitions.
    pub fn rows(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum::<usize>() / self.dims
    }
}

/// One member device's contiguous slice of the sharded sample: the SoA
/// stripes of its seeded block range, staged on that device.
#[derive(Debug)]
struct Shard {
    soa: SoaBuffer,
    first_block: usize,
    n_blocks: usize,
}

impl Shard {
    /// Global row index of the shard's first row.
    fn first_row(&self) -> usize {
        self.first_block * SWEEP_BLOCK_ROWS
    }
}

/// A sample sharded column-major across the group in stripe blocks of
/// [`SWEEP_BLOCK_ROWS`] rows. Created by
/// [`DeviceGroup::stage_partitioned_soa`]; consumed by the group sweeps.
#[derive(Debug)]
pub struct PartitionedSoa {
    group_id: u64,
    shards: Vec<Shard>,
    rows: usize,
    dims: usize,
    blocks: usize,
}

impl PartitionedSoa {
    /// Total staged rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dimensions per row.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of stripe blocks (`ceil(rows / SWEEP_BLOCK_ROWS)`).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Rows staged on each member device, in member order.
    pub fn shard_rows(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.soa.rows()).collect()
    }

    /// Which shard owns global `row` (for single-row writes).
    fn shard_of_row(&self, row: usize) -> usize {
        self.shards
            .iter()
            .position(|s| row >= s.first_row() && row < s.first_row() + s.soa.rows())
            .expect("row out of range")
    }

    /// Global row range `(start, len)` of stripe block `block`.
    fn block_rows(&self, block: usize) -> (usize, usize) {
        let start = block * SWEEP_BLOCK_ROWS;
        (start, SWEEP_BLOCK_ROWS.min(self.rows - start))
    }
}

/// Splits `total` blocks across members proportional to `weights`, using
/// largest-remainder rounding (deterministic: ties break toward the
/// lower device index). Every block lands in exactly one share; a slow
/// enough member can receive zero.
fn apportion_blocks(weights: &[f64], total: usize) -> Vec<usize> {
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 || !wsum.is_finite() {
        return apportion_blocks(&vec![1.0; weights.len()], total);
    }
    let quotas: Vec<f64> = weights.iter().map(|w| w / wsum * total as f64).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().cycle().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

/// What one worker produced for one stripe block. Full blocks carry the
/// per-column level-[`SWEEP_BLOCK_LEVEL`] pairwise sums; the single
/// ragged tail block carries its raw `rows × width` output so the host
/// can replicate the element-wise tail of the global reduction.
struct BlockResult {
    index: usize,
    /// Per-column aligned-subtree sums (empty for the tail block).
    sums: Vec<f64>,
    /// Raw interleaved output (tail block only).
    raw: Vec<f64>,
    /// Per-row column-0 values when the caller retains contributions.
    retained: Vec<f64>,
}

/// One worker's tally of a group sweep.
#[derive(Default)]
struct WorkerOut {
    blocks: Vec<BlockResult>,
    executed_rows: usize,
    executed_blocks: u64,
    stolen_blocks: u64,
    stolen_rows: usize,
    /// Wall seconds inside kernels only (pacing sleeps excluded), so the
    /// profiler's measured times stay meaningful under a virtual clock.
    compute_seconds: f64,
}

/// Pops the next block for worker `me`: own deque front first, then the
/// back of the fullest victim (ties toward the lower index). Returns the
/// block and the shard that owns its data.
fn claim_block(
    queue: &Mutex<Vec<VecDeque<usize>>>,
    me: usize,
    steal: bool,
) -> Option<(usize, usize)> {
    let mut q = queue.lock().unwrap();
    if let Some(b) = q[me].pop_front() {
        return Some((b, me));
    }
    if !steal {
        return None;
    }
    let victim = (0..q.len())
        .filter(|&i| i != me && !q[i].is_empty())
        .max_by_key(|&i| (q[i].len(), std::cmp::Reverse(i)))?;
    let b = q[victim].pop_back().expect("victim checked non-empty");
    Some((b, victim))
}

impl DeviceGroup {
    /// Creates a group. The first device is the **primary**: it fronts
    /// the host (result readback, retained-contribution gather) and is
    /// what [`DeviceGroup::primary`] exposes to single-device consumers.
    ///
    /// # Panics
    /// Panics on an empty device list.
    pub fn new(devices: Vec<Device>) -> Self {
        assert!(!devices.is_empty(), "empty device group");
        let n = devices.len();
        Self {
            devices,
            id: NEXT_GROUP_ID.fetch_add(1, Ordering::Relaxed),
            pace: None,
            steal: true,
            meters: GroupMeters::new(),
            counters: Mutex::new(GroupCounters {
                per_device_blocks: vec![0; n],
                ..GroupCounters::default()
            }),
        }
    }

    /// Creates a group of `count` identical devices sharing one cost
    /// profile — the natural constructor for a profile produced by
    /// calibration (`MeasuredProfile::profile`), where every member of
    /// the group is the same physical device class.
    ///
    /// # Panics
    /// Panics when `count` is zero.
    pub fn homogeneous(backend: Backend, profile: CostProfile, count: usize) -> Self {
        assert!(count > 0, "empty device group");
        Self::new(
            (0..count)
                .map(|_| Device::with_profile(backend, profile))
                .collect(),
        )
    }

    /// Runs workers against a virtual clock: each worker sleeps until
    /// `wall ≥ modeled-compute-so-far × pace` before claiming another
    /// block, so block claims track *modeled* throughput (a `SimGpu`
    /// that is only slow on paper claims fewer blocks, and fast members
    /// steal the difference). Estimates are bitwise-unchanged.
    ///
    /// # Panics
    /// Panics unless `pace` is positive and finite.
    pub fn with_pace(mut self, pace: f64) -> Self {
        assert!(pace > 0.0 && pace.is_finite(), "invalid pace {pace}");
        self.pace = Some(pace);
        self
    }

    /// Enables or disables work stealing (on by default). With stealing
    /// off, every block runs on the device that staged it — the static
    /// split the bench uses as its baseline.
    pub fn with_stealing(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the group is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The member devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The primary device (member 0): fronts result readback and hosts
    /// gathered retained contributions, so single-device consumers (the
    /// Karma ledger, serve telemetry) keep working against a group.
    pub fn primary(&self) -> &Device {
        &self.devices[0]
    }

    /// Scheduler counters: steals, blocks executed, last-sweep imbalance.
    pub fn stats(&self) -> GroupStats {
        let c = self.counters.lock().unwrap();
        GroupStats {
            steals: c.steals,
            blocks_executed: c.blocks_executed,
            imbalance: c.imbalance,
            per_device_blocks: c.per_device_blocks.clone(),
        }
    }

    /// Uploads a row-major sample, split into contiguous per-device chunks
    /// of (nearly) equal row counts.
    ///
    /// # Panics
    /// Panics on ragged data.
    pub fn upload_partitioned(&self, sample: &[f64], dims: usize) -> PartitionedBuffer {
        assert!(dims > 0);
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        let rows = sample.len() / dims;
        let n = self.devices.len();
        let base = rows / n;
        let extra = rows % n;
        let mut parts = Vec::with_capacity(n);
        let mut offset = 0;
        for (i, device) in self.devices.iter().enumerate() {
            let take = base + usize::from(i < extra);
            let end = offset + take * dims;
            parts.push(device.upload(&sample[offset..end]));
            offset = end;
        }
        PartitionedBuffer {
            group_id: self.id,
            parts,
            dims,
        }
    }

    /// Shards a row-major sample column-major across the group in stripe
    /// blocks, seeding each member's contiguous block range from its
    /// calibrated cost profile ([`Partition::Profile`]).
    ///
    /// # Panics
    /// Panics on ragged data or zero dims.
    pub fn stage_partitioned_soa(&self, sample: &[f64], dims: usize) -> PartitionedSoa {
        self.stage_partitioned_soa_with(sample, dims, Partition::Profile)
    }

    /// [`DeviceGroup::stage_partitioned_soa`] with an explicit seeding
    /// policy.
    ///
    /// # Panics
    /// Panics on ragged data or zero dims.
    pub fn stage_partitioned_soa_with(
        &self,
        sample: &[f64],
        dims: usize,
        partition: Partition,
    ) -> PartitionedSoa {
        assert!(dims > 0, "zero dims");
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        let rows = sample.len() / dims;
        let blocks = rows.div_ceil(SWEEP_BLOCK_ROWS);
        let weights: Vec<f64> = match partition {
            Partition::Equal => vec![1.0; self.devices.len()],
            Partition::Profile => self
                .devices
                .iter()
                .map(|d| {
                    let p = d.cost_model().profile();
                    p.compute_throughput * p.vector_width
                })
                .collect(),
        };
        let counts = apportion_blocks(&weights, blocks);
        let mut shards = Vec::with_capacity(self.devices.len());
        let mut first_block = 0;
        for (device, &n_blocks) in self.devices.iter().zip(&counts) {
            // Both ends clamp: the last block is usually partial, and a
            // shard seeded zero blocks starts past the sample entirely.
            let start = rows.min(first_block * SWEEP_BLOCK_ROWS);
            let end = rows.min((first_block + n_blocks) * SWEEP_BLOCK_ROWS);
            shards.push(Shard {
                soa: device.stage_rows_soa(&sample[start * dims..end * dims], dims),
                first_block,
                n_blocks,
            });
            first_block += n_blocks;
        }
        PartitionedSoa {
            group_id: self.id,
            shards,
            rows,
            dims,
            blocks,
        }
    }

    /// Overwrites one staged row (one transfer of `dims` values on the
    /// shard that owns it) — the group counterpart of
    /// `Device::write_row_soa` for the paper's §5.1 point replacement.
    ///
    /// # Panics
    /// Panics on a foreign sample, an out-of-range row, or a
    /// wrong-length value vector.
    pub fn write_row_soa(&self, part: &mut PartitionedSoa, row: usize, values: &[f64]) {
        self.check_soa(part);
        assert!(row < part.rows, "row {row} out of range");
        let s = part.shard_of_row(row);
        let local = row - part.shards[s].first_row();
        self.devices[s].write_row_soa(&mut part.shards[s].soa, local, values);
    }

    fn check_soa(&self, part: &PartitionedSoa) {
        assert_eq!(
            part.group_id, self.id,
            "partitioned sample was staged on device group #{}, not this group #{}",
            part.group_id, self.id
        );
    }

    /// Group counterpart of `Device::sweep_reduce`: one work-stolen
    /// stripe-block sweep over the sharded sample, host-combined in
    /// block order — bitwise-identical to the single-device sweep. With
    /// `retain`, the per-row values are gathered onto the primary device
    /// (charged as device-to-device traffic there).
    ///
    /// # Panics
    /// Panics when `part` was staged on a different group.
    pub fn sweep_reduce<F>(
        &self,
        part: &PartitionedSoa,
        flops_per_row: f64,
        retain: bool,
        f: F,
    ) -> (f64, Option<DeviceBuffer>)
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        let (sums, retained) = self.group_sweep(
            part,
            1,
            flops_per_row,
            retain,
            LaunchKind::GroupSweepReduce,
            &f,
        );
        (sums[0], retained.map(|r| self.primary().adopt(r)))
    }

    /// Group counterpart of `Device::sweep_multi_reduce`: `out_width`
    /// outputs per row, column-reduced in block order. With
    /// `retain_first`, column 0 is gathered onto the primary device.
    ///
    /// # Panics
    /// Panics when `out_width` is zero or `part` is foreign.
    pub fn sweep_multi_reduce<F>(
        &self,
        part: &PartitionedSoa,
        out_width: usize,
        flops_per_row: f64,
        retain_first: bool,
        f: F,
    ) -> (Vec<f64>, Option<DeviceBuffer>)
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        assert!(out_width > 0);
        let (sums, retained) = self.group_sweep(
            part,
            out_width,
            flops_per_row,
            retain_first,
            LaunchKind::GroupSweepMultiReduce,
            &f,
        );
        (sums, retained.map(|r| self.primary().adopt(r)))
    }

    /// Group counterpart of `Device::sweep_batch`: `batch` outputs per
    /// row, column-reduced, nothing retained.
    pub fn sweep_batch<F>(
        &self,
        part: &PartitionedSoa,
        batch: usize,
        flops_per_row: f64,
        f: F,
    ) -> Vec<f64>
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        self.sweep_multi_reduce(part, batch, flops_per_row, false, f)
            .0
    }

    /// The stripe-block engine behind every group sweep. Returns the
    /// per-column sums and, when retaining, the host-assembled per-row
    /// column-0 values in global row order.
    fn group_sweep<F>(
        &self,
        part: &PartitionedSoa,
        out_width: usize,
        flops_per_row: f64,
        retain_first: bool,
        kind: LaunchKind,
        f: &F,
    ) -> (Vec<f64>, Option<Vec<f64>>)
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        self.check_soa(part);
        if part.rows == 0 {
            return (vec![0.0; out_width], retain_first.then(Vec::new));
        }
        let n = self.devices.len();
        let queue: Mutex<Vec<VecDeque<usize>>> = Mutex::new(
            part.shards
                .iter()
                .map(|s| (s.first_block..s.first_block + s.n_blocks).collect())
                .collect(),
        );
        let flops = flops_per_row + 4.0 * out_width as f64;
        let mut outs: Vec<WorkerOut> = (0..n).map(|_| WorkerOut::default()).collect();
        std::thread::scope(|scope| {
            for (me, out) in outs.iter_mut().enumerate() {
                let queue = &queue;
                scope.spawn(move || {
                    let profile = *self.devices[me].cost_model().profile();
                    let modeled_row_seconds =
                        flops / (profile.compute_throughput * profile.vector_width);
                    let t0 = Instant::now();
                    let mut vclock = 0.0f64;
                    let mut buf: Vec<f64> = Vec::new();
                    loop {
                        if let Some(pace) = self.pace {
                            loop {
                                let ahead = vclock * pace - t0.elapsed().as_secs_f64();
                                if ahead <= 0.0 {
                                    break;
                                }
                                std::thread::sleep(std::time::Duration::from_secs_f64(ahead));
                            }
                        }
                        let Some((block, owner)) = claim_block(queue, me, self.steal) else {
                            break;
                        };
                        let shard = &part.shards[owner];
                        let (start, len) = part.block_rows(block);
                        let view = shard.soa.view(start - shard.first_row(), len);
                        buf.clear();
                        buf.resize(len * out_width, 0.0);
                        let t = Instant::now();
                        f(view, &mut buf);
                        // Full blocks reduce to their exact aligned
                        // pairwise subtree on the worker; the single
                        // ragged tail block ships raw values.
                        let full = len == SWEEP_BLOCK_ROWS;
                        let sums = if !full {
                            Vec::new()
                        } else if out_width == 1 {
                            vec![pairwise_sum(&buf)]
                        } else {
                            pairwise_sum_columns(&buf, out_width)
                        };
                        out.compute_seconds += t.elapsed().as_secs_f64();
                        let retained = if retain_first {
                            buf.iter().step_by(out_width).copied().collect()
                        } else {
                            Vec::new()
                        };
                        out.blocks.push(BlockResult {
                            index: block,
                            sums,
                            raw: if full { Vec::new() } else { buf.clone() },
                            retained,
                        });
                        out.executed_rows += len;
                        out.executed_blocks += 1;
                        if owner != me {
                            out.stolen_blocks += 1;
                            out.stolen_rows += len;
                        }
                        vclock += len as f64 * modeled_row_seconds;
                    }
                });
            }
        });

        // --- Deterministic combine: slot array, folded in block order.
        let mut slots: Vec<Option<BlockResult>> = (0..part.blocks).map(|_| None).collect();
        for out in &mut outs {
            for r in out.blocks.drain(..) {
                let i = r.index;
                assert!(slots[i].is_none(), "stripe block {i} executed twice");
                slots[i] = Some(r);
            }
        }
        let mut accs: Vec<PairwiseAcc> = vec![PairwiseAcc::new(); out_width];
        let mut retained_all = retain_first.then(|| Vec::with_capacity(part.rows));
        let mut scratch = [0.0f64; PAIRWISE_BLOCK];
        for slot in &slots {
            let r = slot.as_ref().expect("stripe block never executed");
            if !r.sums.is_empty() {
                for (acc, &s) in accs.iter_mut().zip(&r.sums) {
                    acc.push_block(s, SWEEP_BLOCK_LEVEL);
                }
            } else {
                // Tail block: replicate the single-device reduction's
                // tail exactly — full 256-row windows as level-8 aligned
                // subtrees (the tail starts at a multiple of
                // SWEEP_BLOCK_ROWS, so alignment holds), then element
                // pushes for the ragged remainder.
                let rows = r.raw.len() / out_width;
                let main = rows - rows % PAIRWISE_BLOCK;
                for b in (0..main).step_by(PAIRWISE_BLOCK) {
                    let window = &r.raw[b * out_width..][..PAIRWISE_BLOCK * out_width];
                    for (c, acc) in accs.iter_mut().enumerate() {
                        for (k, s) in scratch.iter_mut().enumerate() {
                            *s = window[k * out_width + c];
                        }
                        acc.push_block(pairwise_block_sum(&scratch), PAIRWISE_BLOCK_LEVEL);
                    }
                }
                for row in r.raw[main * out_width..].chunks_exact(out_width) {
                    for (acc, &v) in accs.iter_mut().zip(row) {
                        acc.push(v);
                    }
                }
            }
            if let Some(ret) = retained_all.as_mut() {
                ret.extend_from_slice(&r.retained);
            }
        }
        let sums: Vec<f64> = accs.iter().map(PairwiseAcc::finish).collect();

        self.charge_sweep(part, &outs, out_width, flops, retain_first, kind);
        (sums, retained_all)
    }

    /// Charges each participating device one launch for its share of the
    /// sweep (persistent-kernel model: block claims happen inside one
    /// launch), and updates the scheduler counters/telemetry.
    fn charge_sweep(
        &self,
        part: &PartitionedSoa,
        outs: &[WorkerOut],
        out_width: usize,
        flops: f64,
        retain_first: bool,
        kind: LaunchKind,
    ) {
        let result_bytes = out_width * std::mem::size_of::<f64>();
        for (i, (device, w)) in self.devices.iter().zip(outs).enumerate() {
            let primary = i == 0;
            if w.executed_blocks == 0 && !primary {
                continue;
            }
            let p = *device.cost_model().profile();
            let mut modeled = device
                .cost_model()
                .kernel_vectorized(w.executed_rows, flops);
            // Stolen blocks read the victim shard's memory: peer
            // bandwidth, no extra launch (claims pipeline inside the
            // persistent kernel).
            let stolen_bytes = w.stolen_rows * part.dims * std::mem::size_of::<f64>();
            modeled += stolen_bytes as f64 / p.transfer_bandwidth;
            // The primary fronts the host: result readback, plus the
            // retained-contribution gather from every member.
            let gather_bytes = if primary && retain_first {
                part.rows * std::mem::size_of::<f64>()
            } else {
                0
            };
            modeled += gather_bytes as f64 / p.transfer_bandwidth;
            let launch_bytes = if primary { result_bytes } else { 0 };
            if primary {
                modeled += device.cost_model().transfer(result_bytes);
            }
            device.charge_recorded(
                Launch::kernel(kind, w.executed_rows, flops, launch_bytes),
                modeled,
                w.compute_seconds,
                |s: &mut DeviceStats| {
                    s.kernels += 1;
                    if primary {
                        s.downloads += 1;
                        s.bytes_down += result_bytes as u64;
                    }
                    if stolen_bytes > 0 {
                        s.d2d_copies += 1;
                        s.bytes_d2d += stolen_bytes as u64;
                    }
                    if gather_bytes > 0 {
                        s.d2d_copies += 1;
                        s.bytes_d2d += gather_bytes as u64;
                    }
                },
            );
        }
        let total_blocks: u64 = outs.iter().map(|w| w.executed_blocks).sum();
        let total_steals: u64 = outs.iter().map(|w| w.stolen_blocks).sum();
        let max = outs.iter().map(|w| w.executed_blocks).max().unwrap_or(0);
        let mean = total_blocks as f64 / self.devices.len() as f64;
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        {
            let mut c = self.counters.lock().unwrap();
            c.steals += total_steals;
            c.blocks_executed += total_blocks;
            for (pc, w) in c.per_device_blocks.iter_mut().zip(outs) {
                *pc += w.executed_blocks;
            }
            c.imbalance = imbalance;
        }
        if kdesel_telemetry::enabled() {
            self.meters.steals.add(total_steals);
            self.meters.blocks.add(total_blocks);
            self.meters.imbalance.set(imbalance);
        }
    }

    /// Runs a per-row kernel on every partition concurrently and returns
    /// the total sum of outputs (the distributed version of the estimate
    /// pipeline: map on each device, reduce on each device, combine on the
    /// host).
    ///
    /// The caller reads the modeled wall time via
    /// [`modeled_seconds_parallel`](Self::modeled_seconds_parallel), which
    /// accounts for the devices running side by side.
    ///
    /// # Panics
    /// Panics when `buffer` was uploaded through a different group.
    pub fn map_reduce_sum<F>(&self, buffer: &PartitionedBuffer, flops_per_row: f64, f: F) -> f64
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        assert_eq!(
            buffer.group_id, self.id,
            "partitioned buffer was uploaded through device group #{}, not this group #{}",
            buffer.group_id, self.id
        );
        let mut total = 0.0;
        for (device, part) in self.devices.iter().zip(&buffer.parts) {
            if part.is_empty() {
                continue;
            }
            // Fused map+reduce: one launch per device instead of three.
            let (sum, _) = device.map_rows_reduce(part, buffer.dims, flops_per_row, false, &f);
            total += sum;
        }
        total
    }

    /// Modeled wall time of the group under concurrent execution: the
    /// slowest device's accumulated modeled time.
    pub fn modeled_seconds_parallel(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.modeled_seconds())
            .fold(0.0, f64::max)
    }

    /// Resets every member's timing and the group scheduler counters.
    pub fn reset_timing(&self) {
        for d in &self.devices {
            d.reset_timing();
        }
        let mut c = self.counters.lock().unwrap();
        let n = c.per_device_blocks.len();
        *c = GroupCounters {
            per_device_blocks: vec![0; n],
            ..GroupCounters::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Backend;

    fn group(n: usize) -> DeviceGroup {
        DeviceGroup::new((0..n).map(|_| Device::new(Backend::SimGpu)).collect())
    }

    #[test]
    fn partitioning_covers_all_rows() {
        let g = group(3);
        let sample: Vec<f64> = (0..20).map(|i| i as f64).collect(); // 10 rows × 2
        let buf = g.upload_partitioned(&sample, 2);
        assert_eq!(buf.rows(), 10);
        // 10 rows over 3 devices: 4 + 3 + 3.
        assert_eq!(buf.parts[0].len(), 8);
        assert_eq!(buf.parts[1].len(), 6);
        assert_eq!(buf.parts[2].len(), 6);
    }

    #[test]
    fn distributed_sum_matches_single_device() {
        let sample: Vec<f64> = (0..4000).map(|i| (i as f64).sin()).collect();
        let single = group(1);
        let quad = group(4);
        let b1 = single.upload_partitioned(&sample, 2);
        let b4 = quad.upload_partitioned(&sample, 2);
        let f = |row: &[f64]| row[0] * row[0] + row[1];
        let s1 = single.map_reduce_sum(&b1, 10.0, f);
        let s4 = quad.map_reduce_sum(&b4, 10.0, f);
        assert!((s1 - s4).abs() < 1e-9 * s1.abs().max(1.0), "{s1} vs {s4}");
    }

    #[test]
    fn four_devices_approach_4x_speedup_when_compute_bound() {
        let rows = 1 << 20;
        let sample: Vec<f64> = vec![1.0; rows];
        let single = group(1);
        let quad = group(4);
        let b1 = single.upload_partitioned(&sample, 1);
        let b4 = quad.upload_partitioned(&sample, 1);
        single.reset_timing();
        quad.reset_timing();
        let _ = single.map_reduce_sum(&b1, 480.0, |r| r[0]);
        let _ = quad.map_reduce_sum(&b4, 480.0, |r| r[0]);
        let speedup = single.modeled_seconds_parallel() / quad.modeled_seconds_parallel();
        assert!((3.0..4.2).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn latency_floor_does_not_shrink_with_more_devices() {
        // Tiny model: adding devices cannot beat the per-device latency.
        let sample: Vec<f64> = vec![1.0; 64];
        let single = group(1);
        let quad = group(4);
        let b1 = single.upload_partitioned(&sample, 1);
        let b4 = quad.upload_partitioned(&sample, 1);
        single.reset_timing();
        quad.reset_timing();
        let _ = single.map_reduce_sum(&b1, 480.0, |r| r[0]);
        let _ = quad.map_reduce_sum(&b4, 480.0, |r| r[0]);
        assert!(
            quad.modeled_seconds_parallel() >= single.modeled_seconds_parallel() * 0.95,
            "latency-bound work should not speed up: {} vs {}",
            quad.modeled_seconds_parallel(),
            single.modeled_seconds_parallel()
        );
    }

    #[test]
    fn more_devices_than_rows_is_fine() {
        let g = group(4);
        let buf = g.upload_partitioned(&[1.0, 2.0], 1); // 2 rows, 4 devices
        assert_eq!(buf.rows(), 2);
        let s = g.map_reduce_sum(&buf, 1.0, |r| r[0]);
        assert_eq!(s, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty device group")]
    fn empty_group_rejected() {
        DeviceGroup::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "not this group")]
    fn cross_group_partitioned_buffer_rejected() {
        let a = group(2);
        let b = group(2);
        let buf = a.upload_partitioned(&[1.0, 2.0, 3.0, 4.0], 1);
        let _ = b.map_reduce_sum(&buf, 1.0, |r| r[0]);
    }

    #[test]
    #[should_panic(expected = "not this group")]
    fn cross_group_partitioned_soa_rejected() {
        let a = group(2);
        let b = group(2);
        let part = a.stage_partitioned_soa(&[1.0, 2.0, 3.0, 4.0], 1);
        let _ = b.sweep_reduce(&part, 1.0, false, |view, out| {
            out.copy_from_slice(view.col(0));
        });
    }

    #[test]
    fn apportionment_assigns_every_block_exactly_once() {
        for (weights, total) in [
            (vec![1.0, 1.0, 1.0], 10usize),
            (vec![3.0, 1.0], 7),
            (vec![1.0, 100.0, 1.0, 1.0], 5),
            (vec![0.0, 0.0], 4), // degenerate → equal fallback
            (vec![2.5], 0),
        ] {
            let counts = apportion_blocks(&weights, total);
            assert_eq!(counts.iter().sum::<usize>(), total, "{weights:?}/{total}");
        }
        // Proportional seeding: a 3:1 throughput ratio lands 3:1 blocks.
        assert_eq!(apportion_blocks(&[3.0, 1.0], 8), vec![6, 2]);
    }

    #[test]
    fn profile_seeded_shards_cover_the_sample_exactly_once() {
        let fast = Device::new(Backend::SimGpu); // 120 GFLOP/s
        let slow = Device::new(Backend::SimGpu).fission(0.25); // 30 GFLOP/s
        let g = DeviceGroup::new(vec![fast, slow]);
        let rows = 5 * SWEEP_BLOCK_ROWS + 100;
        let dims = 3;
        let sample: Vec<f64> = (0..rows * dims).map(|i| i as f64).collect();
        let part = g.stage_partitioned_soa(&sample, dims);
        assert_eq!(part.rows(), rows);
        assert_eq!(part.blocks(), 6);
        // 120:30 throughput over 6 blocks seeds 5:1 (the slow member's
        // single block is the partial tail).
        assert_eq!(part.shard_rows()[0], 5 * SWEEP_BLOCK_ROWS);
        assert_eq!(part.shard_rows()[1], 100);
        // Staging charged exactly the sample bytes, split across members.
        let staged: u64 = g.devices().iter().map(|d| d.stats().bytes_up).sum();
        assert_eq!(staged as usize, rows * dims * std::mem::size_of::<f64>());
        for d in g.devices() {
            assert_eq!(d.stats().uploads, 1);
        }
    }

    /// The sharded sweep must be bitwise-identical to one device running
    /// the same kernel over the same rows — the deterministic-combine
    /// contract, independent of steal interleaving.
    #[test]
    fn group_sweep_reduce_is_bitwise_identical_to_single_device() {
        for rows in [1usize, 100, 1024, 1500, 4096, 5000] {
            let dims = 2;
            let sample: Vec<f64> = (0..rows * dims).map(|i| (i as f64 * 0.37).sin()).collect();
            let device = Device::new(Backend::CpuSeq);
            let soa = device.stage_rows_soa(&sample, dims);
            let kernel = |view: ColsView<'_>, out: &mut [f64]| {
                let (a, b) = (view.col(0), view.col(1));
                for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
                    *o = x * y + x;
                }
            };
            let (single, _) = device.sweep_reduce(&soa, 3.0, false, kernel);

            let g = DeviceGroup::new(vec![
                Device::new(Backend::CpuSeq),
                Device::new(Backend::CpuPar),
                Device::new(Backend::SimGpu),
            ]);
            let part = g.stage_partitioned_soa(&sample, dims);
            let (grouped, _) = g.sweep_reduce(&part, 3.0, false, kernel);
            assert_eq!(single.to_bits(), grouped.to_bits(), "rows={rows}");
        }
    }

    #[test]
    fn group_multi_reduce_and_retained_match_single_device() {
        let rows = 3000;
        let dims = 2;
        let width = 3;
        let sample: Vec<f64> = (0..rows * dims).map(|i| (i as f64 * 0.11).cos()).collect();
        let kernel = |view: ColsView<'_>, out: &mut [f64]| {
            let (a, b) = (view.col(0), view.col(1));
            for (o, (&x, &y)) in out.chunks_exact_mut(width).zip(a.iter().zip(b)) {
                o[0] = x + y;
                o[1] = x * y;
                o[2] = x - y;
            }
        };
        let device = Device::new(Backend::CpuSeq);
        let soa = device.stage_rows_soa(&sample, dims);
        let (single, single_ret) = device.sweep_multi_reduce(&soa, width, 3.0, true, kernel);

        let g = group(3);
        let part = g.stage_partitioned_soa(&sample, dims);
        let (grouped, grouped_ret) = g.sweep_multi_reduce(&part, width, 3.0, true, kernel);
        for (s, q) in single.iter().zip(&grouped) {
            assert_eq!(s.to_bits(), q.to_bits());
        }
        let a = device.download(&single_ret.unwrap());
        let b = g.primary().download(&grouped_ret.unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Force steals with a paced, lopsided group: the slow member's
    /// virtual clock makes it claim almost nothing, the fast member
    /// steals the difference, and the estimate is still bit-exact.
    #[test]
    fn pacing_forces_steals_without_changing_the_sum() {
        let rows = 16 * SWEEP_BLOCK_ROWS;
        let sample: Vec<f64> = (0..rows).map(|i| (i as f64).sqrt()).collect();
        let kernel = |view: ColsView<'_>, out: &mut [f64]| out.copy_from_slice(view.col(0));
        let device = Device::new(Backend::CpuSeq);
        let soa = device.stage_rows_soa(&sample, 1);
        let (single, _) = device.sweep_reduce(&soa, 1.0, false, kernel);

        let fast = Device::new(Backend::SimGpu);
        let slow = Device::new(Backend::SimGpu).fission(0.01);
        // Equal split despite the 100x modeled gap; pacing exposes it.
        let g = DeviceGroup::new(vec![fast, slow]).with_pace(2000.0);
        let part = g.stage_partitioned_soa_with(&sample, 1, Partition::Equal);
        let (grouped, _) = g.sweep_reduce(&part, 1.0, false, kernel);
        assert_eq!(single.to_bits(), grouped.to_bits());
        let stats = g.stats();
        assert_eq!(stats.blocks_executed, 16);
        assert!(stats.steals > 0, "paced lopsided group never stole");
        assert!(stats.imbalance > 1.0);
    }

    #[test]
    fn stealing_disabled_keeps_blocks_on_their_owners() {
        let rows = 8 * SWEEP_BLOCK_ROWS;
        let sample: Vec<f64> = vec![1.0; rows];
        let g = group(2).with_stealing(false);
        let part = g.stage_partitioned_soa_with(&sample, 1, Partition::Equal);
        let (sum, _) = g.sweep_reduce(&part, 1.0, false, |view, out| {
            out.copy_from_slice(view.col(0))
        });
        assert_eq!(sum, rows as f64);
        let stats = g.stats();
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.per_device_blocks, vec![4, 4]);
    }

    #[test]
    fn empty_steal_victims_are_skipped() {
        // 2 blocks over 4 devices: two shards are empty from the start;
        // idle workers must terminate and the sweep must still cover
        // every row exactly once.
        let rows = SWEEP_BLOCK_ROWS + 7;
        let sample: Vec<f64> = vec![2.0; rows];
        let g = group(4);
        let part = g.stage_partitioned_soa(&sample, 1);
        let (sum, _) = g.sweep_reduce(&part, 1.0, false, |view, out| {
            out.copy_from_slice(view.col(0))
        });
        assert_eq!(sum, 2.0 * rows as f64);
        assert_eq!(g.stats().blocks_executed, 2);
    }

    #[test]
    fn group_sweep_charges_one_launch_per_participant() {
        let rows = 4 * SWEEP_BLOCK_ROWS;
        let sample: Vec<f64> = vec![1.0; rows];
        // Stealing off so both members deterministically participate (a
        // fast worker could otherwise drain every block before its peer
        // even starts on these tiny kernels).
        let g = group(2).with_stealing(false);
        let part = g.stage_partitioned_soa_with(&sample, 1, Partition::Equal);
        g.reset_timing();
        let _ = g.sweep_reduce(&part, 480.0, false, |view, out| {
            out.copy_from_slice(view.col(0))
        });
        let s0 = g.devices()[0].stats();
        let s1 = g.devices()[1].stats();
        // One persistent launch each; only the primary reads back.
        assert_eq!(s0.kernels, 1);
        assert_eq!(s1.kernels, 1);
        assert_eq!(s0.downloads, 1);
        assert_eq!(s0.bytes_down, 8);
        assert_eq!(s1.downloads, 0);
        // Modeled group time beats a single device on the same work.
        let single = Device::new(Backend::SimGpu);
        let soa = single.stage_rows_soa(&sample, 1);
        single.reset_timing();
        let _ = single.sweep_reduce(&soa, 480.0, false, |view, out| {
            out.copy_from_slice(view.col(0))
        });
        assert!(g.modeled_seconds_parallel() < single.modeled_seconds());
    }
}
