//! Execution devices for the KDE kernels.
//!
//! The paper offloads every major estimator operation — estimation, model
//! optimization, sample maintenance — to an OpenCL device (§5), keeping the
//! sample resident on the GPU and transferring only query bounds, gradients
//! and replacement points over PCI Express. Mature GPU-compute crates are
//! not available to this port, so the device layer reproduces the paper's
//! *execution model* instead of its silicon:
//!
//! * [`Backend::CpuSeq`] — sequential reference execution,
//! * [`Backend::CpuPar`] — data-parallel execution on all cores (rayon),
//!   the analogue of the paper's Intel OpenCL CPU backend,
//! * [`Backend::SimGpu`] — executes the same kernels (in parallel on the
//!   CPU, so all numeric results are identical) while charging an
//!   analytical *cost model* for every kernel launch, PCIe transfer and
//!   reduction pass. The model constants are calibrated to the paper's
//!   GTX-460 / Xeon E5620 measurements (Figure 7), reproducing the
//!   latency-bound flat region for small models, the throughput-bound
//!   linear region for large ones, and the ~4× GPU/CPU asymptotic ratio.
//!
//! Every [`Device`] tracks both *modeled* time (from the cost model) and
//! *measured* wall time, plus transfer-volume counters used to validate the
//! paper's transfer-efficiency claims for sample maintenance (§4.2).

pub mod cost;
pub mod device;
pub mod multi;

pub use cost::{CostModel, CostProfile};
pub use device::{Backend, Device, DeviceBuffer, DeviceStats};
pub use multi::{DeviceGroup, PartitionedBuffer};
