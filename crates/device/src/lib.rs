//! Execution devices for the KDE kernels.
//!
//! The paper offloads every major estimator operation — estimation, model
//! optimization, sample maintenance — to an OpenCL device (§5), keeping the
//! sample resident on the GPU and transferring only query bounds, gradients
//! and replacement points over PCI Express. Mature GPU-compute crates are
//! not available to this port, so the device layer reproduces the paper's
//! *execution model* instead of its silicon:
//!
//! * [`Backend::CpuSeq`] — sequential reference execution,
//! * [`Backend::CpuPar`] — data-parallel execution on all cores (rayon),
//!   the analogue of the paper's Intel OpenCL CPU backend,
//! * [`Backend::SimGpu`] — executes the same kernels (in parallel on the
//!   CPU, so all numeric results are identical) while charging an
//!   analytical *cost model* for every kernel launch, PCIe transfer and
//!   reduction pass. The model constants are calibrated to the paper's
//!   GTX-460 / Xeon E5620 measurements (Figure 7), reproducing the
//!   latency-bound flat region for small models, the throughput-bound
//!   linear region for large ones, and the ~4× GPU/CPU asymptotic ratio.
//!
//! Every [`Device`] tracks both *modeled* time (from the cost model) and
//! *measured* wall time, plus transfer-volume counters used to validate the
//! paper's transfer-efficiency claims for sample maintenance (§4.2).
//!
//! # Thread-ownership contract
//!
//! The serving layer (`kdesel-serve`) moves estimators — and therefore
//! their devices and buffers — onto dedicated executor threads. The types
//! in this crate uphold the following contract, pinned by
//! [`thread_contract`] below so a regression fails to compile:
//!
//! * [`Device`] is `Send + Sync`. All of its methods take `&self`; the
//!   timing ledger sits behind a `Mutex` and the telemetry meters are
//!   atomics, so stats reads ([`Device::stats`],
//!   [`Device::modeled_seconds`]) are safe from any thread while another
//!   thread launches kernels. The *command stream* of one model, however,
//!   is expected to stay on a single owner thread — exactly one executor
//!   per model, like one OpenCL command queue per context in the paper's
//!   implementation. Nothing unsafe happens if two threads launch on one
//!   device concurrently; they only contend on the timing mutex and
//!   interleave counter updates.
//! * [`DeviceBuffer`] is `Send + Sync` as plain owned memory, but it is
//!   deliberately *not* `Clone`: all mutation flows through `Device`
//!   methods (`upload`, `write_at`, `update_inplace`, …) on the owning
//!   thread, mirroring device memory that host threads cannot alias.
//! * The parallel backends run on `kdesel-par`'s *scoped* threads with a
//!   fixed chunk count, so results are deterministic and identical no
//!   matter which thread — or how many sibling executors — issue the
//!   launch.
//! * [`DeviceGroup`] sweeps spawn one *scoped* worker thread per member
//!   device (the scoped-threadpool-per-device shape): each worker is the
//!   sole command stream of its `Device` for the sweep's duration, and
//!   only *reads* peer shards when stealing ([`SoaBuffer`] is `Sync`).
//!   Partial results are merged on the calling thread after the scope
//!   joins, so the group upholds the same one-owner command-stream
//!   discipline per device.
//!
//! Consequently an estimator (`kdesel_kde::KdeEstimator`) composed of a
//! `Device` plus `DeviceBuffer`s is `Send`: it may be built on one thread
//! and handed to an executor thread wholesale. `kdesel-serve` relies on
//! exactly that and adds its own compile-time audit for the estimator
//! types.

pub mod calibrate;
pub mod cost;
pub mod device;
pub mod multi;
mod pool;
pub mod profile;

pub use calibrate::{CalibrationConfig, FitReport, MeasuredPoint, MeasuredProfile};
pub use cost::{CostModel, CostProfile};
pub use device::{
    Backend, ColsView, Device, DeviceBuffer, DeviceStats, SoaBuffer, SWEEP_BLOCK_ROWS,
};
pub use multi::{DeviceGroup, GroupStats, Partition, PartitionedBuffer, PartitionedSoa};
pub use profile::{DeviceProfile, KindProfile, Launch, LaunchKind};

/// Compile-time pin of the thread-ownership contract documented above.
/// If a field change makes any of these types lose `Send`/`Sync`, this
/// stops compiling — the serving layer's executor threads depend on it.
#[allow(dead_code)]
fn thread_contract() {
    fn send_and_sync<T: Send + Sync>() {}
    send_and_sync::<Device>();
    send_and_sync::<DeviceBuffer>();
    send_and_sync::<DeviceStats>();
    send_and_sync::<SoaBuffer>();
    send_and_sync::<DeviceGroup>();
    send_and_sync::<PartitionedBuffer>();
    send_and_sync::<PartitionedSoa>();
    send_and_sync::<GroupStats>();
    send_and_sync::<DeviceProfile>();
    send_and_sync::<MeasuredProfile>();
}
