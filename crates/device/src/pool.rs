//! Size-class pooled allocator for device buffers.
//!
//! Every buffer the device layer hands out ([`crate::DeviceBuffer`]) owns
//! a handle back to its device's pool; dropping the buffer returns the
//! backing storage to a power-of-two size-class free list instead of the
//! global heap. Steady-state serving — the serve crate's one executor
//! thread per model, issuing one fused launch per coalesced batch —
//! cycles through the same handful of buffer sizes (staged query bounds,
//! per-point values, retained contributions), so after a warmup batch
//! every acquisition is a pool hit and the hot loop performs **zero heap
//! allocations per batch** (pinned by `tests/alloc_pool.rs` with a
//! counting global allocator).
//!
//! The pool is shared behind an `Arc` and guarded by a `Mutex`, but the
//! device thread-ownership contract (one executor thread drives one
//! model's command stream) makes the lock uncontended in practice — the
//! free lists are effectively thread-owned, matching the serve crate's
//! one-thread-per-model design. Hit/miss counters surface through
//! [`crate::DeviceStats`] and, when telemetry is enabled, the
//! `device.pool_*` instruments.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Buffers shorter than this many elements bypass the pool: the heap
/// already serves tiny allocations well, and pooling them would bloat
/// the class map with one-off sizes (scalar results, short bound lists).
const MIN_POOL_ELEMS: usize = 32;

/// Free-list depth per size class; beyond this, released buffers are
/// genuinely freed so a burst cannot pin memory forever.
const MAX_PER_CLASS: usize = 16;

/// Telemetry instrument handles, resolved once per pool.
#[derive(Debug)]
struct PoolMeters {
    hits: Arc<kdesel_telemetry::Counter>,
    misses: Arc<kdesel_telemetry::Counter>,
    held_bytes: Arc<kdesel_telemetry::Gauge>,
}

/// Per-device recycling allocator with power-of-two size classes.
#[derive(Debug)]
pub(crate) struct BufferPool {
    /// Class capacity → cleared vectors whose capacity is ≥ the class.
    free: Mutex<BTreeMap<usize, Vec<Vec<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Bytes currently parked on the free lists (pool occupancy).
    held_bytes: AtomicU64,
    meters: PoolMeters,
}

impl BufferPool {
    pub(crate) fn new() -> Self {
        let r = kdesel_telemetry::registry();
        Self {
            free: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            held_bytes: AtomicU64::new(0),
            meters: PoolMeters {
                hits: r.counter("device.pool_hits"),
                misses: r.counter("device.pool_misses"),
                held_bytes: r.gauge("device.pool_held_bytes"),
            },
        }
    }

    /// Acquisitions served from a free list.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquisitions that fell through to the heap.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bytes currently parked on the free lists.
    pub(crate) fn held_bytes(&self) -> u64 {
        self.held_bytes.load(Ordering::Relaxed)
    }

    /// Resets the hit/miss counters (pool contents are kept — occupancy
    /// reflects real state, counters are a measurement window).
    pub(crate) fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// An empty, cleared vector with capacity for at least `len`
    /// elements — from a free list when one fits, else the heap.
    ///
    /// Tiny requests (below [`MIN_POOL_ELEMS`]) bypass the pool by
    /// design and count as neither hit nor miss: they never enter a
    /// free list, so charging them as misses would make a perfectly
    /// warm steady state look like it leaks.
    fn acquire_raw(&self, len: usize) -> Vec<f64> {
        if len < MIN_POOL_ELEMS {
            return Vec::with_capacity(len);
        }
        let class = len.next_power_of_two();
        let reused = {
            let mut free = self.free.lock().unwrap();
            // Smallest class that can hold `len`; every parked vector
            // has capacity ≥ its class key.
            let found = free.range_mut(class..).find_map(|(_, list)| list.pop());
            if let Some(v) = &found {
                let bytes = (v.capacity() * std::mem::size_of::<f64>()) as u64;
                self.held_bytes.fetch_sub(bytes, Ordering::Relaxed);
            }
            found
        };
        if let Some(mut v) = reused {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if kdesel_telemetry::enabled() {
                self.meters.hits.add(1);
                self.meters.held_bytes.set(self.held_bytes() as f64);
            }
            v.clear();
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if kdesel_telemetry::enabled() {
            self.meters.misses.add(1);
        }
        Vec::with_capacity(class)
    }

    /// A zero-filled vector of exactly `len` elements.
    pub(crate) fn acquire_zeroed(&self, len: usize) -> Vec<f64> {
        let mut v = self.acquire_raw(len);
        v.resize(len, 0.0);
        v
    }

    /// A vector holding a copy of `host`.
    pub(crate) fn acquire_copy(&self, host: &[f64]) -> Vec<f64> {
        let mut v = self.acquire_raw(host.len());
        v.extend_from_slice(host);
        v
    }

    /// Returns a vector's storage to its size-class free list (or frees
    /// it when too small to pool or the class list is full).
    pub(crate) fn release(&self, mut v: Vec<f64>) {
        let cap = v.capacity();
        if cap < MIN_POOL_ELEMS {
            return;
        }
        // Largest power of two ≤ capacity, so the class key never
        // overstates what the vector can hold.
        let class = 1usize << (usize::BITS - 1 - cap.leading_zeros());
        v.clear();
        {
            let mut free = self.free.lock().unwrap();
            let list = free.entry(class).or_default();
            if list.len() >= MAX_PER_CLASS {
                return; // drop `v`: genuinely free it
            }
            list.push(v);
        }
        let bytes = (cap * std::mem::size_of::<f64>()) as u64;
        self.held_bytes.fetch_add(bytes, Ordering::Relaxed);
        if kdesel_telemetry::enabled() {
            self.meters.held_bytes.set(self.held_bytes() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_acquire_is_a_hit_with_same_storage() {
        let pool = BufferPool::new();
        let v = pool.acquire_zeroed(1000);
        assert_eq!((pool.hits(), pool.misses()), (0, 1));
        assert_eq!(v.len(), 1000);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        pool.release(v);
        assert!(pool.held_bytes() >= (1000 * 8) as u64);
        let v2 = pool.acquire_zeroed(900); // same 1024-class
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
        assert_eq!((v2.as_ptr(), v2.capacity()), (ptr, cap));
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(pool.held_bytes(), 0);
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        let pool = BufferPool::new();
        let v = pool.acquire_copy(&[1.0; 8]);
        assert_eq!(v, [1.0; 8]);
        pool.release(v);
        assert_eq!(pool.held_bytes(), 0);
        let _ = pool.acquire_zeroed(8);
        // Bypassed acquisitions are invisible to the hit/miss counters.
        assert_eq!((pool.hits(), pool.misses()), (0, 0));
    }

    #[test]
    fn larger_class_serves_smaller_request() {
        let pool = BufferPool::new();
        let v = pool.acquire_zeroed(4096);
        pool.release(v);
        // 100 → class 128; the 4096-class buffer is the only candidate.
        let v2 = pool.acquire_zeroed(100);
        assert_eq!(v2.len(), 100);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn class_depth_is_bounded() {
        let pool = BufferPool::new();
        let vecs: Vec<_> = (0..MAX_PER_CLASS + 4)
            .map(|_| pool.acquire_zeroed(64))
            .collect();
        for v in vecs {
            pool.release(v);
        }
        let held = pool.held_bytes();
        assert!(
            held <= (MAX_PER_CLASS * 64 * 8) as u64,
            "held {held} exceeds class cap"
        );
    }

    #[test]
    fn counter_reset_keeps_contents() {
        let pool = BufferPool::new();
        pool.release(pool.acquire_zeroed(256));
        pool.reset_counters();
        assert_eq!((pool.hits(), pool.misses()), (0, 0));
        let _ = pool.acquire_zeroed(256);
        assert_eq!(pool.hits(), 1, "pooled storage must survive a reset");
    }
}
