//! Self-calibrating cost model: measure, fit, emit.
//!
//! The paper calibrates its device cost model per installation (§6.4:
//! launch latency, transfer bandwidth, and effective throughput are
//! measured on the target GPU/CPU, not assumed). This module closes the
//! same loop for the simulated device layer:
//!
//! 1. [`microbenchmark`] runs a structured sweep of transfers, scalar
//!    map kernels, and vectorized columnar sweeps over a grid of sizes
//!    (n) and arithmetic intensities, recording the median wall time of
//!    each point on a chosen [`Backend`].
//! 2. [`fit`] estimates all five [`CostProfile`] parameters by least
//!    squares in log space against those measurements, reusing the
//!    `kdesel-solver` L-BFGS stack the bandwidth optimizer runs on.
//!    Positivity is enforced by optimizing `u = ln θ`; log-space
//!    residuals weigh a 2x error on a 1 µs launch the same as a 2x
//!    error on a 10 ms sweep.
//! 3. The result is a versioned [`MeasuredProfile`] (JSON round-trip,
//!    hand-rolled like `kdesel-kde`'s snapshots) carrying the fitted
//!    profile, every point's modeled-vs-measured residual, and the
//!    median relative error — the number the `kdesel-calibrate` binary
//!    gates on.
//!
//! A fitted profile plugs straight back into the runtime:
//! [`Device::with_profile`](crate::Device::with_profile) and
//! [`DeviceGroup::homogeneous`](crate::DeviceGroup::homogeneous) accept
//! it, and `kdesel-serve` derives its adaptive batching deadline from
//! the same measured launch costs.

use crate::cost::CostProfile;
use crate::device::{Backend, Device};
use kdesel_solver::{lbfgs, Bounds, FnObjective, LbfgsConfig, OptOutcome};
use std::time::Instant;

/// Schema version of the [`MeasuredProfile`] JSON.
pub const MEASURED_PROFILE_VERSION: u64 = 1;

/// Which microbenchmark produced a point; selects the analytical model
/// the fit matches against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointOp {
    /// One host→device transfer of `bytes`
    /// (model: `transfer_latency + bytes / transfer_bandwidth`).
    Transfer,
    /// One scalar row-major map kernel
    /// (model: `kernel_launch_latency + items·flops / compute_throughput`).
    Kernel,
    /// One fused columnar sweep + reduction, including its scalar
    /// readback (model: vectorized kernel at `flops + 4` plus an 8-byte
    /// transfer).
    Sweep,
}

impl PointOp {
    /// Stable identifier used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            PointOp::Transfer => "transfer",
            PointOp::Kernel => "kernel",
            PointOp::Sweep => "sweep",
        }
    }

    fn parse(name: &str) -> Result<Self, String> {
        match name {
            "transfer" => Ok(PointOp::Transfer),
            "kernel" => Ok(PointOp::Kernel),
            "sweep" => Ok(PointOp::Sweep),
            other => Err(format!("unknown point op {other:?}")),
        }
    }
}

/// One microbenchmark measurement, with its post-fit model comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// Which hot path ran.
    pub op: PointOp,
    /// Rows/items the launch processed (0 for pure transfers).
    pub items: u64,
    /// Claimed FLOPs per item (what the cost model is charged with).
    pub flops_per_item: f64,
    /// Bytes moved host↔device.
    pub bytes: u64,
    /// Median wall seconds over the repetitions.
    pub measured_seconds: f64,
    /// Seconds the fitted profile predicts for this point (0 before fit).
    pub modeled_seconds: f64,
    /// Relative residual `|modeled - measured| / measured` (0 before fit).
    pub residual: f64,
}

/// Microbenchmark sweep shape.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Wall-time repetitions per point; the median is kept.
    pub reps: usize,
    /// Quick sweep (CI-sized) vs the full grid.
    pub quick: bool,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            reps: 3,
            quick: true,
        }
    }
}

impl CalibrationConfig {
    /// Row counts for the kernel/sweep grid.
    fn kernel_sizes(&self) -> &'static [usize] {
        if self.quick {
            &[4096, 32768]
        } else {
            &[4096, 16384, 65536]
        }
    }

    /// Dimensionalities for the kernel/sweep grid. Arithmetic intensity
    /// per row scales with `d` at a *fixed* chain length per column:
    /// elements are independent across columns and rows, so measured
    /// time stays linear in `n · d` — the linearity the cost model
    /// assumes. (Varying the dependent-chain length instead does NOT
    /// scale linearly: short chains pipeline across rows, long chains
    /// are latency-bound, and the fit cannot absorb that bend.)
    fn dims(&self) -> &'static [usize] {
        if self.quick {
            &[1, 4]
        } else {
            &[1, 4, 16]
        }
    }

    /// Element counts for the transfer grid: one small latency-bound
    /// point plus large DRAM-resident points. Mid sizes that fit L2/L3
    /// are deliberately skipped — their apparent bandwidth is a cache
    /// artifact a single-bandwidth model cannot represent.
    fn transfer_sizes(&self) -> &'static [usize] {
        if self.quick {
            &[512, 524288, 2097152]
        } else {
            &[512, 4096, 524288, 1048576, 2097152]
        }
    }
}

/// Fixed dependent-chain length per element in the microbenchmark
/// kernels; each link is one `mul_add`, claimed as 2 FLOPs.
const CHAIN_LINKS: usize = 32;

/// Outcome diagnostics of one least-squares fit.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Whether the optimizer reached a tolerance (gradient/value), or
    /// stalled at numerical precision (line-search exhaustion at a
    /// minimum counts as converged for calibration purposes).
    pub converged: bool,
    /// Raw optimizer outcome.
    pub outcome: OptOutcome,
    /// L-BFGS iterations.
    pub iterations: usize,
    /// Final sum of squared log residuals.
    pub objective: f64,
}

/// A versioned, serializable calibration result: the fitted profile and
/// the evidence behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredProfile {
    /// Schema version ([`MEASURED_PROFILE_VERSION`]).
    pub version: u64,
    /// Backend name the sweep ran on (`Backend::name`).
    pub backend: String,
    /// The fitted cost-model parameters.
    pub profile: CostProfile,
    /// Every microbenchmark point with its modeled-vs-measured residual.
    pub points: Vec<MeasuredPoint>,
    /// Median of the per-point relative residuals.
    pub median_residual: f64,
}

/// The model a fit matches: predicted seconds for `point` under
/// `profile`, mirroring exactly what `Device` charges for the
/// corresponding operation.
pub fn modeled_seconds(point: &MeasuredPoint, profile: &CostProfile) -> f64 {
    let items = point.items as f64;
    match point.op {
        PointOp::Transfer => {
            profile.transfer_latency + point.bytes as f64 / profile.transfer_bandwidth
        }
        PointOp::Kernel => {
            profile.kernel_launch_latency
                + items * point.flops_per_item / profile.compute_throughput
        }
        PointOp::Sweep => {
            profile.kernel_launch_latency
                + items * (point.flops_per_item + 4.0)
                    / (profile.compute_throughput * profile.vector_width)
                + profile.transfer_latency
                + 8.0 / profile.transfer_bandwidth
        }
    }
}

/// A serial dependent chain of `links` fused multiply-adds — real work
/// the optimizer cannot elide, claimed as `2 · links` FLOPs. The chain
/// is dependent within one row but independent across rows, so the
/// columnar sweep variant can vectorize where the row-major map cannot:
/// exactly the contrast `vector_width` models.
#[inline]
fn busy(x: f64, links: usize) -> f64 {
    let mut acc = x;
    for _ in 0..links {
        acc = acc.mul_add(1.000_000_1, 1e-9);
    }
    acc
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs the structured (size × intensity) microbenchmark sweep on
/// `backend`, returning one point per grid cell with its median wall
/// time. Modeled fields are zero until [`fit`] fills them.
pub fn microbenchmark(backend: Backend, config: &CalibrationConfig) -> Vec<MeasuredPoint> {
    assert!(config.reps >= 1, "at least one repetition");
    let device = Device::with_profile(backend, CostProfile::free());
    let mut points = Vec::new();

    // Transfers: upload n elements, time the call alone (the returned
    // buffer drops outside the timed region).
    for &n in config.transfer_sizes() {
        let host = vec![0.5f64; n];
        // Warm the pool so steady-state reuse is what gets measured.
        drop(device.upload(&host));
        let times: Vec<f64> = (0..config.reps)
            .map(|_| {
                let start = Instant::now();
                let buf = device.upload(&host);
                let elapsed = start.elapsed().as_secs_f64();
                drop(buf);
                elapsed
            })
            .collect();
        points.push(MeasuredPoint {
            op: PointOp::Transfer,
            items: 0,
            flops_per_item: 0.0,
            bytes: (n * std::mem::size_of::<f64>()) as u64,
            measured_seconds: median(times),
            modeled_seconds: 0.0,
            residual: 0.0,
        });
    }

    // Scalar kernels: a d-wide row-major map, one fixed-length dependent
    // chain per column summed across the row.
    for &n in config.kernel_sizes() {
        for &dims in config.dims() {
            let flops_per_item = (2 * CHAIN_LINKS * dims) as f64;
            let host = vec![0.5f64; n * dims];
            let buf = device.upload(&host);
            let kernel = |row: &[f64]| row.iter().map(|&v| busy(v, CHAIN_LINKS)).sum();
            drop(device.map_rows(&buf, dims, flops_per_item, kernel));
            let times: Vec<f64> = (0..config.reps)
                .map(|_| {
                    let start = Instant::now();
                    let out = device.map_rows(&buf, dims, flops_per_item, kernel);
                    let elapsed = start.elapsed().as_secs_f64();
                    drop(out);
                    elapsed
                })
                .collect();
            points.push(MeasuredPoint {
                op: PointOp::Kernel,
                items: n as u64,
                flops_per_item,
                bytes: 0,
                measured_seconds: median(times),
                modeled_seconds: 0.0,
                residual: 0.0,
            });
        }
    }

    // Vectorized sweeps: the same per-column chain over the columnar
    // layout, fused with the tree reduction (one scalar readback rides
    // along).
    for &n in config.kernel_sizes() {
        for &dims in config.dims() {
            let flops_per_item = (2 * CHAIN_LINKS * dims) as f64;
            let host = vec![0.5f64; n * dims];
            let soa = device.stage_rows_soa(&host, dims);
            let kernel = |cols: crate::device::ColsView<'_>, out: &mut [f64]| {
                for d in 0..dims {
                    let col = cols.col(d);
                    for (o, &v) in out.iter_mut().zip(col) {
                        *o += busy(v, CHAIN_LINKS);
                    }
                }
            };
            let _ = device.sweep_reduce(&soa, flops_per_item, false, kernel);
            let times: Vec<f64> = (0..config.reps)
                .map(|_| {
                    let start = Instant::now();
                    let _ = device.sweep_reduce(&soa, flops_per_item, false, kernel);
                    start.elapsed().as_secs_f64()
                })
                .collect();
            points.push(MeasuredPoint {
                op: PointOp::Sweep,
                items: n as u64,
                flops_per_item,
                bytes: 8,
                measured_seconds: median(times),
                modeled_seconds: 0.0,
                residual: 0.0,
            });
        }
    }

    points
}

/// Parameter order inside the optimizer's `u = ln θ` vector.
const P_LAUNCH: usize = 0;
const P_TRANSFER_LAT: usize = 1;
const P_BANDWIDTH: usize = 2;
const P_THROUGHPUT: usize = 3;
const P_WIDTH: usize = 4;

fn profile_of(u: &[f64]) -> CostProfile {
    CostProfile {
        kernel_launch_latency: u[P_LAUNCH].exp(),
        transfer_latency: u[P_TRANSFER_LAT].exp(),
        transfer_bandwidth: u[P_BANDWIDTH].exp(),
        compute_throughput: u[P_THROUGHPUT].exp(),
        vector_width: u[P_WIDTH].exp(),
    }
}

/// Fits all five [`CostProfile`] parameters to `points` by least squares
/// on log residuals, `Σ (ln modeled − ln measured)²`, with analytic
/// gradients through `θ = exp(u)`. Returns the versioned profile (every
/// point annotated with its residual) plus optimizer diagnostics.
///
/// # Panics
/// Panics on an empty point list or non-positive measured times.
pub fn fit(backend: Backend, points: &[MeasuredPoint]) -> (MeasuredProfile, FitReport) {
    assert!(!points.is_empty(), "no calibration points");
    assert!(
        points.iter().all(|p| p.measured_seconds > 0.0),
        "non-positive measured time"
    );

    let data = points.to_vec();
    let objective = FnObjective::new(5, move |u: &[f64], grad: &mut [f64]| {
        let p = profile_of(u);
        grad.fill(0.0);
        let mut sum = 0.0;
        for point in &data {
            let m = modeled_seconds(point, &p);
            let r = m.ln() - point.measured_seconds.ln();
            sum += r * r;
            // ∂E/∂u_j = 2 r · (θ_j / m) · ∂m/∂θ_j, for each θ the
            // point's model depends on.
            let scale = 2.0 * r / m;
            let items = point.items as f64;
            match point.op {
                PointOp::Transfer => {
                    grad[P_TRANSFER_LAT] += scale * p.transfer_latency;
                    grad[P_BANDWIDTH] += scale * (-(point.bytes as f64) / p.transfer_bandwidth);
                }
                PointOp::Kernel => {
                    grad[P_LAUNCH] += scale * p.kernel_launch_latency;
                    grad[P_THROUGHPUT] +=
                        scale * (-items * point.flops_per_item / p.compute_throughput);
                }
                PointOp::Sweep => {
                    let compute = items * (point.flops_per_item + 4.0)
                        / (p.compute_throughput * p.vector_width);
                    grad[P_LAUNCH] += scale * p.kernel_launch_latency;
                    grad[P_TRANSFER_LAT] += scale * p.transfer_latency;
                    grad[P_BANDWIDTH] += scale * (-8.0 / p.transfer_bandwidth);
                    grad[P_THROUGHPUT] += scale * (-compute);
                    grad[P_WIDTH] += scale * (-compute);
                }
            }
        }
        sum
    });

    // Bounds in u = ln θ: latencies within [1 ns, 100 ms], rates within
    // [10^5, 10^15] per second, lane width within [1/4, 64].
    let bounds = Bounds::new(
        vec![
            (1e-9f64).ln(),
            (1e-9f64).ln(),
            (1e5f64).ln(),
            (1e5f64).ln(),
            (0.25f64).ln(),
        ],
        vec![
            (1e-1f64).ln(),
            (1e-1f64).ln(),
            (1e15f64).ln(),
            (1e15f64).ln(),
            (64.0f64).ln(),
        ],
    );
    let x0 = vec![
        (1e-5f64).ln(),
        (1e-5f64).ln(),
        (1e9f64).ln(),
        (1e9f64).ln(),
        0.0, // vector_width = 1
    ];
    let config = LbfgsConfig {
        max_iterations: 500,
        ..LbfgsConfig::default()
    };
    let result = lbfgs(&objective, &bounds, &x0, &config);
    let profile = profile_of(&result.x);

    let annotated: Vec<MeasuredPoint> = points
        .iter()
        .map(|point| {
            let modeled = modeled_seconds(point, &profile);
            MeasuredPoint {
                modeled_seconds: modeled,
                residual: (modeled - point.measured_seconds).abs() / point.measured_seconds,
                ..point.clone()
            }
        })
        .collect();
    let median_residual = median(annotated.iter().map(|p| p.residual).collect());

    let report = FitReport {
        // Line-search exhaustion at the bottom of a well-scaled
        // least-squares bowl means "already at a minimum to numerical
        // precision" (see `OptOutcome::LineSearchFailed`); calibration
        // treats it as converged and lets the residual gate judge.
        converged: result.converged() || matches!(result.outcome, OptOutcome::LineSearchFailed),
        outcome: result.outcome,
        iterations: result.iterations,
        objective: result.f,
    };
    (
        MeasuredProfile {
            version: MEASURED_PROFILE_VERSION,
            backend: backend.name().to_string(),
            profile,
            points: annotated,
            median_residual,
        },
        report,
    )
}

/// [`microbenchmark`] then [`fit`] in one call.
pub fn calibrate(backend: Backend, config: &CalibrationConfig) -> (MeasuredProfile, FitReport) {
    let points = microbenchmark(backend, config);
    fit(backend, &points)
}

impl MeasuredProfile {
    /// The backend this profile was measured on, if its name is known.
    pub fn backend(&self) -> Option<Backend> {
        Backend::from_name(&self.backend)
    }

    /// Serializes as one JSON object. Floats use round-trip formatting,
    /// so [`MeasuredProfile::from_json`] recovers them bit-exactly.
    pub fn to_json(&self) -> String {
        let p = &self.profile;
        let mut out = String::with_capacity(256 + self.points.len() * 160);
        out.push_str(&format!(
            "{{\"v\":{},\"backend\":\"{}\",\"median_residual\":{:?},",
            self.version, self.backend, self.median_residual
        ));
        out.push_str(&format!(
            "\"profile\":{{\"kernel_launch_latency\":{:?},\"transfer_latency\":{:?},\
             \"transfer_bandwidth\":{:?},\"compute_throughput\":{:?},\"vector_width\":{:?}}},",
            p.kernel_launch_latency,
            p.transfer_latency,
            p.transfer_bandwidth,
            p.compute_throughput,
            p.vector_width
        ));
        out.push_str("\"points\":[");
        for (i, point) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"op\":\"{}\",\"items\":{},\"flops_per_item\":{:?},\"bytes\":{},\
                 \"measured_seconds\":{:?},\"modeled_seconds\":{:?},\"residual\":{:?}}}",
                point.op.name(),
                point.items,
                point.flops_per_item,
                point.bytes,
                point.measured_seconds,
                point.modeled_seconds,
                point.residual
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses a profile serialized by [`MeasuredProfile::to_json`]. Keys
    /// may appear in any order; unknown keys and version mismatches are
    /// errors (a newer writer must not be silently misread).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut p = json::Parser::new(json);
        p.skip_ws();
        p.expect(b'{')?;
        let mut version = None;
        let mut backend = None;
        let mut median_residual = None;
        let mut profile = None;
        let mut points = None;
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "v" => version = Some(p.number()? as u64),
                "backend" => backend = Some(p.string()?),
                "median_residual" => median_residual = Some(p.number()?),
                "profile" => profile = Some(parse_profile(&mut p)?),
                "points" => points = Some(parse_points(&mut p)?),
                other => return Err(format!("unknown measured-profile key {other:?}")),
            }
            p.skip_ws();
            match p.next()? {
                b',' => continue,
                b'}' => break,
                c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
            }
        }
        let version = version.ok_or("missing v")?;
        if version != MEASURED_PROFILE_VERSION {
            return Err(format!(
                "measured-profile version {version} (supported: {MEASURED_PROFILE_VERSION})"
            ));
        }
        Ok(Self {
            version,
            backend: backend.ok_or("missing backend")?,
            profile: profile.ok_or("missing profile")?,
            median_residual: median_residual.ok_or("missing median_residual")?,
            points: points.ok_or("missing points")?,
        })
    }
}

fn parse_profile(p: &mut json::Parser<'_>) -> Result<CostProfile, String> {
    p.expect(b'{')?;
    let mut launch = None;
    let mut transfer_lat = None;
    let mut bandwidth = None;
    let mut throughput = None;
    let mut width = None;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "kernel_launch_latency" => launch = Some(p.number()?),
            "transfer_latency" => transfer_lat = Some(p.number()?),
            "transfer_bandwidth" => bandwidth = Some(p.number()?),
            "compute_throughput" => throughput = Some(p.number()?),
            "vector_width" => width = Some(p.number()?),
            other => return Err(format!("unknown profile key {other:?}")),
        }
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b'}' => break,
            c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
        }
    }
    Ok(CostProfile {
        kernel_launch_latency: launch.ok_or("missing kernel_launch_latency")?,
        transfer_latency: transfer_lat.ok_or("missing transfer_latency")?,
        transfer_bandwidth: bandwidth.ok_or("missing transfer_bandwidth")?,
        compute_throughput: throughput.ok_or("missing compute_throughput")?,
        vector_width: width.ok_or("missing vector_width")?,
    })
}

fn parse_points(p: &mut json::Parser<'_>) -> Result<Vec<MeasuredPoint>, String> {
    p.expect(b'[')?;
    let mut points = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.next()?;
        return Ok(points);
    }
    loop {
        p.skip_ws();
        points.push(parse_point(p)?);
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b']' => break,
            c => return Err(format!("expected ',' or ']', found {:?}", c as char)),
        }
    }
    Ok(points)
}

fn parse_point(p: &mut json::Parser<'_>) -> Result<MeasuredPoint, String> {
    p.expect(b'{')?;
    let mut op = None;
    let mut items = None;
    let mut flops = None;
    let mut bytes = None;
    let mut measured = None;
    let mut modeled = None;
    let mut residual = None;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "op" => op = Some(PointOp::parse(&p.string()?)?),
            "items" => items = Some(p.number()? as u64),
            "flops_per_item" => flops = Some(p.number()?),
            "bytes" => bytes = Some(p.number()? as u64),
            "measured_seconds" => measured = Some(p.number()?),
            "modeled_seconds" => modeled = Some(p.number()?),
            "residual" => residual = Some(p.number()?),
            other => return Err(format!("unknown point key {other:?}")),
        }
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b'}' => break,
            c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
        }
    }
    Ok(MeasuredPoint {
        op: op.ok_or("missing op")?,
        items: items.ok_or("missing items")?,
        flops_per_item: flops.ok_or("missing flops_per_item")?,
        bytes: bytes.ok_or("missing bytes")?,
        measured_seconds: measured.ok_or("missing measured_seconds")?,
        modeled_seconds: modeled.ok_or("missing modeled_seconds")?,
        residual: residual.ok_or("missing residual")?,
    })
}

/// Minimal byte-level JSON scanner, following the `kdesel-kde`
/// persistence idiom (strict: unknown keys are errors, floats round-trip
/// through `{:?}`).
mod json {
    pub(super) struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        pub(super) fn new(text: &'a str) -> Self {
            Self {
                bytes: text.as_bytes(),
                pos: 0,
            }
        }

        pub(super) fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        pub(super) fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        pub(super) fn next(&mut self) -> Result<u8, String> {
            let b = self.peek().ok_or("unexpected end of input")?;
            self.pos += 1;
            Ok(b)
        }

        pub(super) fn expect(&mut self, want: u8) -> Result<(), String> {
            let got = self.next()?;
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "expected {:?}, found {:?} at byte {}",
                    want as char,
                    got as char,
                    self.pos - 1
                ))
            }
        }

        pub(super) fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'"') {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|e| e.to_string())?
                .to_string();
            self.expect(b'"')?;
            Ok(s)
        }

        pub(super) fn number(&mut self) -> Result<f64, String> {
            let start = self.pos;
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'i' | b'n')
            }) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            text.parse()
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes noiseless measurements from a known profile: the fit
    /// must recover it (near-)exactly, independent of wall-clock noise.
    fn synthetic_points(truth: &CostProfile) -> Vec<MeasuredPoint> {
        let mut points = Vec::new();
        for bytes in [8192u64, 262144, 4194304] {
            points.push(MeasuredPoint {
                op: PointOp::Transfer,
                items: 0,
                flops_per_item: 0.0,
                bytes,
                measured_seconds: 0.0,
                modeled_seconds: 0.0,
                residual: 0.0,
            });
        }
        for items in [4096u64, 65536, 1048576] {
            for flops in [32.0, 256.0] {
                for op in [PointOp::Kernel, PointOp::Sweep] {
                    points.push(MeasuredPoint {
                        op,
                        items,
                        flops_per_item: flops,
                        bytes: if op == PointOp::Sweep { 8 } else { 0 },
                        measured_seconds: 0.0,
                        modeled_seconds: 0.0,
                        residual: 0.0,
                    });
                }
            }
        }
        for p in &mut points {
            p.measured_seconds = modeled_seconds(p, truth);
        }
        points
    }

    #[test]
    fn fit_recovers_a_known_profile_from_noiseless_points() {
        let truth = CostProfile {
            kernel_launch_latency: 40e-6,
            transfer_latency: 12e-6,
            transfer_bandwidth: 8e9,
            compute_throughput: 25e9,
            vector_width: 4.0,
        };
        let points = synthetic_points(&truth);
        let (measured, report) = fit(Backend::CpuSeq, &points);
        assert!(report.converged, "outcome {:?}", report.outcome);
        assert!(
            measured.median_residual < 0.01,
            "median residual {} on noiseless data",
            measured.median_residual
        );
        let f = &measured.profile;
        for (name, got, want) in [
            (
                "launch",
                f.kernel_launch_latency,
                truth.kernel_launch_latency,
            ),
            ("transfer_lat", f.transfer_latency, truth.transfer_latency),
            ("bandwidth", f.transfer_bandwidth, truth.transfer_bandwidth),
            ("throughput", f.compute_throughput, truth.compute_throughput),
            ("width", f.vector_width, truth.vector_width),
        ] {
            assert!(
                (got / want - 1.0).abs() < 0.05,
                "{name}: fitted {got:e} vs true {want:e}"
            );
        }
        // Every point is annotated with the fitted model's prediction.
        assert!(measured.points.iter().all(|p| p.modeled_seconds > 0.0));
    }

    #[test]
    fn measured_profile_json_roundtrips_bit_exactly() {
        let truth = CostProfile::gtx460();
        let points = synthetic_points(&truth);
        let (measured, _) = fit(Backend::SimGpu, &points);
        let json = measured.to_json();
        let back = MeasuredProfile::from_json(&json).expect("parse");
        assert_eq!(measured, back);
        assert_eq!(back.backend(), Some(Backend::SimGpu));
    }

    #[test]
    fn from_json_rejects_garbage_and_version_skew() {
        assert!(MeasuredProfile::from_json("").is_err());
        assert!(MeasuredProfile::from_json("{\"v\":1}").is_err());
        assert!(MeasuredProfile::from_json("not json").is_err());
        let truth = CostProfile::gtx460();
        let (measured, _) = fit(Backend::SimGpu, &synthetic_points(&truth));
        let skewed = measured.to_json().replacen("\"v\":1", "\"v\":2", 1);
        let err = MeasuredProfile::from_json(&skewed).unwrap_err();
        assert!(err.contains("version"), "{err}");
        let unknown = measured
            .to_json()
            .replacen("\"backend\"", "\"surprise\"", 1);
        assert!(MeasuredProfile::from_json(&unknown).is_err());
    }

    #[test]
    fn microbenchmark_covers_all_three_op_families() {
        let config = CalibrationConfig {
            reps: 1,
            quick: true,
        };
        let points = microbenchmark(Backend::CpuSeq, &config);
        for op in [PointOp::Transfer, PointOp::Kernel, PointOp::Sweep] {
            assert!(points.iter().any(|p| p.op == op), "missing {op:?} in sweep");
        }
        assert!(points.iter().all(|p| p.measured_seconds > 0.0));
    }
}
