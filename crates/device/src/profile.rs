//! Measured per-launch profiling of every device hot path.
//!
//! The cost model (`crate::cost`) predicts what an operation *should*
//! cost; this module records what each launch *did* cost. Every charged
//! device operation — transfers, row-major maps, columnar sweeps,
//! in-place updates, reductions — is tagged with a [`LaunchKind`] and an
//! attribution record ([`Launch`]: items touched, bytes moved, FLOPs
//! claimed). The profiler keeps, per kind:
//!
//! * lifetime totals (launches, items, bytes, FLOPs, measured and
//!   modeled seconds), and
//! * a rolling window of the most recent per-launch wall times, from
//!   which [`KindProfile::measured_p50`]/[`KindProfile::measured_p95`]
//!   are computed — the live signal the serve scheduler's adaptive
//!   batching window and the calibration fit consume.
//!
//! When telemetry is enabled each launch also lands in a
//! `device.kernel.<kind>` histogram in the global registry, so the
//! per-kind latency distributions show up in `--metrics` tables and the
//! `prometheus_text` exposition without any extra plumbing.

use std::sync::Arc;

/// Number of distinct launch kinds (the length of [`LaunchKind::ALL`]).
pub const LAUNCH_KIND_COUNT: usize = 20;

/// Identifies which device hot path issued a launch. One variant per
/// charged `Device` operation; the batch entry points (`map_rows_batch`,
/// `sweep_batch`) delegate to their `*_multi_reduce` kind, matching how
/// they are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LaunchKind {
    /// Host→device transfer of a fresh buffer.
    Upload,
    /// Host→device partial overwrite (`write_at`).
    WriteAt,
    /// Device→host transfer of a whole buffer.
    Download,
    /// On-device buffer duplication (`copy_buffer`).
    CopyBuffer,
    /// Row-major map kernel.
    MapRows,
    /// Fused row-major map + tree reduction.
    MapRowsReduce,
    /// Row-major multi-output map.
    MapRowsMulti,
    /// Fused row-major multi-output map + column reduction (also the
    /// batched entry point `map_rows_batch`).
    MapRowsMultiReduce,
    /// Columnar (SoA) staging transfer.
    StageRowsSoa,
    /// Single-row columnar overwrite.
    WriteRowSoa,
    /// Device→host readback of a staged sample.
    DownloadRowsSoa,
    /// Fused columnar sweep + tree reduction.
    SweepReduce,
    /// Columnar multi-output sweep.
    SweepMulti,
    /// Fused columnar multi-output sweep + column reduction (also the
    /// batched entry point `sweep_batch`).
    SweepMultiReduce,
    /// In-place per-element update kernel.
    UpdateInplace,
    /// In-place per-element update reading a second buffer.
    ZipUpdateInplace,
    /// Standalone tree reduction + scalar readback.
    ReduceSum,
    /// Standalone blocked column reduction + vector readback.
    ReduceSumColumns,
    /// One member device's share of a group stripe-block sweep + tree
    /// reduction (`DeviceGroup::sweep_reduce`): the blocks this device
    /// executed (owned + stolen), charged as one persistent launch.
    GroupSweepReduce,
    /// One member device's share of a group multi-output stripe-block
    /// sweep (`DeviceGroup::sweep_multi_reduce` / `sweep_batch`).
    GroupSweepMultiReduce,
}

impl LaunchKind {
    /// Every kind, in declaration order — the index of a kind here equals
    /// `kind as usize`.
    pub const ALL: [LaunchKind; LAUNCH_KIND_COUNT] = [
        LaunchKind::Upload,
        LaunchKind::WriteAt,
        LaunchKind::Download,
        LaunchKind::CopyBuffer,
        LaunchKind::MapRows,
        LaunchKind::MapRowsReduce,
        LaunchKind::MapRowsMulti,
        LaunchKind::MapRowsMultiReduce,
        LaunchKind::StageRowsSoa,
        LaunchKind::WriteRowSoa,
        LaunchKind::DownloadRowsSoa,
        LaunchKind::SweepReduce,
        LaunchKind::SweepMulti,
        LaunchKind::SweepMultiReduce,
        LaunchKind::UpdateInplace,
        LaunchKind::ZipUpdateInplace,
        LaunchKind::ReduceSum,
        LaunchKind::ReduceSumColumns,
        LaunchKind::GroupSweepReduce,
        LaunchKind::GroupSweepMultiReduce,
    ];

    /// Stable snake_case name, used for telemetry metric names
    /// (`device.kernel.<name>`) and calibration reports.
    pub fn name(self) -> &'static str {
        match self {
            LaunchKind::Upload => "upload",
            LaunchKind::WriteAt => "write_at",
            LaunchKind::Download => "download",
            LaunchKind::CopyBuffer => "copy_buffer",
            LaunchKind::MapRows => "map_rows",
            LaunchKind::MapRowsReduce => "map_rows_reduce",
            LaunchKind::MapRowsMulti => "map_rows_multi",
            LaunchKind::MapRowsMultiReduce => "map_rows_multi_reduce",
            LaunchKind::StageRowsSoa => "stage_rows_soa",
            LaunchKind::WriteRowSoa => "write_row_soa",
            LaunchKind::DownloadRowsSoa => "download_rows_soa",
            LaunchKind::SweepReduce => "sweep_reduce",
            LaunchKind::SweepMulti => "sweep_multi",
            LaunchKind::SweepMultiReduce => "sweep_multi_reduce",
            LaunchKind::UpdateInplace => "update_inplace",
            LaunchKind::ZipUpdateInplace => "zip_update_inplace",
            LaunchKind::ReduceSum => "reduce_sum",
            LaunchKind::ReduceSumColumns => "reduce_sum_columns",
            LaunchKind::GroupSweepReduce => "group_sweep_reduce",
            LaunchKind::GroupSweepMultiReduce => "group_sweep_multi_reduce",
        }
    }

    /// Whether this kind launches compute (a kernel) as opposed to being
    /// a pure host↔device transfer.
    pub fn is_kernel(self) -> bool {
        !matches!(
            self,
            LaunchKind::Upload
                | LaunchKind::WriteAt
                | LaunchKind::Download
                | LaunchKind::StageRowsSoa
                | LaunchKind::WriteRowSoa
                | LaunchKind::DownloadRowsSoa
        )
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Attribution record for one charged device operation: what ran and how
/// much work it claimed. Constructed at each `Device` call site and
/// consumed by the profiler.
#[derive(Debug, Clone, Copy)]
pub struct Launch {
    /// Which hot path issued the launch.
    pub kind: LaunchKind,
    /// Items processed (rows for maps/sweeps, elements for reductions,
    /// zero for pure transfers).
    pub items: u64,
    /// Bytes moved across the host↔device boundary by this launch.
    pub bytes: u64,
    /// FLOPs attributed by the caller's `flops_per_item` claim (the same
    /// number the cost model charges).
    pub flops: f64,
}

impl Launch {
    /// A pure transfer of `bytes`.
    pub fn transfer(kind: LaunchKind, bytes: usize) -> Self {
        Self {
            kind,
            items: 0,
            bytes: bytes as u64,
            flops: 0.0,
        }
    }

    /// A compute launch over `items` items at `flops_per_item`, moving
    /// `bytes` across PCIe (fused readbacks; zero for pure kernels).
    pub fn kernel(kind: LaunchKind, items: usize, flops_per_item: f64, bytes: usize) -> Self {
        Self {
            kind,
            items: items as u64,
            bytes: bytes as u64,
            flops: items as f64 * flops_per_item,
        }
    }
}

/// Rolling-window capacity per kind: enough samples for stable p50/p95
/// under steady-state serving without remembering cold-start outliers
/// forever.
const WINDOW: usize = 64;

/// Fixed-capacity ring of the most recent per-launch wall times.
#[derive(Debug, Clone)]
struct Window {
    samples: [f64; WINDOW],
    len: usize,
    next: usize,
}

impl Default for Window {
    fn default() -> Self {
        Self {
            samples: [0.0; WINDOW],
            len: 0,
            next: 0,
        }
    }
}

impl Window {
    fn push(&mut self, v: f64) {
        self.samples[self.next] = v;
        self.next = (self.next + 1) % WINDOW;
        self.len = (self.len + 1).min(WINDOW);
    }

    /// Nearest-rank quantile over the window; 0.0 when empty.
    fn quantile(&self, q: f64) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let mut sorted = self.samples[..self.len].to_vec();
        sorted.sort_by(f64::total_cmp);
        let idx = ((self.len as f64 - 1.0) * q).round() as usize;
        sorted[idx.min(self.len - 1)]
    }
}

/// Per-kind accumulator: lifetime totals plus the rolling window.
#[derive(Debug, Clone, Default)]
struct KindAcc {
    launches: u64,
    items: u64,
    bytes: u64,
    flops: f64,
    measured_seconds: f64,
    modeled_seconds: f64,
    window: Window,
}

/// Point-in-time view of one launch kind's profile.
#[derive(Debug, Clone, PartialEq)]
pub struct KindProfile {
    /// Which hot path this row describes.
    pub kind: LaunchKind,
    /// Launches issued since construction / the last reset.
    pub launches: u64,
    /// Total items processed.
    pub items: u64,
    /// Total bytes moved host↔device.
    pub bytes: u64,
    /// Total FLOPs attributed.
    pub flops: f64,
    /// Total measured wall seconds inside the operation.
    pub measured_seconds: f64,
    /// Total modeled seconds charged by the cost model.
    pub modeled_seconds: f64,
    /// Median per-launch wall time over the rolling window (0 when the
    /// kind never ran).
    pub measured_p50: f64,
    /// 95th-percentile per-launch wall time over the rolling window.
    pub measured_p95: f64,
}

/// Snapshot of a device's full launch profile: one [`KindProfile`] per
/// kind that has run at least once, in [`LaunchKind::ALL`] order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceProfile {
    /// Profiles of the kinds that ran, in declaration order.
    pub kinds: Vec<KindProfile>,
}

impl DeviceProfile {
    /// The profile of one kind, if it ever ran.
    pub fn kind(&self, kind: LaunchKind) -> Option<&KindProfile> {
        self.kinds.iter().find(|k| k.kind == kind)
    }

    /// Total launches across all kinds.
    pub fn launches(&self) -> u64 {
        self.kinds.iter().map(|k| k.launches).sum()
    }

    /// Rolling-median wall seconds of the *kernel* kinds combined,
    /// weighted by nothing — the max of the per-kind medians. A cheap,
    /// robust "what does one launch cost right now" signal for
    /// schedulers; 0.0 when no kernel has run.
    pub fn kernel_p50_ceiling(&self) -> f64 {
        self.kinds
            .iter()
            .filter(|k| k.kind.is_kernel())
            .map(|k| k.measured_p50)
            .fold(0.0, f64::max)
    }

    /// Tail counterpart of [`DeviceProfile::kernel_p50_ceiling`]: the max
    /// of the per-kernel-kind rolling p95s; 0.0 when no kernel has run.
    pub fn kernel_p95_ceiling(&self) -> f64 {
        self.kinds
            .iter()
            .filter(|k| k.kind.is_kernel())
            .map(|k| k.measured_p95)
            .fold(0.0, f64::max)
    }
}

/// The accumulator the device's timing ledger embeds. Lives behind the
/// same mutex as the modeled/measured totals, so one lock acquisition
/// per launch covers both.
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    kinds: [KindAcc; LAUNCH_KIND_COUNT],
}

impl Profiler {
    pub(crate) fn record(&mut self, launch: Launch, modeled: f64, measured: f64) {
        let acc = &mut self.kinds[launch.kind.index()];
        acc.launches += 1;
        acc.items += launch.items;
        acc.bytes += launch.bytes;
        acc.flops += launch.flops;
        acc.measured_seconds += measured;
        acc.modeled_seconds += modeled;
        acc.window.push(measured);
    }

    pub(crate) fn snapshot(&self) -> DeviceProfile {
        let kinds = LaunchKind::ALL
            .iter()
            .zip(&self.kinds)
            .filter(|(_, acc)| acc.launches > 0)
            .map(|(&kind, acc)| KindProfile {
                kind,
                launches: acc.launches,
                items: acc.items,
                bytes: acc.bytes,
                flops: acc.flops,
                measured_seconds: acc.measured_seconds,
                modeled_seconds: acc.modeled_seconds,
                measured_p50: acc.window.quantile(0.50),
                measured_p95: acc.window.quantile(0.95),
            })
            .collect();
        DeviceProfile { kinds }
    }
}

/// Per-kind telemetry histograms (`device.kernel.<kind>`), resolved once
/// per device so the per-launch cost is one atomic record.
#[derive(Debug)]
pub(crate) struct KindMeters {
    histograms: [Arc<kdesel_telemetry::Histogram>; LAUNCH_KIND_COUNT],
}

impl KindMeters {
    pub(crate) fn new() -> Self {
        let r = kdesel_telemetry::registry();
        Self {
            histograms: std::array::from_fn(|i| {
                r.histogram(&format!("device.kernel.{}", LaunchKind::ALL[i].name()))
            }),
        }
    }

    pub(crate) fn record(&self, kind: LaunchKind, measured_seconds: f64) {
        self.histograms[kind.index()].record(measured_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_kind_in_index_order() {
        for (i, kind) in LaunchKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i, "{kind:?}");
        }
        // Names are unique (metric names must not collide).
        let mut names: Vec<_> = LaunchKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LAUNCH_KIND_COUNT);
    }

    #[test]
    fn transfers_are_not_kernels() {
        assert!(!LaunchKind::Upload.is_kernel());
        assert!(!LaunchKind::StageRowsSoa.is_kernel());
        assert!(LaunchKind::SweepReduce.is_kernel());
        assert!(LaunchKind::ReduceSum.is_kernel());
    }

    #[test]
    fn profiler_accumulates_and_windows() {
        let mut p = Profiler::default();
        for i in 0..100 {
            p.record(
                Launch::kernel(LaunchKind::SweepReduce, 1024, 8.0, 8),
                1e-6,
                (i + 1) as f64 * 1e-6,
            );
        }
        let snap = p.snapshot();
        assert_eq!(snap.kinds.len(), 1);
        let k = snap.kind(LaunchKind::SweepReduce).unwrap();
        assert_eq!(k.launches, 100);
        assert_eq!(k.items, 100 * 1024);
        assert_eq!(k.bytes, 800);
        assert_eq!(k.flops, 100.0 * 1024.0 * 8.0);
        // Window holds the most recent 64 samples: 37µs..100µs.
        assert!(k.measured_p50 >= 37e-6 && k.measured_p50 <= 100e-6);
        assert!(k.measured_p95 >= k.measured_p50);
        assert!(k.measured_p95 <= 100e-6 + 1e-12);
        assert_eq!(snap.launches(), 100);
        assert_eq!(snap.kernel_p50_ceiling(), k.measured_p50);
    }

    #[test]
    fn untouched_kinds_are_omitted() {
        let mut p = Profiler::default();
        p.record(Launch::transfer(LaunchKind::Upload, 64), 0.0, 1e-7);
        let snap = p.snapshot();
        assert_eq!(snap.kinds.len(), 1);
        assert!(snap.kind(LaunchKind::MapRows).is_none());
        // A pure transfer contributes nothing to the kernel ceiling.
        assert_eq!(snap.kernel_p50_ceiling(), 0.0);
    }

    #[test]
    fn window_quantiles_track_recent_samples_only() {
        let mut w = Window::default();
        for _ in 0..WINDOW {
            w.push(1.0);
        }
        for _ in 0..WINDOW {
            w.push(5.0);
        }
        assert_eq!(w.quantile(0.5), 5.0);
        assert_eq!(w.quantile(0.95), 5.0);
        let empty = Window::default();
        assert_eq!(empty.quantile(0.5), 0.0);
    }
}
