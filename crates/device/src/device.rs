//! The device abstraction: buffers, kernels, reductions, timing.

use crate::cost::{CostModel, CostProfile};
use crate::pool::BufferPool;
use crate::profile::{DeviceProfile, KindMeters, Launch, LaunchKind, Profiler};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Execution backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Sequential CPU execution (reference implementation).
    CpuSeq,
    /// Multi-core CPU execution via `kdesel-par` — the stand-in for the
    /// paper's Intel OpenCL CPU backend.
    CpuPar,
    /// Simulated GPU: parallel CPU execution with the GTX-460 cost model.
    SimGpu,
}

impl Backend {
    /// Display name used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::CpuSeq => "cpu-seq",
            Backend::CpuPar => "cpu-par",
            Backend::SimGpu => "sim-gpu",
        }
    }

    /// Inverse of [`Backend::name`]; `None` for unknown names. Used by
    /// `kdesel-calibrate` and the measured-profile loader.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "cpu-seq" => Some(Backend::CpuSeq),
            "cpu-par" => Some(Backend::CpuPar),
            "sim-gpu" => Some(Backend::SimGpu),
            _ => None,
        }
    }
}

/// Rows per cache block of a columnar sweep: 1 K rows keeps one block's
/// column stripes plus its outputs L2-resident at the dimensionalities
/// the estimator uses (8 KB per stripe), and fixes block boundaries
/// independently of worker count so every backend produces bit-identical
/// buffers.
pub const SWEEP_BLOCK_ROWS: usize = 1024;

/// `log2(SWEEP_BLOCK_ROWS)`: the [`PairwiseAcc`] level a full sweep
/// block occupies. Because `SWEEP_BLOCK_ROWS` is a power of two and a
/// multiple of [`PAIRWISE_BLOCK`], a full block starting at a multiple
/// of `SWEEP_BLOCK_ROWS` is an exact aligned subtree of the global
/// pairwise reduction — the fact the multi-device combine relies on.
pub(crate) const SWEEP_BLOCK_LEVEL: u32 = SWEEP_BLOCK_ROWS.trailing_zeros();

/// Transfer/compute counters for validating transfer-efficiency claims.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Host→device transfers issued.
    pub uploads: u64,
    /// Bytes moved host→device.
    pub bytes_up: u64,
    /// Device→host transfers issued.
    pub downloads: u64,
    /// Bytes moved device→host.
    pub bytes_down: u64,
    /// Kernels launched (including reduction passes).
    pub kernels: u64,
    /// Device-to-device buffer copies issued (no PCIe traffic).
    pub d2d_copies: u64,
    /// Bytes duplicated device-to-device.
    pub bytes_d2d: u64,
    /// Buffer acquisitions served by recycling pooled storage. A pool
    /// hit charges *nothing*: no transfer (contents are only charged
    /// when they actually change, via `upload`/`write_at`) and no
    /// allocation cost — reuse of resident device memory is free.
    pub pool_hits: u64,
    /// Poolable buffer acquisitions that had to allocate fresh storage.
    /// Tiny buffers that bypass the pool by design (short bound lists,
    /// scalar results) count as neither hit nor miss.
    pub pool_misses: u64,
    /// Bytes parked on the buffer pool's free lists at snapshot time.
    /// Unlike every other field this is a *level*, not a monotone
    /// counter: [`DeviceStats::since`] reports how much it grew during a
    /// span (saturating at zero when buffers were reclaimed instead).
    pub pool_held_bytes: u64,
}

impl DeviceStats {
    /// Field-wise difference `self - earlier`, attributing device
    /// activity to one span of work (e.g. a single fused launch): snapshot
    /// the stats before, again after, and `after.since(&before)` is what
    /// that work cost. Counters are monotonic on one device, so
    /// saturation only guards against mismatched snapshot pairs (and the
    /// `pool_held_bytes` level, which may legitimately shrink).
    ///
    /// Both sides are destructured without `..`, so adding a field to
    /// `DeviceStats` fails to compile here until the new field is
    /// deltaed too — a new counter can never silently read as a lifetime
    /// total inside launch spans.
    pub fn since(&self, earlier: &DeviceStats) -> DeviceStats {
        let DeviceStats {
            uploads,
            bytes_up,
            downloads,
            bytes_down,
            kernels,
            d2d_copies,
            bytes_d2d,
            pool_hits,
            pool_misses,
            pool_held_bytes,
        } = *self;
        let DeviceStats {
            uploads: e_uploads,
            bytes_up: e_bytes_up,
            downloads: e_downloads,
            bytes_down: e_bytes_down,
            kernels: e_kernels,
            d2d_copies: e_d2d_copies,
            bytes_d2d: e_bytes_d2d,
            pool_hits: e_pool_hits,
            pool_misses: e_pool_misses,
            pool_held_bytes: e_pool_held_bytes,
        } = *earlier;
        DeviceStats {
            uploads: uploads.saturating_sub(e_uploads),
            bytes_up: bytes_up.saturating_sub(e_bytes_up),
            downloads: downloads.saturating_sub(e_downloads),
            bytes_down: bytes_down.saturating_sub(e_bytes_down),
            kernels: kernels.saturating_sub(e_kernels),
            d2d_copies: d2d_copies.saturating_sub(e_d2d_copies),
            bytes_d2d: bytes_d2d.saturating_sub(e_bytes_d2d),
            pool_hits: pool_hits.saturating_sub(e_pool_hits),
            pool_misses: pool_misses.saturating_sub(e_pool_misses),
            pool_held_bytes: pool_held_bytes.saturating_sub(e_pool_held_bytes),
        }
    }
}

#[derive(Debug, Default)]
struct Timing {
    modeled_seconds: f64,
    measured_seconds: f64,
    stats: DeviceStats,
    profile: Profiler,
}

/// A device-resident buffer of `f64` values.
///
/// The handle can only be manipulated through [`Device`] methods, which
/// charge the appropriate transfer/kernel costs; reading data back requires
/// an explicit [`Device::download`]. Deliberately not `Clone`: duplicating
/// device memory is a real device operation and must go through
/// [`Device::copy_buffer`] so the copy is charged.
///
/// Buffers created through a [`Device`] carry a handle to that device's
/// buffer pool; dropping the buffer recycles its storage onto a
/// size-class free list instead of the heap, so steady-state request
/// loops reacquire the same allocations batch after batch.
#[derive(Debug)]
pub struct DeviceBuffer {
    data: Vec<f64>,
    pool: Option<Arc<BufferPool>>,
}

impl DeviceBuffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Drop for DeviceBuffer {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.release(std::mem::take(&mut self.data));
        }
    }
}

/// A device-resident sample staged column-major (structure-of-arrays):
/// one contiguous stripe per dimension, so the per-dimension kernel
/// factor of paper eq. 16 reads memory at unit stride — the CPU-side
/// analogue of the coalesced global-memory access pattern the paper's
/// GPU kernels get from one-thread-per-point layout (§5).
///
/// Created by [`Device::stage_rows_soa`]; consumed by the `sweep_*`
/// kernels. Mutation goes through [`Device::write_row_soa`] so every
/// content change is charged as a transfer, like any device buffer.
#[derive(Debug)]
pub struct SoaBuffer {
    buf: DeviceBuffer,
    rows: usize,
    dims: usize,
    /// Telemetry bookkeeping: the `device.soa_staged_bytes` gauge and the
    /// amount this buffer added to it (0 when telemetry was off at
    /// staging time), so drop can subtract exactly what stage added.
    staged: Option<(Arc<kdesel_telemetry::Gauge>, f64)>,
}

impl Drop for SoaBuffer {
    fn drop(&mut self) {
        if let Some((gauge, bytes)) = self.staged.take() {
            gauge.add(-bytes);
        }
    }
}

impl SoaBuffer {
    /// Number of staged rows (sample points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of dimensions (columns).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total staged elements (`rows * dims`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// A window over `len` rows starting at `start` — the unit a group
    /// stripe-block worker hands to a sweep kernel. Reads only, so any
    /// thread may view any shard (`SoaBuffer` is `Sync`).
    ///
    /// # Panics
    /// Panics when the window exceeds the staged rows.
    pub(crate) fn view(&self, start: usize, len: usize) -> ColsView<'_> {
        assert!(start + len <= self.rows, "SoA view out of range");
        ColsView {
            data: &self.buf.data,
            total_rows: self.rows,
            dims: self.dims,
            start,
            len,
        }
    }
}

/// A borrowed window over a contiguous row range of an [`SoaBuffer`]:
/// what one cache block of a columnar sweep sees. [`ColsView::col`]
/// returns the unit-stride stripe of one dimension restricted to the
/// window's rows.
#[derive(Debug, Clone, Copy)]
pub struct ColsView<'a> {
    data: &'a [f64],
    total_rows: usize,
    dims: usize,
    start: usize,
    len: usize,
}

impl ColsView<'_> {
    /// Rows in this window.
    pub fn rows(&self) -> usize {
        self.len
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The unit-stride values of dimension `d` for this window's rows.
    ///
    /// # Panics
    /// Panics when `d` is out of range.
    pub fn col(&self, d: usize) -> &[f64] {
        assert!(d < self.dims, "column {d} out of range");
        &self.data[d * self.total_rows + self.start..][..self.len]
    }
}

/// An execution device with cost accounting.
///
/// All methods take `&self`; timing/statistics use interior mutability so a
/// device can be shared by the estimator components that the paper runs
/// concurrently (estimation vs. gradient pre-computation, §5.5).
/// Telemetry handles, resolved once at device construction so the
/// per-operation cost is a handful of relaxed atomic adds (and zero
/// when telemetry is disabled).
#[derive(Debug)]
struct Meters {
    kernels: Arc<kdesel_telemetry::Counter>,
    uploads: Arc<kdesel_telemetry::Counter>,
    downloads: Arc<kdesel_telemetry::Counter>,
    bytes_up: Arc<kdesel_telemetry::Counter>,
    bytes_down: Arc<kdesel_telemetry::Counter>,
    d2d_copies: Arc<kdesel_telemetry::Counter>,
    modeled_us: Arc<kdesel_telemetry::Gauge>,
    measured_us: Arc<kdesel_telemetry::Gauge>,
    /// Bytes currently staged column-major on this device.
    soa_bytes: Arc<kdesel_telemetry::Gauge>,
    /// Per-launch-kind latency histograms (`device.kernel.<kind>`).
    kinds: KindMeters,
}

impl Meters {
    fn new(backend: Backend) -> Self {
        let r = kdesel_telemetry::registry();
        Self {
            kernels: r.counter("device.kernels"),
            uploads: r.counter("device.uploads"),
            downloads: r.counter("device.downloads"),
            bytes_up: r.counter("device.bytes_up"),
            bytes_down: r.counter("device.bytes_down"),
            d2d_copies: r.counter("device.d2d_copies"),
            modeled_us: r.gauge(&format!("device.modeled_us.{}", backend.name())),
            measured_us: r.gauge(&format!("device.measured_us.{}", backend.name())),
            soa_bytes: r.gauge("device.soa_staged_bytes"),
            kinds: KindMeters::new(),
        }
    }
}

#[derive(Debug)]
pub struct Device {
    backend: Backend,
    cost: CostModel,
    timing: Arc<Mutex<Timing>>,
    meters: Meters,
    pool: Arc<BufferPool>,
}

impl Device {
    /// Creates a device with the default cost profile for the backend:
    /// measured-only (free model) for the CPU backends, GTX-460 for the
    /// simulated GPU.
    pub fn new(backend: Backend) -> Self {
        let profile = match backend {
            Backend::CpuSeq | Backend::CpuPar => CostProfile::xeon_e5620_opencl(),
            Backend::SimGpu => CostProfile::gtx460(),
        };
        Self::with_profile(backend, profile)
    }

    /// Creates a device with an explicit cost profile.
    pub fn with_profile(backend: Backend, profile: CostProfile) -> Self {
        Self {
            backend,
            cost: CostModel::new(profile),
            timing: Arc::new(Mutex::new(Timing::default())),
            meters: Meters::new(backend),
            pool: Arc::new(BufferPool::new()),
        }
    }

    /// Wraps pooled storage in a buffer that recycles itself on drop.
    fn wrap(&self, data: Vec<f64>) -> DeviceBuffer {
        DeviceBuffer {
            data,
            pool: Some(Arc::clone(&self.pool)),
        }
    }

    /// The backend in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Splits off a *sub-device* owning `fraction` of this device's compute
    /// and transfer bandwidth — the paper's §8 device-fission outlook:
    /// "using techniques such as device fission, modern graphics cards can
    /// be virtually partitioned into several sub-devices... allocat[ing] a
    /// given fraction of the graphics card — say 10% — for selectivity
    /// estimation without affecting query performance."
    ///
    /// Per-operation latencies are unchanged (scheduling is shared);
    /// throughput-bound work slows by `1/fraction`. The sub-device has its
    /// own timing/statistics counters.
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn fission(&self, fraction: f64) -> Device {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fission fraction {fraction} outside (0, 1]"
        );
        let p = self.cost.profile();
        Device::with_profile(
            self.backend,
            crate::cost::CostProfile {
                kernel_launch_latency: p.kernel_launch_latency,
                transfer_latency: p.transfer_latency,
                transfer_bandwidth: p.transfer_bandwidth * fraction,
                compute_throughput: p.compute_throughput * fraction,
                vector_width: p.vector_width,
            },
        )
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Accumulated modeled seconds.
    pub fn modeled_seconds(&self) -> f64 {
        self.timing.lock().unwrap().modeled_seconds
    }

    /// Accumulated measured (wall-clock) seconds inside device operations.
    pub fn measured_seconds(&self) -> f64 {
        self.timing.lock().unwrap().measured_seconds
    }

    /// Transfer/kernel counters, with the buffer pool's hit/miss tallies
    /// and current held bytes merged in.
    pub fn stats(&self) -> DeviceStats {
        let mut stats = self.timing.lock().unwrap().stats;
        stats.pool_hits = self.pool.hits();
        stats.pool_misses = self.pool.misses();
        stats.pool_held_bytes = self.pool.held_bytes();
        stats
    }

    /// Measured launch profile: per-kind lifetime totals and rolling
    /// p50/p95 wall times for every hot path this device has run (see
    /// [`crate::profile`]). The serve scheduler reads this to size its
    /// adaptive batching window; `kdesel-calibrate` reads it to fit a
    /// measured [`CostProfile`].
    pub fn profile(&self) -> DeviceProfile {
        self.timing.lock().unwrap().profile.snapshot()
    }

    /// Bytes currently parked on this device's buffer-pool free lists.
    pub fn pool_held_bytes(&self) -> u64 {
        self.pool.held_bytes()
    }

    /// Resets all accumulated timing and counters (pooled storage itself
    /// is kept — occupancy is state, the counters are a window).
    pub fn reset_timing(&self) {
        *self.timing.lock().unwrap() = Timing::default();
        self.pool.reset_counters();
    }

    fn charge<T>(
        &self,
        launch: Launch,
        modeled: f64,
        mutate: impl FnOnce(&mut DeviceStats),
        run: impl FnOnce() -> T,
    ) -> T {
        let start = Instant::now();
        let out = run();
        let measured = start.elapsed().as_secs_f64();
        self.charge_recorded(launch, modeled, measured, mutate);
        out
    }

    /// Charges a launch whose work already ran elsewhere (a group worker
    /// thread) with an externally measured wall time. Same ledger path
    /// as [`Device::charge`]: modeled/measured totals, profiler record,
    /// stats mutation, telemetry mirror.
    pub(crate) fn charge_recorded(
        &self,
        launch: Launch,
        modeled: f64,
        measured: f64,
        mutate: impl FnOnce(&mut DeviceStats),
    ) {
        let mut t = self.timing.lock().unwrap();
        t.modeled_seconds += modeled;
        t.measured_seconds += measured;
        t.profile.record(launch, modeled, measured);
        let before = t.stats;
        mutate(&mut t.stats);
        let after = t.stats;
        drop(t);
        // Mirror the per-device counters into the process-global
        // telemetry registry (the bridge that makes Figure 7's
        // transfer/launch accounting visible in a metrics dump).
        if kdesel_telemetry::enabled() {
            let m = &self.meters;
            m.kernels.add(after.kernels - before.kernels);
            m.uploads.add(after.uploads - before.uploads);
            m.downloads.add(after.downloads - before.downloads);
            m.bytes_up.add(after.bytes_up - before.bytes_up);
            m.bytes_down.add(after.bytes_down - before.bytes_down);
            m.d2d_copies.add(after.d2d_copies - before.d2d_copies);
            m.modeled_us.add(modeled * 1e6);
            m.measured_us.add(measured * 1e6);
            m.kinds.record(launch.kind, measured);
        }
    }

    /// Adopts host data as a device-resident buffer without charging a
    /// transfer. Only for the multi-device combine, whose gather cost is
    /// charged separately (as device-to-device traffic on the adopting
    /// device) by `DeviceGroup`.
    pub(crate) fn adopt(&self, data: Vec<f64>) -> DeviceBuffer {
        self.wrap(data)
    }

    /// Copies host data into a new device buffer (one transfer). The
    /// backing storage comes from the device's buffer pool: a pooled
    /// reuse charges only the transfer (the contents change), never a
    /// second allocation.
    pub fn upload(&self, host: &[f64]) -> DeviceBuffer {
        let bytes = std::mem::size_of_val(host);
        self.charge(
            Launch::transfer(LaunchKind::Upload, bytes),
            self.cost.transfer(bytes),
            |s| {
                s.uploads += 1;
                s.bytes_up += bytes as u64;
            },
            || self.wrap(self.pool.acquire_copy(host)),
        )
    }

    /// Allocates a zero-filled device buffer (no transfer: allocation only).
    pub fn alloc_zeroed(&self, len: usize) -> DeviceBuffer {
        self.wrap(self.pool.acquire_zeroed(len))
    }

    /// Overwrites `buf[offset .. offset+values.len()]` with host data —
    /// one transfer, the paper's single-PCIe-write sample-point replacement
    /// (§5.1).
    ///
    /// # Panics
    /// Panics when the write would exceed the buffer.
    pub fn write_at(&self, buf: &mut DeviceBuffer, offset: usize, values: &[f64]) {
        assert!(offset + values.len() <= buf.data.len(), "device write OOB");
        let bytes = std::mem::size_of_val(values);
        self.charge(
            Launch::transfer(LaunchKind::WriteAt, bytes),
            self.cost.transfer(bytes),
            |s| {
                s.uploads += 1;
                s.bytes_up += bytes as u64;
            },
            || buf.data[offset..offset + values.len()].copy_from_slice(values),
        )
    }

    /// Copies a device buffer back to the host (one transfer).
    pub fn download(&self, buf: &DeviceBuffer) -> Vec<f64> {
        let bytes = std::mem::size_of_val(buf.data.as_slice());
        self.charge(
            Launch::transfer(LaunchKind::Download, bytes),
            self.cost.transfer(bytes),
            |s| {
                s.downloads += 1;
                s.bytes_down += bytes as u64;
            },
            || buf.data.clone(),
        )
    }

    /// Duplicates a buffer on-device: one copy kernel, no PCIe traffic.
    ///
    /// This is the only way to duplicate device memory —
    /// [`DeviceBuffer`] is intentionally not `Clone`, so every copy is
    /// charged (one read + one write per element at device bandwidth).
    pub fn copy_buffer(&self, buf: &DeviceBuffer) -> DeviceBuffer {
        let bytes = std::mem::size_of_val(buf.data.as_slice());
        self.charge(
            Launch::kernel(LaunchKind::CopyBuffer, buf.data.len(), 2.0, 0),
            self.cost.kernel(buf.data.len(), 2.0),
            |s| {
                s.kernels += 1;
                s.d2d_copies += 1;
                s.bytes_d2d += bytes as u64;
            },
            || self.wrap(self.pool.acquire_copy(&buf.data)),
        )
    }

    /// Backend dispatch for a row→scalar map; no cost accounting — shared
    /// by the charged `map_rows` / `map_rows_reduce` entry points so the
    /// fused and unfused paths execute bit-identically. Fills the
    /// caller's (pooled) output slice instead of allocating.
    fn run_map_rows<F>(&self, buf: &DeviceBuffer, dims: usize, f: F, out: &mut [f64])
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        assert_eq!(buf.data.len() % dims, 0, "ragged device buffer");
        match self.backend {
            Backend::CpuSeq => {
                for (o, row) in out.iter_mut().zip(buf.data.chunks_exact(dims)) {
                    *o = f(row);
                }
            }
            Backend::CpuPar | Backend::SimGpu => {
                kdesel_par::par_for_each_mut(out, |i, o| {
                    *o = f(&buf.data[i * dims..(i + 1) * dims])
                });
            }
        }
    }

    /// Backend dispatch for a row→`out_width`-values map; no cost
    /// accounting — shared by `map_rows_multi` / `map_rows_multi_reduce`.
    /// Fills the caller's (pooled) output slice instead of allocating.
    fn run_map_rows_multi<F>(
        &self,
        buf: &DeviceBuffer,
        dims: usize,
        out_width: usize,
        f: F,
        data: &mut [f64],
    ) where
        F: Fn(&[f64], &mut [f64]) + Sync,
    {
        assert_eq!(buf.data.len() % dims, 0, "ragged device buffer");
        assert!(out_width > 0);
        match self.backend {
            Backend::CpuSeq => {
                for (row, out) in buf
                    .data
                    .chunks_exact(dims)
                    .zip(data.chunks_exact_mut(out_width))
                {
                    f(row, out);
                }
            }
            Backend::CpuPar | Backend::SimGpu => {
                kdesel_par::par_for_each_row_mut(data, out_width, |i, out| {
                    f(&buf.data[i * dims..(i + 1) * dims], out)
                });
            }
        }
    }

    /// Runs a kernel mapping each `dims`-wide row of `buf` to one output
    /// value. `flops_per_row` feeds the cost model.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dims`.
    pub fn map_rows<F>(
        &self,
        buf: &DeviceBuffer,
        dims: usize,
        flops_per_row: f64,
        f: F,
    ) -> DeviceBuffer
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        let rows = buf.data.len() / dims;
        self.charge(
            Launch::kernel(LaunchKind::MapRows, rows, flops_per_row, 0),
            self.cost.kernel(rows, flops_per_row),
            |s| s.kernels += 1,
            || {
                let mut data = self.pool.acquire_zeroed(rows);
                self.run_map_rows(buf, dims, f, &mut data);
                self.wrap(data)
            },
        )
    }

    /// Fused map + tree-reduce: a single launch maps each `dims`-wide row
    /// to one value and reduces the values in place, downloading only the
    /// 8-byte scalar. Bit-identical to `map_rows` followed by
    /// `reduce_sum` — the pairwise summation order is part of the device
    /// contract — but costs one kernel instead of three and skips the
    /// intermediate buffer round-trip.
    ///
    /// With `retain`, the per-row map outputs are additionally kept
    /// device-resident (the retained-contributions side output the Karma
    /// maintenance path of §5.4 consumes); on a real GPU the map stage
    /// writes them on the way into the reduction at no extra launch.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dims`.
    pub fn map_rows_reduce<F>(
        &self,
        buf: &DeviceBuffer,
        dims: usize,
        flops_per_row: f64,
        retain: bool,
        f: F,
    ) -> (f64, Option<DeviceBuffer>)
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        assert_eq!(buf.data.len() % dims, 0, "ragged device buffer");
        let rows = buf.data.len() / dims;
        // The reduction's ~4 FLOP/item ride along in the same launch;
        // only the scalar result crosses PCIe.
        let modeled = self.cost.kernel(rows, flops_per_row + 4.0)
            + self.cost.transfer(std::mem::size_of::<f64>());
        self.charge(
            Launch::kernel(
                LaunchKind::MapRowsReduce,
                rows,
                flops_per_row + 4.0,
                std::mem::size_of::<f64>(),
            ),
            modeled,
            |s| {
                s.kernels += 1;
                s.downloads += 1;
                s.bytes_down += std::mem::size_of::<f64>() as u64;
            },
            || {
                let mut data = self.pool.acquire_zeroed(rows);
                self.run_map_rows(buf, dims, f, &mut data);
                let sum = pairwise_sum(&data);
                if retain {
                    (sum, Some(self.wrap(data)))
                } else {
                    self.pool.release(data);
                    (sum, None)
                }
            },
        )
    }

    /// Runs a kernel mapping each `dims`-wide row to `out_width` outputs
    /// (e.g. the per-point gradient contributions of paper eq. 16).
    pub fn map_rows_multi<F>(
        &self,
        buf: &DeviceBuffer,
        dims: usize,
        out_width: usize,
        flops_per_row: f64,
        f: F,
    ) -> DeviceBuffer
    where
        F: Fn(&[f64], &mut [f64]) + Sync,
    {
        let rows = buf.data.len() / dims;
        self.charge(
            Launch::kernel(LaunchKind::MapRowsMulti, rows, flops_per_row, 0),
            self.cost.kernel(rows, flops_per_row),
            |s| s.kernels += 1,
            || {
                let mut data = self.pool.acquire_zeroed(rows * out_width);
                self.run_map_rows_multi(buf, dims, out_width, f, &mut data);
                self.wrap(data)
            },
        )
    }

    /// Fused multi-output map + column reduction: a single launch maps
    /// each `dims`-wide row to `out_width` values and tree-reduces each
    /// column, downloading the `out_width` column sums. Bit-identical to
    /// `map_rows_multi` followed by `reduce_sum_columns`, in one kernel
    /// instead of three — the pattern behind `estimate_with_gradient`
    /// (eq. 16 shares per-dimension factors between p̂ and ∂p̂/∂h).
    ///
    /// With `retain_first`, column 0 of the map output is additionally
    /// kept device-resident as a contiguous buffer — bitwise equal to
    /// what `map_rows` would have produced for that output — so the
    /// Karma path keeps its retained contributions.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dims` or
    /// `out_width` is zero.
    pub fn map_rows_multi_reduce<F>(
        &self,
        buf: &DeviceBuffer,
        dims: usize,
        out_width: usize,
        flops_per_row: f64,
        retain_first: bool,
        f: F,
    ) -> (Vec<f64>, Option<DeviceBuffer>)
    where
        F: Fn(&[f64], &mut [f64]) + Sync,
    {
        assert_eq!(buf.data.len() % dims, 0, "ragged device buffer");
        assert!(out_width > 0);
        let rows = buf.data.len() / dims;
        let result_bytes = out_width * std::mem::size_of::<f64>();
        let modeled = self
            .cost
            .kernel(rows, flops_per_row + 4.0 * out_width as f64)
            + self.cost.transfer(result_bytes);
        self.charge(
            Launch::kernel(
                LaunchKind::MapRowsMultiReduce,
                rows,
                flops_per_row + 4.0 * out_width as f64,
                result_bytes,
            ),
            modeled,
            |s| {
                s.kernels += 1;
                s.downloads += 1;
                s.bytes_down += result_bytes as u64;
            },
            || {
                let mut data = self.pool.acquire_zeroed(rows * out_width);
                self.run_map_rows_multi(buf, dims, out_width, f, &mut data);
                let sums = pairwise_sum_columns(&data, out_width);
                let retained = retain_first.then(|| {
                    let mut first = self.pool.acquire_zeroed(rows);
                    for (o, row) in first.iter_mut().zip(data.chunks_exact(out_width)) {
                        *o = row[0];
                    }
                    self.wrap(first)
                });
                self.pool.release(data);
                (sums, retained)
            },
        )
    }

    /// Fused batched evaluation: one launch maps each row to `batch`
    /// outputs (one per query rectangle) and column-reduces them,
    /// returning the `batch` sums. Equivalent to `batch` separate
    /// `map_rows` + `reduce_sum` round-trips — each sum is bit-identical
    /// — while amortizing launch latency and the sample traversal
    /// `batch`-fold and downloading one `batch`-scalar result.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dims` or
    /// `batch` is zero.
    pub fn map_rows_batch<F>(
        &self,
        buf: &DeviceBuffer,
        dims: usize,
        batch: usize,
        flops_per_row: f64,
        f: F,
    ) -> Vec<f64>
    where
        F: Fn(&[f64], &mut [f64]) + Sync,
    {
        self.map_rows_multi_reduce(buf, dims, batch, flops_per_row, false, f)
            .0
    }

    /// Stages host rows column-major on the device (one transfer): each
    /// dimension becomes one contiguous stripe, so the per-dimension
    /// factor loops of the `sweep_*` kernels read at unit stride — the
    /// layout §5 of the paper gets from coalesced one-thread-per-point
    /// access on the GPU. Charged exactly like [`Device::upload`] of the
    /// same rows; the transpose happens device-side.
    ///
    /// # Panics
    /// Panics when `dims` is zero or `host_rows` is ragged.
    pub fn stage_rows_soa(&self, host_rows: &[f64], dims: usize) -> SoaBuffer {
        assert!(dims > 0, "zero dims");
        assert_eq!(host_rows.len() % dims, 0, "ragged host rows");
        let rows = host_rows.len() / dims;
        let bytes = std::mem::size_of_val(host_rows);
        let buf = self.charge(
            Launch::transfer(LaunchKind::StageRowsSoa, bytes),
            self.cost.transfer(bytes),
            |s| {
                s.uploads += 1;
                s.bytes_up += bytes as u64;
            },
            || {
                let mut data = self.pool.acquire_zeroed(host_rows.len());
                for (r, row) in host_rows.chunks_exact(dims).enumerate() {
                    for (d, &v) in row.iter().enumerate() {
                        data[d * rows + r] = v;
                    }
                }
                self.wrap(data)
            },
        );
        let staged = kdesel_telemetry::enabled().then(|| {
            self.meters.soa_bytes.add(bytes as f64);
            (Arc::clone(&self.meters.soa_bytes), bytes as f64)
        });
        SoaBuffer {
            buf,
            rows,
            dims,
            staged,
        }
    }

    /// Overwrites one staged row (one transfer of `dims` values) — the
    /// columnar equivalent of [`Device::write_at`] for the paper's
    /// single-PCIe-write sample-point replacement (§5.1). The write
    /// scatters into the per-dimension stripes device-side.
    ///
    /// # Panics
    /// Panics when `row` is out of range or `values` is not `dims` long.
    pub fn write_row_soa(&self, buf: &mut SoaBuffer, row: usize, values: &[f64]) {
        assert!(
            row < buf.rows && values.len() == buf.dims,
            "device write OOB"
        );
        let bytes = std::mem::size_of_val(values);
        self.charge(
            Launch::transfer(LaunchKind::WriteRowSoa, bytes),
            self.cost.transfer(bytes),
            |s| {
                s.uploads += 1;
                s.bytes_up += bytes as u64;
            },
            || {
                for (d, &v) in values.iter().enumerate() {
                    buf.buf.data[d * buf.rows + row] = v;
                }
            },
        )
    }

    /// Reads a staged sample back row-major (one transfer, the inverse
    /// of [`Device::stage_rows_soa`]'s transpose).
    pub fn download_rows_soa(&self, buf: &SoaBuffer) -> Vec<f64> {
        let bytes = std::mem::size_of_val(buf.buf.data.as_slice());
        self.charge(
            Launch::transfer(LaunchKind::DownloadRowsSoa, bytes),
            self.cost.transfer(bytes),
            |s| {
                s.downloads += 1;
                s.bytes_down += bytes as u64;
            },
            || {
                let mut out = vec![0.0; buf.rows * buf.dims];
                for (r, row) in out.chunks_exact_mut(buf.dims).enumerate() {
                    for (d, o) in row.iter_mut().enumerate() {
                        *o = buf.buf.data[d * buf.rows + r];
                    }
                }
                out
            },
        )
    }

    /// Backend dispatch for a columnar sweep: hands each fixed-size
    /// block of rows to `f` as a [`ColsView`] window plus that block's
    /// `out_width`-wide output chunk. Block boundaries depend only on
    /// [`SWEEP_BLOCK_ROWS`], never on worker count, and blocks write
    /// disjoint output ranges — so CpuSeq/CpuPar/SimGpu all produce
    /// bit-identical buffers.
    fn run_sweep<F>(&self, sample: &SoaBuffer, out_width: usize, f: &F, out: &mut [f64])
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        assert!(out_width > 0);
        debug_assert_eq!(out.len(), sample.rows * out_width);
        let view = |start: usize, len: usize| ColsView {
            data: &sample.buf.data,
            total_rows: sample.rows,
            dims: sample.dims,
            start,
            len,
        };
        let block_elems = SWEEP_BLOCK_ROWS * out_width;
        match self.backend {
            Backend::CpuSeq => {
                for (b, chunk) in out.chunks_mut(block_elems).enumerate() {
                    f(view(b * SWEEP_BLOCK_ROWS, chunk.len() / out_width), chunk);
                }
            }
            Backend::CpuPar | Backend::SimGpu => {
                kdesel_par::par_for_each_block_mut(out, block_elems, |b, chunk| {
                    f(view(b * SWEEP_BLOCK_ROWS, chunk.len() / out_width), chunk);
                });
            }
        }
    }

    /// Columnar fused map + tree-reduce over a staged sample: the SoA
    /// counterpart of [`Device::map_rows_reduce`] with identical cost
    /// accounting (one vectorized launch, one 8-byte download) and an
    /// identical pairwise reduction over the per-row values — so a sweep
    /// kernel that computes each row's value bitwise like its row-major
    /// map produces a bitwise-identical sum.
    ///
    /// With `retain`, the per-row values stay device-resident (the
    /// Karma retained-contributions side output).
    pub fn sweep_reduce<F>(
        &self,
        sample: &SoaBuffer,
        flops_per_row: f64,
        retain: bool,
        f: F,
    ) -> (f64, Option<DeviceBuffer>)
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        let rows = sample.rows;
        let modeled = self.cost.kernel_vectorized(rows, flops_per_row + 4.0)
            + self.cost.transfer(std::mem::size_of::<f64>());
        self.charge(
            Launch::kernel(
                LaunchKind::SweepReduce,
                rows,
                flops_per_row + 4.0,
                std::mem::size_of::<f64>(),
            ),
            modeled,
            |s| {
                s.kernels += 1;
                s.downloads += 1;
                s.bytes_down += std::mem::size_of::<f64>() as u64;
            },
            || {
                let mut data = self.pool.acquire_zeroed(rows);
                self.run_sweep(sample, 1, &f, &mut data);
                let sum = pairwise_sum(&data);
                if retain {
                    (sum, Some(self.wrap(data)))
                } else {
                    self.pool.release(data);
                    (sum, None)
                }
            },
        )
    }

    /// Columnar multi-output sweep without reduction: the SoA
    /// counterpart of [`Device::map_rows_multi`] (one vectorized launch,
    /// no transfer), returning the `rows × out_width` row-major output
    /// buffer device-resident.
    pub fn sweep_multi<F>(
        &self,
        sample: &SoaBuffer,
        out_width: usize,
        flops_per_row: f64,
        f: F,
    ) -> DeviceBuffer
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        let rows = sample.rows;
        self.charge(
            Launch::kernel(LaunchKind::SweepMulti, rows, flops_per_row, 0),
            self.cost.kernel_vectorized(rows, flops_per_row),
            |s| s.kernels += 1,
            || {
                let mut data = self.pool.acquire_zeroed(rows * out_width);
                self.run_sweep(sample, out_width, &f, &mut data);
                self.wrap(data)
            },
        )
    }

    /// Columnar fused multi-output sweep + column reduction: the SoA
    /// counterpart of [`Device::map_rows_multi_reduce`] with identical
    /// cost accounting and reduction order. With `retain_first`, column
    /// 0 of the sweep output is kept device-resident as a contiguous
    /// buffer.
    ///
    /// # Panics
    /// Panics when `out_width` is zero.
    pub fn sweep_multi_reduce<F>(
        &self,
        sample: &SoaBuffer,
        out_width: usize,
        flops_per_row: f64,
        retain_first: bool,
        f: F,
    ) -> (Vec<f64>, Option<DeviceBuffer>)
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        assert!(out_width > 0);
        let rows = sample.rows;
        let result_bytes = out_width * std::mem::size_of::<f64>();
        let modeled = self
            .cost
            .kernel_vectorized(rows, flops_per_row + 4.0 * out_width as f64)
            + self.cost.transfer(result_bytes);
        self.charge(
            Launch::kernel(
                LaunchKind::SweepMultiReduce,
                rows,
                flops_per_row + 4.0 * out_width as f64,
                result_bytes,
            ),
            modeled,
            |s| {
                s.kernels += 1;
                s.downloads += 1;
                s.bytes_down += result_bytes as u64;
            },
            || {
                let mut data = self.pool.acquire_zeroed(rows * out_width);
                self.run_sweep(sample, out_width, &f, &mut data);
                let sums = pairwise_sum_columns(&data, out_width);
                let retained = retain_first.then(|| {
                    let mut first = self.pool.acquire_zeroed(rows);
                    for (o, row) in first.iter_mut().zip(data.chunks_exact(out_width)) {
                        *o = row[0];
                    }
                    self.wrap(first)
                });
                self.pool.release(data);
                (sums, retained)
            },
        )
    }

    /// Columnar fused batched evaluation: the SoA counterpart of
    /// [`Device::map_rows_batch`] — one vectorized launch maps every
    /// staged row to `batch` outputs and column-reduces them.
    pub fn sweep_batch<F>(
        &self,
        sample: &SoaBuffer,
        batch: usize,
        flops_per_row: f64,
        f: F,
    ) -> Vec<f64>
    where
        F: Fn(ColsView<'_>, &mut [f64]) + Sync,
    {
        self.sweep_multi_reduce(sample, batch, flops_per_row, false, f)
            .0
    }

    /// Updates each element of `buf` in place from its index and current
    /// value (the Karma accumulation pass, paper eq. 8).
    pub fn update_inplace<F>(&self, buf: &mut DeviceBuffer, flops_per_item: f64, f: F)
    where
        F: Fn(usize, f64) -> f64 + Sync,
    {
        let n = buf.data.len();
        self.charge(
            Launch::kernel(LaunchKind::UpdateInplace, n, flops_per_item, 0),
            self.cost.kernel(n, flops_per_item),
            |s| s.kernels += 1,
            || match self.backend {
                Backend::CpuSeq => {
                    for (i, v) in buf.data.iter_mut().enumerate() {
                        *v = f(i, *v);
                    }
                }
                Backend::CpuPar | Backend::SimGpu => {
                    kdesel_par::par_for_each_mut(&mut buf.data, |i, v| *v = f(i, *v));
                }
            },
        )
    }

    /// Updates each element of `target` in place from its index, its current
    /// value, and the corresponding element of `source` — the Karma
    /// accumulation pass (paper eq. 8) reading the retained per-point
    /// contributions. No host transfer is involved.
    ///
    /// # Panics
    /// Panics when the buffers differ in length.
    pub fn zip_update_inplace<F>(
        &self,
        target: &mut DeviceBuffer,
        source: &DeviceBuffer,
        flops_per_item: f64,
        f: F,
    ) where
        F: Fn(usize, f64, f64) -> f64 + Sync,
    {
        assert_eq!(
            target.data.len(),
            source.data.len(),
            "buffer length mismatch"
        );
        let n = target.data.len();
        self.charge(
            Launch::kernel(LaunchKind::ZipUpdateInplace, n, flops_per_item, 0),
            self.cost.kernel(n, flops_per_item),
            |s| s.kernels += 1,
            || match self.backend {
                Backend::CpuSeq => {
                    for (i, (t, &s)) in target.data.iter_mut().zip(&source.data).enumerate() {
                        *t = f(i, *t, s);
                    }
                }
                Backend::CpuPar | Backend::SimGpu => {
                    let src = source.data.as_slice();
                    kdesel_par::par_for_each_mut(&mut target.data, |i, t| *t = f(i, *t, src[i]));
                }
            },
        )
    }

    /// Sums a device buffer via parallel binary reduction and downloads the
    /// scalar result.
    pub fn reduce_sum(&self, buf: &DeviceBuffer) -> f64 {
        let n = buf.data.len();
        let modeled = self.cost.reduction(n) + self.cost.transfer(std::mem::size_of::<f64>());
        self.charge(
            Launch::kernel(LaunchKind::ReduceSum, n, 4.0, std::mem::size_of::<f64>()),
            modeled,
            |s| {
                s.kernels += 2;
                s.downloads += 1;
                s.bytes_down += std::mem::size_of::<f64>() as u64;
            },
            || pairwise_sum(&buf.data),
        )
    }

    /// Sums each of `width` interleaved columns of `buf` (used for the
    /// `d`-component gradient reduction) and downloads the result vector.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `width`.
    pub fn reduce_sum_columns(&self, buf: &DeviceBuffer, width: usize) -> Vec<f64> {
        assert_eq!(buf.data.len() % width, 0, "ragged device buffer");
        let n = buf.data.len() / width;
        let modeled =
            self.cost.reduction(n * width) + self.cost.transfer(width * std::mem::size_of::<f64>());
        self.charge(
            Launch::kernel(
                LaunchKind::ReduceSumColumns,
                n * width,
                4.0,
                width * std::mem::size_of::<f64>(),
            ),
            modeled,
            |s| {
                s.kernels += 2;
                s.downloads += 1;
                s.bytes_down += (width * std::mem::size_of::<f64>()) as u64;
            },
            || pairwise_sum_columns(&buf.data, width),
        )
    }
}

/// Streaming pairwise accumulator: a binary counter over completed
/// blocks. Pushing the i-th value merges equal-sized blocks bottom-up,
/// which reproduces *exactly* the summation tree of the recursive
/// largest-power-of-two split (the reduction tree layout used by GPU
/// implementations) without recursion or scratch buffers — the stack
/// holds at most `log2(n)+1` partial sums.
#[derive(Clone)]
pub(crate) struct PairwiseAcc {
    /// `(partial sum, level)` pairs; a block at level `k` covers `2^k`
    /// consecutive inputs. Levels are strictly decreasing left to right.
    stack: Vec<(f64, u32)>,
}

impl PairwiseAcc {
    pub(crate) fn new() -> Self {
        Self { stack: Vec::new() }
    }

    // The sums below are spelled `left_block + right_block` (not `+=`) so
    // the code states the tree orientation the bit-identity tests pin.
    #[allow(clippy::assign_op_pattern)]
    pub(crate) fn push(&mut self, value: f64) {
        self.push_block(value, 0);
    }

    /// Inserts a pre-summed aligned subtree covering `2^level` inputs.
    /// Valid only when the number of values pushed so far is a multiple
    /// of `2^level` (the binary counter has no block below `level` in
    /// flight), which the blocked fast paths guarantee by emitting full
    /// blocks first.
    #[allow(clippy::assign_op_pattern)]
    pub(crate) fn push_block(&mut self, value: f64, level: u32) {
        let mut sum = value;
        let mut level = level;
        while let Some(&(top, top_level)) = self.stack.last() {
            if top_level != level {
                break;
            }
            self.stack.pop();
            sum = top + sum;
            level += 1;
        }
        self.stack.push((sum, level));
    }

    #[allow(clippy::assign_op_pattern)]
    pub(crate) fn finish(&self) -> f64 {
        // Leftover blocks shrink left to right; folding right-to-left as
        // `earlier + acc` matches the recursive `sum(left) + sum(right)`
        // association at every level.
        let mut blocks = self.stack.iter().rev();
        let Some(&(mut acc, _)) = blocks.next() else {
            return 0.0;
        };
        for &(block, _) in blocks {
            acc = block + acc;
        }
        acc
    }
}

/// Aligned subtree width for the fast reduction path: full blocks of
/// [`PAIRWISE_BLOCK`] inputs are summed with a branch-free bottom-up
/// binary tree and enter the [`PairwiseAcc`] as one pre-made level-
/// [`PAIRWISE_BLOCK_LEVEL`] carry, skipping the per-element stack walk.
/// Must stay a power of two so each block is an exact subtree of the
/// recursive pairwise split.
pub(crate) const PAIRWISE_BLOCK: usize = 256;
pub(crate) const PAIRWISE_BLOCK_LEVEL: u32 = PAIRWISE_BLOCK.trailing_zeros();

/// Sums one aligned block with the exact adjacent-pairs tree the
/// recursive pairwise split produces over a power-of-two range: level by
/// level, `b[i] = b[2i] + b[2i+1]`. Plain unit-stride loops, so the
/// halving passes vectorize; the association never changes.
#[inline]
pub(crate) fn pairwise_block_sum(block: &[f64; PAIRWISE_BLOCK]) -> f64 {
    let mut buf = *block;
    let mut width = PAIRWISE_BLOCK / 2;
    while width >= 1 {
        for i in 0..width {
            buf[i] = buf[2 * i] + buf[2 * i + 1];
        }
        width /= 2;
    }
    buf[0]
}

/// Pairwise (binary-tree) summation: matches the paper's parallel reduction
/// scheme and keeps the rounding error at `O(log n)` ulps so all backends
/// produce identical results regardless of thread count.
pub(crate) fn pairwise_sum(values: &[f64]) -> f64 {
    let mut acc = PairwiseAcc::new();
    let mut blocks = values.chunks_exact(PAIRWISE_BLOCK);
    for block in &mut blocks {
        let block: &[f64; PAIRWISE_BLOCK] = block.try_into().expect("chunks_exact width");
        acc.push_block(pairwise_block_sum(block), PAIRWISE_BLOCK_LEVEL);
    }
    for &v in blocks.remainder() {
        acc.push(v);
    }
    acc.finish()
}

/// Pairwise-sums each of `width` interleaved columns in a single blocked
/// row-major pass (no per-column full-length strided gather). Each
/// column's result is bit-identical to `pairwise_sum` over that column
/// alone: full [`PAIRWISE_BLOCK`]-row windows are de-interleaved into a
/// stack scratch and take the block fast path, the ragged tail walks
/// element by element.
pub(crate) fn pairwise_sum_columns(data: &[f64], width: usize) -> Vec<f64> {
    let mut accs = vec![PairwiseAcc::new(); width];
    let rows = data.len() / width;
    let main = rows - rows % PAIRWISE_BLOCK;
    let mut scratch = [0.0f64; PAIRWISE_BLOCK];
    for b in (0..main).step_by(PAIRWISE_BLOCK) {
        let window = &data[b * width..][..PAIRWISE_BLOCK * width];
        for (c, acc) in accs.iter_mut().enumerate() {
            for (k, s) in scratch.iter_mut().enumerate() {
                *s = window[k * width + c];
            }
            acc.push_block(pairwise_block_sum(&scratch), PAIRWISE_BLOCK_LEVEL);
        }
    }
    for row in data[main * width..].chunks_exact(width) {
        for (acc, &v) in accs.iter_mut().zip(row) {
            acc.push(v);
        }
    }
    accs.iter().map(PairwiseAcc::finish).collect()
}

/// The original recursive formulation, kept as the executable definition
/// of the summation-tree contract that the iterative [`PairwiseAcc`] must
/// reproduce bit-for-bit.
#[cfg(test)]
fn pairwise_sum_recursive(values: &[f64]) -> f64 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        2 => values[0] + values[1],
        n => {
            // Split at the largest power of two below n.
            let mut split = 1;
            while split * 2 < n {
                split *= 2;
            }
            pairwise_sum_recursive(&values[..split]) + pairwise_sum_recursive(&values[split..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [Backend; 3] = [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu];

    #[test]
    fn upload_download_roundtrip() {
        for b in BACKENDS {
            let d = Device::new(b);
            let buf = d.upload(&[1.0, 2.0, 3.0]);
            assert_eq!(d.download(&buf), vec![1.0, 2.0, 3.0], "{}", b.name());
        }
    }

    #[test]
    fn all_backends_produce_identical_results() {
        let host: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let mut outputs = Vec::new();
        for b in BACKENDS {
            let d = Device::new(b);
            let buf = d.upload(&host);
            let mapped = d.map_rows(&buf, 2, 10.0, |row| row[0] * row[1] + 1.0);
            let sum = d.reduce_sum(&mapped);
            outputs.push((d.download(&mapped), sum));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn reduce_sum_matches_naive_sum() {
        let d = Device::new(Backend::CpuSeq);
        let vals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let buf = d.upload(&vals);
        assert_eq!(d.reduce_sum(&buf), 5050.0);
        // Odd, non-power-of-two lengths.
        let buf = d.upload(&vals[..97]);
        let naive: f64 = vals[..97].iter().sum();
        assert!((d.reduce_sum(&buf) - naive).abs() < 1e-9);
        // Empty and singleton.
        assert_eq!(d.reduce_sum(&d.alloc_zeroed(0)), 0.0);
        let one = d.upload(&[7.5]);
        assert_eq!(d.reduce_sum(&one), 7.5);
    }

    #[test]
    fn reduce_sum_columns_sums_interleaved() {
        let d = Device::new(Backend::CpuPar);
        // rows: (1,10), (2,20), (3,30)
        let buf = d.upload(&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        assert_eq!(d.reduce_sum_columns(&buf, 2), vec![6.0, 60.0]);
    }

    #[test]
    fn map_rows_multi_produces_per_row_vectors() {
        let d = Device::new(Backend::SimGpu);
        let buf = d.upload(&[1.0, 2.0, 3.0, 4.0]);
        let out = d.map_rows_multi(&buf, 2, 3, 5.0, |row, out| {
            out[0] = row[0];
            out[1] = row[1];
            out[2] = row[0] + row[1];
        });
        assert_eq!(d.download(&out), vec![1.0, 2.0, 3.0, 3.0, 4.0, 7.0]);
    }

    #[test]
    fn update_inplace_applies_function() {
        for b in BACKENDS {
            let d = Device::new(b);
            let mut buf = d.upload(&[1.0, 2.0, 3.0]);
            d.update_inplace(&mut buf, 2.0, |i, v| v + i as f64);
            assert_eq!(d.download(&buf), vec![1.0, 3.0, 5.0], "{}", b.name());
        }
    }

    #[test]
    fn write_at_updates_region_with_single_transfer() {
        let d = Device::new(Backend::SimGpu);
        let mut buf = d.upload(&[0.0; 6]);
        let before = d.stats();
        d.write_at(&mut buf, 2, &[9.0, 9.0]);
        let after = d.stats();
        assert_eq!(after.uploads - before.uploads, 1);
        assert_eq!(after.bytes_up - before.bytes_up, 16);
        assert_eq!(d.download(&buf), vec![0.0, 0.0, 9.0, 9.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "device write OOB")]
    fn write_past_end_panics() {
        let d = Device::new(Backend::CpuSeq);
        let mut buf = d.alloc_zeroed(2);
        d.write_at(&mut buf, 1, &[1.0, 2.0]);
    }

    #[test]
    fn stats_account_every_transfer_and_launch() {
        for b in BACKENDS {
            let name = b.name();
            let d = Device::new(b);
            assert_eq!(d.stats(), DeviceStats::default(), "{name}");

            // Transfers are 8 bytes per f64 element, one transfer each.
            let buf = d.upload(&[1.0; 96]);
            let s = d.stats();
            assert_eq!((s.uploads, s.bytes_up), (1, 96 * 8), "{name}");

            // Each map/update launch is exactly one kernel; allocation
            // charges nothing.
            let mapped = d.map_rows(&buf, 3, 1.0, |r| r[0] + r[1] + r[2]);
            let _multi = d.map_rows_multi(&buf, 3, 2, 1.0, |r, o| {
                o[0] = r[0];
                o[1] = r[2];
            });
            let mut acc = d.alloc_zeroed(32);
            d.update_inplace(&mut acc, 1.0, |_, v| v + 1.0);
            d.zip_update_inplace(&mut acc, &mapped, 1.0, |_, t, src| t + src);
            let s = d.stats();
            assert_eq!(s.kernels, 4, "{name}");
            assert_eq!((s.downloads, s.bytes_down), (0, 0), "{name}");

            // Reductions are multi-pass: two launches plus the result
            // readback (one scalar, or `width` scalars for columns).
            let _ = d.reduce_sum(&mapped);
            let s = d.stats();
            assert_eq!(s.kernels, 6, "{name}");
            assert_eq!((s.downloads, s.bytes_down), (1, 8), "{name}");
            let _ = d.reduce_sum_columns(&buf, 3);
            let s = d.stats();
            assert_eq!(s.kernels, 8, "{name}");
            assert_eq!((s.downloads, s.bytes_down), (2, 8 + 24), "{name}");

            // A full download moves the whole buffer.
            let host = d.download(&buf);
            assert_eq!(host.len(), 96);
            let s = d.stats();
            assert_eq!((s.downloads, s.bytes_down), (3, 8 + 24 + 96 * 8), "{name}");

            // Partial writes charge only the written region.
            d.write_at(&mut acc, 0, &[5.0; 4]);
            let s = d.stats();
            assert_eq!((s.uploads, s.bytes_up), (2, 96 * 8 + 32), "{name}");
        }
    }

    #[test]
    fn enabled_telemetry_mirrors_stats_deltas() {
        let reg = kdesel_telemetry::registry();
        let kernels = reg.counter("device.kernels");
        let bytes_up = reg.counter("device.bytes_up");
        let (k0, b0) = (kernels.get(), bytes_up.get());
        kdesel_telemetry::set_enabled(true);
        let d = Device::new(Backend::CpuSeq);
        let buf = d.upload(&[1.0; 8]);
        let _ = d.reduce_sum(&buf);
        kdesel_telemetry::set_enabled(false);
        // `>=`: other tests in this binary may run concurrently while the
        // global flag is up; this device alone contributes 2 kernels and
        // 64 bytes.
        assert!(kernels.get() - k0 >= 2);
        assert!(bytes_up.get() - b0 >= 64);
    }

    #[test]
    fn modeled_time_accumulates_and_resets() {
        let d = Device::new(Backend::SimGpu);
        assert_eq!(d.modeled_seconds(), 0.0);
        let buf = d.upload(&vec![0.0; 1024]);
        let after_upload = d.modeled_seconds();
        assert!(after_upload > 0.0);
        let _ = d.map_rows(&buf, 1, 100.0, |r| r[0]);
        assert!(d.modeled_seconds() > after_upload);
        d.reset_timing();
        assert_eq!(d.modeled_seconds(), 0.0);
        // Counters reset; pool occupancy is state, not a window, so the
        // held-bytes level survives (the dropped map output parked its
        // storage on the free list).
        let s = d.stats();
        assert_eq!(
            s,
            DeviceStats {
                pool_held_bytes: s.pool_held_bytes,
                ..DeviceStats::default()
            }
        );
        assert_eq!(d.profile(), crate::profile::DeviceProfile::default());
    }

    #[test]
    fn gpu_kernel_cost_is_flat_for_small_then_linear() {
        let d = Device::new(Backend::SimGpu);
        let cost_of = |n: usize| {
            d.reset_timing();
            let buf = DeviceBuffer {
                data: vec![0.0; n],
                pool: None,
            };
            let _ = d.map_rows(&buf, 1, 480.0, |r| r[0]);
            d.modeled_seconds()
        };
        // A single kernel's latency floor covers ≈6 K rows at 480 FLOP/row;
        // the paper's 16-32 K flat region comes from the ~5 launches and
        // transfers of a full estimate (asserted in the kde crate's tests).
        let c256 = cost_of(1 << 8);
        let c2k = cost_of(1 << 11);
        let c1m = cost_of(1 << 20);
        let c2m = cost_of(1 << 21);
        assert!(c2k / c256 < 1.5, "not flat: {c256} -> {c2k}");
        assert!((c2m / c1m - 2.0).abs() < 0.2, "not linear: {c1m} -> {c2m}");
    }

    #[test]
    fn iterative_pairwise_matches_recursive_tree_exactly() {
        // Ill-conditioned values of wildly varying magnitude: any change
        // in association order would change the rounded result.
        for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 31, 97, 1000, 4097] {
            let vals: Vec<f64> = (0..n)
                .map(|i| {
                    let m = (i as f64 * 0.7391).sin();
                    m * 10f64.powi((i % 13) as i32 - 6)
                })
                .collect();
            let iterative = pairwise_sum(&vals);
            let recursive = pairwise_sum_recursive(&vals);
            assert!(
                iterative == recursive || (iterative.is_nan() && recursive.is_nan()),
                "n={n}: {iterative} vs {recursive}"
            );
        }
    }

    #[test]
    fn blocked_column_sum_matches_per_column_pairwise() {
        for (rows, width) in [(0usize, 3usize), (1, 4), (97, 3), (4096, 5)] {
            let data: Vec<f64> = (0..rows * width)
                .map(|i| (i as f64 * 1.13).cos() * 10f64.powi((i % 9) as i32 - 4))
                .collect();
            let blocked = pairwise_sum_columns(&data, width);
            let reference: Vec<f64> = (0..width)
                .map(|c| {
                    let col: Vec<f64> = data.iter().skip(c).step_by(width).copied().collect();
                    pairwise_sum_recursive(&col)
                })
                .collect();
            assert_eq!(blocked, reference, "rows={rows} width={width}");
        }
    }

    #[test]
    fn fused_map_reduce_is_bit_identical_to_unfused() {
        let host: Vec<f64> = (0..999).map(|i| (i as f64).sin() * 1e3).collect();
        for b in BACKENDS {
            let d = Device::new(b);
            let buf = d.upload(&host);
            let f = |row: &[f64]| row[0].mul_add(row[1], row[2].exp().recip());
            let mapped = d.map_rows(&buf, 3, 10.0, f);
            let unfused = d.reduce_sum(&mapped);
            let (fused, retained) = d.map_rows_reduce(&buf, 3, 10.0, true, f);
            assert_eq!(fused, unfused, "{}", b.name());
            assert_eq!(
                d.download(retained.as_ref().unwrap()),
                d.download(&mapped),
                "{}",
                b.name()
            );

            let g = |row: &[f64], out: &mut [f64]| {
                out[0] = f(row);
                out[1] = row[0] - row[1];
            };
            let multi = d.map_rows_multi(&buf, 3, 2, 10.0, g);
            let unfused_cols = d.reduce_sum_columns(&multi, 2);
            let (fused_cols, first) = d.map_rows_multi_reduce(&buf, 3, 2, 10.0, true, g);
            assert_eq!(fused_cols, unfused_cols, "{}", b.name());
            // Retained column 0 is bitwise what `map_rows` would produce.
            assert_eq!(
                d.download(first.as_ref().unwrap()),
                d.download(&mapped),
                "{}",
                b.name()
            );
            assert_eq!(
                d.map_rows_batch(&buf, 3, 2, 10.0, g),
                fused_cols,
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn fused_paths_charge_one_launch_and_one_download() {
        let d = Device::new(Backend::SimGpu);
        let buf = d.upload(&[1.0; 96]);
        let s0 = d.stats();
        let _ = d.map_rows_reduce(&buf, 3, 5.0, true, |r| r[0]);
        let s1 = d.stats();
        assert_eq!(s1.kernels - s0.kernels, 1);
        assert_eq!(s1.downloads - s0.downloads, 1);
        assert_eq!(s1.bytes_down - s0.bytes_down, 8);
        let _ = d.map_rows_multi_reduce(&buf, 3, 4, 5.0, false, |r, o| o.fill(r[0]));
        let s2 = d.stats();
        assert_eq!(s2.kernels - s1.kernels, 1);
        assert_eq!(s2.downloads - s1.downloads, 1);
        assert_eq!(s2.bytes_down - s1.bytes_down, 32);
        // No uploads anywhere in the fused paths.
        assert_eq!(s2.uploads, s0.uploads);
    }

    #[test]
    fn copy_buffer_charges_a_device_to_device_copy() {
        let d = Device::new(Backend::SimGpu);
        let buf = d.upload(&[2.0; 64]);
        let s0 = d.stats();
        let m0 = d.modeled_seconds();
        let copy = d.copy_buffer(&buf);
        let s1 = d.stats();
        assert_eq!(s1.kernels - s0.kernels, 1);
        assert_eq!(s1.d2d_copies - s0.d2d_copies, 1);
        assert_eq!(s1.bytes_d2d - s0.bytes_d2d, 64 * 8);
        // No PCIe traffic.
        assert_eq!(s1.uploads, s0.uploads);
        assert_eq!(s1.downloads, s0.downloads);
        assert!(d.modeled_seconds() > m0);
        assert_eq!(d.download(&copy), vec![2.0; 64]);
    }

    #[test]
    fn soa_staging_roundtrips_and_charges_one_transfer() {
        for b in BACKENDS {
            let d = Device::new(b);
            let rows: Vec<f64> = (0..SWEEP_BLOCK_ROWS * 3 * 2 + 10)
                .map(|i| (i as f64).sin())
                .collect();
            let s0 = d.stats();
            let soa = d.stage_rows_soa(&rows, 2);
            let s1 = d.stats();
            assert_eq!(s1.uploads - s0.uploads, 1, "{}", b.name());
            assert_eq!(s1.bytes_up - s0.bytes_up, (rows.len() * 8) as u64);
            assert_eq!((soa.rows(), soa.dims()), (rows.len() / 2, 2));
            assert_eq!(d.download_rows_soa(&soa), rows, "{}", b.name());
        }
    }

    #[test]
    fn write_row_soa_scatters_one_transfer_of_dims_values() {
        let d = Device::new(Backend::SimGpu);
        let mut soa = d.stage_rows_soa(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        let s0 = d.stats();
        d.write_row_soa(&mut soa, 1, &[7.0, 8.0, 9.0]);
        let s1 = d.stats();
        assert_eq!(s1.uploads - s0.uploads, 1);
        assert_eq!(s1.bytes_up - s0.bytes_up, 24);
        assert_eq!(
            d.download_rows_soa(&soa),
            vec![1.0, 2.0, 3.0, 7.0, 8.0, 9.0]
        );
    }

    #[test]
    #[should_panic(expected = "device write OOB")]
    fn write_row_soa_out_of_range_panics() {
        let d = Device::new(Backend::CpuSeq);
        let mut soa = d.stage_rows_soa(&[0.0; 6], 3);
        d.write_row_soa(&mut soa, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sweeps_match_row_major_maps_bitwise_across_backends() {
        // A sweep kernel that computes each row's value with the same
        // scalar expressions as its row-major counterpart must reproduce
        // the fused map results bitwise — reductions included — on every
        // backend, across block boundaries and the ragged tail.
        let n = SWEEP_BLOCK_ROWS * 2 + 77;
        let host: Vec<f64> = (0..n * 3).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let row_f = |row: &[f64]| row[0] * row[1] + row[2].exp().recip();
        let col_f = |cols: ColsView<'_>, out: &mut [f64]| {
            let (c0, c1, c2) = (cols.col(0), cols.col(1), cols.col(2));
            for i in 0..cols.rows() {
                out[i] = c0[i] * c1[i] + c2[i].exp().recip();
            }
        };
        for b in BACKENDS {
            let d = Device::new(b);
            let aos = d.upload(&host);
            let soa = d.stage_rows_soa(&host, 3);
            let (sum_aos, kept_aos) = d.map_rows_reduce(&aos, 3, 10.0, true, row_f);
            let (sum_soa, kept_soa) = d.sweep_reduce(&soa, 10.0, true, col_f);
            assert_eq!(sum_aos, sum_soa, "{}", b.name());
            assert_eq!(
                d.download(kept_aos.as_ref().unwrap()),
                d.download(kept_soa.as_ref().unwrap()),
                "{}",
                b.name()
            );

            let row_g = |row: &[f64], out: &mut [f64]| {
                out[0] = row_f(row);
                out[1] = row[0] - row[2];
            };
            let col_g = |cols: ColsView<'_>, out: &mut [f64]| {
                let (c0, c1, c2) = (cols.col(0), cols.col(1), cols.col(2));
                for i in 0..cols.rows() {
                    out[2 * i] = c0[i] * c1[i] + c2[i].exp().recip();
                    out[2 * i + 1] = c0[i] - c2[i];
                }
            };
            let (cols_aos, first_aos) = d.map_rows_multi_reduce(&aos, 3, 2, 10.0, true, row_g);
            let (cols_soa, first_soa) = d.sweep_multi_reduce(&soa, 2, 10.0, true, col_g);
            assert_eq!(cols_aos, cols_soa, "{}", b.name());
            assert_eq!(
                d.download(first_aos.as_ref().unwrap()),
                d.download(first_soa.as_ref().unwrap()),
                "{}",
                b.name()
            );
            assert_eq!(
                d.map_rows_batch(&aos, 3, 2, 10.0, row_g),
                d.sweep_batch(&soa, 2, 10.0, col_g),
                "{}",
                b.name()
            );
            let unfused_aos = d.map_rows_multi(&aos, 3, 2, 10.0, row_g);
            let unfused_soa = d.sweep_multi(&soa, 2, 10.0, col_g);
            assert_eq!(
                d.download(&unfused_aos),
                d.download(&unfused_soa),
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn sweep_charges_match_map_rows_charges() {
        // Identical stats and (at the default vector_width = 1.0)
        // identical modeled seconds: the layout rewire must not shift
        // the calibrated Figure-7 numbers.
        let host: Vec<f64> = (0..96).map(|i| i as f64).collect();
        let d = Device::new(Backend::SimGpu);
        let aos = d.upload(&host);
        let soa = d.stage_rows_soa(&host, 3);
        d.reset_timing();
        let _ = d.map_rows_reduce(&aos, 3, 5.0, false, |r| r[0]);
        let m_map = d.modeled_seconds();
        let s_map = d.stats();
        d.reset_timing();
        let _ = d.sweep_reduce(&soa, 5.0, false, |cols, out| {
            out.copy_from_slice(&cols.col(0)[..out.len()])
        });
        let m_sweep = d.modeled_seconds();
        let s_sweep = d.stats();
        assert_eq!(m_map, m_sweep, "modeled cost differs");
        assert_eq!(s_map.kernels, s_sweep.kernels);
        assert_eq!(s_map.downloads, s_sweep.downloads);
        assert_eq!(s_map.bytes_down, s_sweep.bytes_down);
    }

    #[test]
    fn wider_vector_width_cheapens_sweeps_not_maps() {
        let base = CostProfile::gtx460();
        let wide = Device::with_profile(
            Backend::SimGpu,
            CostProfile {
                vector_width: 8.0,
                ..base
            },
        );
        let narrow = Device::with_profile(Backend::SimGpu, base);
        let host = vec![0.5; 1 << 20];
        let sweep_cost = |d: &Device| {
            let soa = d.stage_rows_soa(&host, 1);
            d.reset_timing();
            let _ = d.sweep_reduce(&soa, 480.0, false, |cols, out| {
                out.copy_from_slice(&cols.col(0)[..out.len()])
            });
            d.modeled_seconds()
        };
        let map_cost = |d: &Device| {
            let buf = d.upload(&host);
            d.reset_timing();
            let _ = d.map_rows_reduce(&buf, 1, 480.0, false, |r| r[0]);
            d.modeled_seconds()
        };
        assert!(
            sweep_cost(&narrow) / sweep_cost(&wide) > 4.0,
            "vector width must cheapen the sweep's compute term"
        );
        assert_eq!(map_cost(&narrow), map_cost(&wide), "scalar maps unaffected");
    }

    #[test]
    fn pooled_reuse_charges_no_fresh_transfer_or_allocation() {
        let d = Device::new(Backend::SimGpu);
        let host = vec![1.0; 4096];
        let b1 = d.upload(&host);
        let first = d.stats();
        assert_eq!(first.pool_hits, 0);
        assert!(first.pool_misses >= 1);
        drop(b1); // storage parks on the free list
        assert!(d.pool_held_bytes() >= 4096 * 8);
        let modeled_before = d.modeled_seconds();
        let b2 = d.upload(&host);
        let second = d.stats();
        // Reuse is a pool hit, not a second allocation...
        assert_eq!(second.pool_hits, 1);
        assert_eq!(second.pool_misses, first.pool_misses);
        // ...and is charged exactly one transfer (the contents changed),
        // identical to the first upload's modeled cost — no double charge.
        assert_eq!(second.uploads - first.uploads, 1);
        assert_eq!(
            d.modeled_seconds() - modeled_before,
            modeled_before,
            "second upload must cost the same single transfer"
        );
        drop(b2);

        // Steady-state kernel outputs recycle too: after a warmup
        // round, repeated fused sweeps stop missing the pool.
        let soa = d.stage_rows_soa(&host, 4);
        let _ = d.sweep_reduce(&soa, 8.0, false, |cols, out| {
            out.copy_from_slice(&cols.col(0)[..out.len()])
        });
        let warm = d.stats();
        for _ in 0..5 {
            let _ = d.sweep_reduce(&soa, 8.0, false, |cols, out| {
                out.copy_from_slice(&cols.col(0)[..out.len()])
            });
        }
        let after = d.stats();
        assert_eq!(
            after.pool_misses, warm.pool_misses,
            "steady state must not allocate"
        );
        assert!(after.pool_hits > warm.pool_hits);
    }

    #[test]
    fn pairwise_sum_is_deterministic_and_accurate() {
        // Ill-conditioned sum: large + many smalls.
        let mut vals = vec![1e16];
        vals.extend(std::iter::repeat_n(1.0, 4096));
        vals.push(-1e16);
        let s = pairwise_sum(&vals);
        assert_eq!(s, pairwise_sum(&vals));
        // Pairwise keeps enough precision to recover the small terms within
        // a few ulps of 1e16.
        assert!((s - 4096.0).abs() <= 2.0, "sum {s}");
    }

    #[test]
    fn fission_scales_throughput_not_latency() {
        let full = Device::new(Backend::SimGpu);
        let tenth = full.fission(0.1);
        // Identical results.
        let host: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let bf = full.upload(&host);
        let bt = tenth.upload(&host);
        let rf = full.reduce_sum(&full.map_rows(&bf, 1, 480.0, |r| r[0].sqrt()));
        let rt = tenth.reduce_sum(&tenth.map_rows(&bt, 1, 480.0, |r| r[0].sqrt()));
        assert_eq!(rf, rt);
        // Compute-bound cost scales ~10x on a big kernel.
        let cost = |d: &Device| {
            d.reset_timing();
            let buf = DeviceBuffer {
                data: vec![0.0; 1 << 21],
                pool: None,
            };
            let _ = d.map_rows(&buf, 1, 480.0, |r| r[0]);
            d.modeled_seconds()
        };
        let ratio = cost(&tenth) / cost(&full);
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
        // Latency floor unchanged: tiny kernels cost the same.
        let tiny = |d: &Device| {
            d.reset_timing();
            let buf = DeviceBuffer {
                data: vec![0.0; 8],
                pool: None,
            };
            let _ = d.map_rows(&buf, 1, 10.0, |r| r[0]);
            d.modeled_seconds()
        };
        let tiny_ratio = tiny(&tenth) / tiny(&full);
        assert!(
            (0.99..1.01).contains(&tiny_ratio),
            "tiny ratio {tiny_ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn fission_fraction_validated() {
        Device::new(Backend::SimGpu).fission(1.5);
    }

    #[test]
    fn measured_time_is_recorded() {
        let d = Device::new(Backend::CpuPar);
        let buf = d.upload(&vec![1.0; 100_000]);
        let _ = d.map_rows(&buf, 1, 1.0, |r| r[0].sqrt());
        assert!(d.measured_seconds() > 0.0);
    }

    #[test]
    fn since_deltas_every_field() {
        // Both literals spell out every field (no `..`): adding a field
        // to DeviceStats breaks this test until its delta is asserted,
        // complementing the compile-time exhaustive destructure inside
        // `since` itself.
        let earlier = DeviceStats {
            uploads: 2,
            bytes_up: 100,
            downloads: 3,
            bytes_down: 50,
            kernels: 7,
            d2d_copies: 1,
            bytes_d2d: 10,
            pool_hits: 4,
            pool_misses: 2,
            pool_held_bytes: 1000,
        };
        let later = DeviceStats {
            uploads: 5,
            bytes_up: 300,
            downloads: 4,
            bytes_down: 90,
            kernels: 17,
            d2d_copies: 3,
            bytes_d2d: 30,
            pool_hits: 9,
            pool_misses: 3,
            pool_held_bytes: 1500,
        };
        let delta = later.since(&earlier);
        assert_eq!(
            delta,
            DeviceStats {
                uploads: 3,
                bytes_up: 200,
                downloads: 1,
                bytes_down: 40,
                kernels: 10,
                d2d_copies: 2,
                bytes_d2d: 20,
                pool_hits: 5,
                pool_misses: 1,
                pool_held_bytes: 500,
            }
        );
        // Mismatched snapshot pairs (or a shrinking held-bytes level)
        // saturate to zero instead of wrapping.
        assert_eq!(earlier.since(&later), DeviceStats::default());
    }

    #[test]
    fn launch_profile_attributes_every_hot_path() {
        use crate::profile::LaunchKind;
        let d = Device::new(Backend::SimGpu);
        let host: Vec<f64> = (0..96).map(|i| i as f64).collect();
        let buf = d.upload(&host);
        let soa = d.stage_rows_soa(&host, 3);
        let mapped = d.map_rows(&buf, 3, 5.0, |r| r[0]);
        let _ = d.map_rows_reduce(&buf, 3, 5.0, false, |r| r[0]);
        let _ = d.sweep_reduce(&soa, 5.0, false, |cols, out| {
            out.copy_from_slice(&cols.col(0)[..out.len()])
        });
        let _ = d.reduce_sum(&mapped);
        let _ = d.download(&mapped);

        let p = d.profile();
        let up = p.kind(LaunchKind::Upload).expect("upload profiled");
        assert_eq!(up.launches, 1);
        assert_eq!(up.bytes, 96 * 8);
        assert_eq!(up.items, 0);
        assert!(up.measured_seconds > 0.0);
        assert!(up.modeled_seconds > 0.0);

        let sweep = p.kind(LaunchKind::SweepReduce).expect("sweep profiled");
        assert_eq!(sweep.launches, 1);
        assert_eq!(sweep.items, 32); // 96 elements / 3 dims
        assert_eq!(sweep.bytes, 8); // the fused scalar readback
        assert_eq!(sweep.flops, 32.0 * 9.0); // flops_per_row + 4 reduce
        assert!(sweep.measured_p50 > 0.0);
        assert!(sweep.measured_p95 >= sweep.measured_p50);

        let mr = p.kind(LaunchKind::MapRowsReduce).expect("fused profiled");
        assert_eq!((mr.launches, mr.items, mr.bytes), (1, 32, 8));
        assert!(p.kind(LaunchKind::ReduceSum).is_some());
        assert!(p.kind(LaunchKind::Download).is_some());
        assert!(p.kind(LaunchKind::StageRowsSoa).is_some());
        // Never ran: omitted rather than zero-filled.
        assert!(p.kind(LaunchKind::WriteRowSoa).is_none());
        assert_eq!(p.launches(), 7);
        assert!(p.kernel_p50_ceiling() > 0.0);

        // Rolling quantiles move with recent samples; totals keep
        // growing past the window.
        for _ in 0..200 {
            let _ = d.map_rows_reduce(&buf, 3, 5.0, false, |r| r[0]);
        }
        let mr = d.profile();
        let mr = mr.kind(LaunchKind::MapRowsReduce).unwrap();
        assert_eq!(mr.launches, 201);
        assert_eq!(mr.items, 201 * 32);
    }

    #[test]
    fn kind_histograms_reach_the_registry_when_enabled() {
        kdesel_telemetry::set_enabled(true);
        let d = Device::new(Backend::CpuSeq);
        let buf = d.upload(&[1.0; 32]);
        let _ = d.map_rows_reduce(&buf, 2, 4.0, false, |r| r[0]);
        kdesel_telemetry::set_enabled(false);
        let reg = kdesel_telemetry::registry();
        assert!(reg.histogram("device.kernel.upload").summary().count >= 1);
        assert!(
            reg.histogram("device.kernel.map_rows_reduce")
                .summary()
                .count
                >= 1
        );
    }
}
