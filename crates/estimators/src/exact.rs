//! Exact-scan selectivity estimator.
//!
//! *Exact Selectivity Computation* (PAPERS.md) observes that for small
//! in-memory tables, scanning beats every estimator: the answer is the
//! truth. This estimator stages the table's rows as columnar SoA
//! stripes once and answers each query with a single fused
//! [`sweep_reduce`](Device::sweep_reduce) launch that sums a
//! branch-free 0/1 containment indicator per row. The per-query device
//! cost is charged through the calibrated [`CostModel`], so the hybrid
//! router can price a scan honestly against a KDE launch.
//!
//! Because every per-row value is exactly `0.0` or `1.0`, the device's
//! pairwise summation is exact — the estimate is bitwise equal to a
//! scalar host loop on every backend (pinned by proptest).
//!
//! The staged copy is deliberately **not** maintained under inserts:
//! like a dropped index, an exact scan over a stale snapshot is only
//! exact for the data it saw. The bake-off's shifting-distribution
//! segment exploits precisely this failure mode.

use kdesel_device::{Device, SoaBuffer};
use kdesel_types::{Rect, SelectivityEstimator};

/// Modeled FLOPs per row per dimension of the containment sweep: two
/// compares, one convert, one multiply.
const FLOPS_PER_DIM: f64 = 4.0;

/// An exact estimator over a staged snapshot of the table.
pub struct ExactScanEstimator {
    device: Device,
    staged: SoaBuffer,
    rows: usize,
    dims: usize,
}

impl ExactScanEstimator {
    /// Stages `rows_flat` (row-major, `dims` values per row) on
    /// `device`.
    ///
    /// # Panics
    /// Panics if `rows_flat` is ragged.
    pub fn new(device: Device, rows_flat: &[f64], dims: usize) -> Self {
        assert!(dims > 0, "exact scan needs at least one dimension");
        assert_eq!(
            rows_flat.len() % dims,
            0,
            "row buffer length {} is not a multiple of dims {dims}",
            rows_flat.len()
        );
        let staged = device.stage_rows_soa(rows_flat, dims);
        let rows = rows_flat.len() / dims;
        Self {
            device,
            staged,
            rows,
            dims,
        }
    }

    /// Exact selectivity of `region` over the staged snapshot, via one
    /// fused containment sweep.
    pub fn estimate(&self, region: &Rect) -> f64 {
        assert_eq!(region.dims(), self.dims, "query dimensionality mismatch");
        if self.rows == 0 {
            return 0.0;
        }
        let (lo, hi) = (region.lo(), region.hi());
        let dims = self.dims;
        let (count, _) = self.device.sweep_reduce(
            &self.staged,
            FLOPS_PER_DIM * dims as f64,
            false,
            |view, out| {
                for (r, slot) in out.iter_mut().enumerate() {
                    let mut inside = 1.0;
                    for d in 0..dims {
                        let x = view.col(d)[r];
                        inside *= f64::from(lo[d] <= x && x <= hi[d]);
                    }
                    *slot = inside;
                }
            },
        );
        count / self.rows as f64
    }

    /// Scalar host reference of [`estimate`](Self::estimate): the
    /// oracle the device sweep must match bitwise.
    pub fn scalar_reference(rows_flat: &[f64], dims: usize, region: &Rect) -> f64 {
        let rows = rows_flat.len() / dims;
        if rows == 0 {
            return 0.0;
        }
        let hits = rows_flat
            .chunks_exact(dims)
            .filter(|row| region.contains(row))
            .count();
        hits as f64 / rows as f64
    }

    /// Modeled device seconds one query costs: the sweep's kernel
    /// charge plus the scalar result download, mirroring
    /// [`Device::sweep_reduce`]'s ledger entry.
    pub fn query_cost(&self) -> f64 {
        let model = self.device.cost_model();
        model.kernel_vectorized(self.rows, FLOPS_PER_DIM * self.dims as f64 + 4.0)
            + model.transfer(std::mem::size_of::<f64>())
    }

    /// Rows in the staged snapshot.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Snapshot dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The device the snapshot lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Device bytes held by the staged snapshot.
    pub fn memory_bytes(&self) -> usize {
        self.staged.len() * std::mem::size_of::<f64>()
    }
}

impl SelectivityEstimator for ExactScanEstimator {
    fn estimate(&mut self, region: &Rect) -> f64 {
        ExactScanEstimator::estimate(self, region)
    }

    fn observe(&mut self, _feedback: &kdesel_types::QueryFeedback) {
        // The snapshot is already exact for the data it saw; feedback
        // carries no information it could use.
    }

    fn memory_bytes(&self) -> usize {
        ExactScanEstimator::memory_bytes(self)
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::Backend;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rows(n: usize, dims: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dims).map(|_| rng.gen_range(0.0..100.0)).collect()
    }

    #[test]
    fn matches_scalar_reference_bitwise_on_all_backends() {
        let dims = 3;
        let data = rows(777, dims, 21);
        let queries = [
            Rect::cube(dims, 20.0, 70.0),
            Rect::cube(dims, -5.0, 200.0),
            Rect::cube(dims, 99.0, 99.5),
            Rect::new(vec![0.0, 50.0, 0.0], vec![100.0, 50.0, 100.0]),
        ];
        for backend in [Backend::CpuSeq, Backend::CpuPar, Backend::SimGpu] {
            let est = ExactScanEstimator::new(Device::new(backend), &data, dims);
            for q in &queries {
                let got = est.estimate(q);
                let want = ExactScanEstimator::scalar_reference(&data, dims, q);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "backend {backend:?} query {q:?}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn empty_snapshot_estimates_zero() {
        let est = ExactScanEstimator::new(Device::new(Backend::CpuSeq), &[], 2);
        assert_eq!(est.estimate(&Rect::cube(2, 0.0, 1.0)), 0.0);
    }

    #[test]
    fn query_cost_tracks_ledger_charge() {
        let dims = 2;
        let data = rows(500, dims, 4);
        let est = ExactScanEstimator::new(Device::new(Backend::SimGpu), &data, dims);
        let before = est.device().modeled_seconds();
        est.estimate(&Rect::cube(dims, 0.0, 50.0));
        let charged = est.device().modeled_seconds() - before;
        assert!(
            (charged - est.query_cost()).abs() <= 1e-12 * charged.max(1.0),
            "query_cost {} vs ledger {charged}",
            est.query_cost()
        );
    }
}
