//! The hybrid cost/error router.
//!
//! Per query, [`HybridRouter`] picks one of the three estimator families
//! — KDE, learned, exact — from two signals:
//!
//! * the **modeled cost** of answering with each family (the calibrated
//!   [`CostModel`](kdesel_device::CostModel) charge for a KDE or exact
//!   sweep, a host-throughput model for the learned path), and
//! * a **rolling q-error window** per family (the PR 6 observatory
//!   shape: the most recent [`RouterConfig::window`] multiplicative
//!   errors, summarized by their nearest-rank p95).
//!
//! The score of a family is `p95_qerror × (1 + cost / latency_budget)`
//! — accuracy first, latency as a soft penalty measured in units of the
//! caller's budget — and the cheapest score wins, ties broken in
//! [`Family::ALL`] order. A family with no observations yet scores the
//! optimistic `1.0`, so every family gets tried early.
//!
//! Because feedback is routed only to the family that answered, a
//! permanently-unchosen family would never refresh its window and a
//! workload shift could go unnoticed. Every
//! [`RouterConfig::probe_every`]-th decision therefore *probes*: it is
//! routed to the family with the fewest lifetime decisions instead of
//! the best score. The probe schedule is a pure function of the decision
//! counters, so routing stays deterministic — same state, same costs,
//! same choice, on every backend (pinned by proptest).
//!
//! The adaptive state (windows, decision counters, last family) is
//! captured by [`RouterState`](kdesel_types::RouterState) for warm
//! restarts; see `kdesel-serve`'s checkpoint integration.

use kdesel_telemetry::Event;
use kdesel_types::{RouterState, QERROR_SMOOTHING};
use std::collections::VecDeque;
use std::sync::Arc;

/// The three estimator families the router arbitrates between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Kernel density estimation (the paper's self-tuning estimator).
    Kde,
    /// The Naru-style autoregressive learned estimator.
    Learned,
    /// The exact-scan estimator over a staged snapshot.
    Exact,
}

impl Family {
    /// All families, in router (and tie-break) order.
    pub const ALL: [Family; 3] = [Family::Kde, Family::Learned, Family::Exact];

    /// Metric/report name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Kde => "kde",
            Family::Learned => "learned",
            Family::Exact => "exact",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Position in [`ALL`](Self::ALL) — indexes the router's per-family
    /// arrays ([`HybridRouter::decisions`] and friends).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Multiplicative q-error between an estimate and the observed truth,
/// smoothed so empty regions stay finite (the observatory's metric):
/// `max((λ+p̂)/(λ+p), (λ+p)/(λ+p̂))`.
pub fn qerror(estimate: f64, actual: f64) -> f64 {
    let e = QERROR_SMOOTHING + estimate.max(0.0);
    let a = QERROR_SMOOTHING + actual.max(0.0);
    (e / a).max(a / e)
}

/// Routing policy parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Rolling q-error observations kept per family.
    pub window: usize,
    /// Modeled seconds per query the caller tolerates; a family costing
    /// exactly this much has its error score doubled.
    pub latency_budget: f64,
    /// Every Nth decision probes the least-used family instead of the
    /// best-scoring one, keeping all windows fresh. `0` disables probing.
    pub probe_every: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            window: 64,
            latency_budget: 2e-3,
            probe_every: 16,
        }
    }
}

/// Per-query arbiter over the three families.
#[derive(Debug)]
pub struct HybridRouter {
    config: RouterConfig,
    windows: [VecDeque<f64>; 3],
    decisions: [u64; 3],
    last: Option<Family>,
    meters: [Arc<kdesel_telemetry::Counter>; 3],
    switches: Arc<kdesel_telemetry::Counter>,
}

impl HybridRouter {
    /// A fresh router with empty windows.
    pub fn new(config: RouterConfig) -> Self {
        assert!(config.window > 0, "router needs a non-empty q-error window");
        assert!(
            config.latency_budget > 0.0,
            "latency budget must be positive"
        );
        Self {
            config,
            windows: std::array::from_fn(|_| VecDeque::new()),
            decisions: [0; 3],
            last: None,
            meters: std::array::from_fn(|i| {
                kdesel_telemetry::counter(&format!("router.decisions.{}", Family::ALL[i].name()))
            }),
            switches: kdesel_telemetry::counter("router.switches"),
        }
    }

    /// The policy in use.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Nearest-rank p95 of one family's rolling window; `1.0` (the best
    /// possible q-error) while the window is empty, so unexplored
    /// families look attractive.
    pub fn window_p95(&self, family: Family) -> f64 {
        let window = &self.windows[family.index()];
        if window.is_empty() {
            return 1.0;
        }
        let mut sorted: Vec<f64> = window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
        let idx = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    /// The score [`choose`](Self::choose) minimizes: windowed p95
    /// q-error, penalized by modeled cost in units of the latency budget.
    pub fn score(&self, family: Family, cost: f64) -> f64 {
        self.window_p95(family) * (1.0 + cost.max(0.0) / self.config.latency_budget)
    }

    /// Picks the family for the next query given each family's modeled
    /// per-query cost (indexed like [`Family::ALL`]). Deterministic in
    /// (state, costs); increments the per-family decision counter and
    /// emits a `router.switch` event when the choice changes family.
    pub fn choose(&mut self, costs: &[f64; 3]) -> Family {
        let total: u64 = self.decisions.iter().sum();
        let probing = self.config.probe_every > 0
            && total > 0
            && total.is_multiple_of(self.config.probe_every);
        let choice = if probing {
            // Probe: the family with the fewest lifetime decisions, ties
            // in ALL order. Keeps every window fresh under any workload.
            Family::ALL
                .into_iter()
                .min_by_key(|f| self.decisions[f.index()])
                .expect("three families")
        } else {
            Family::ALL
                .into_iter()
                .min_by(|a, b| {
                    self.score(*a, costs[a.index()])
                        .partial_cmp(&self.score(*b, costs[b.index()]))
                        .expect("scores are finite")
                })
                .expect("three families")
        };
        self.decisions[choice.index()] += 1;
        if kdesel_telemetry::enabled() {
            self.meters[choice.index()].inc();
        }
        if self.last.is_some_and(|prev| prev != choice) {
            if kdesel_telemetry::enabled() {
                self.switches.inc();
            }
            if kdesel_telemetry::tracing() {
                kdesel_telemetry::emit_event(
                    Event::new("router.switch")
                        .str("from", self.last.expect("checked").name())
                        .str("to", choice.name())
                        .u64("decision", total),
                );
            }
        }
        self.last = Some(choice);
        choice
    }

    /// Folds one observed q-error into `family`'s rolling window.
    pub fn record(&mut self, family: Family, qerror: f64) {
        if !qerror.is_finite() || qerror < 1.0 {
            return; // never poison the window with a malformed observation
        }
        let window = &mut self.windows[family.index()];
        if window.len() == self.config.window {
            window.pop_front();
        }
        window.push_back(qerror);
    }

    /// Lifetime decisions per family, indexed like [`Family::ALL`].
    pub fn decisions(&self) -> [u64; 3] {
        self.decisions
    }

    /// The family that answered the most recent routed query.
    pub fn last(&self) -> Option<Family> {
        self.last
    }

    /// Captures the adaptive state for a warm restart.
    pub fn state(&self) -> RouterState {
        RouterState {
            families: Family::ALL.iter().map(|f| f.name().to_string()).collect(),
            windows: self
                .windows
                .iter()
                .map(|w| w.iter().copied().collect())
                .collect(),
            decisions: self.decisions.to_vec(),
            last: self.last.map(|f| f.name().to_string()),
        }
    }

    /// Restores the adaptive state captured by [`state`](Self::state).
    /// The state's family set must match this router's (any order).
    pub fn restore(&mut self, state: &RouterState) -> Result<(), String> {
        state.validate()?;
        let mut windows: [VecDeque<f64>; 3] = std::array::from_fn(|_| VecDeque::new());
        let mut decisions = [0u64; 3];
        let mut seen = [false; 3];
        for (i, name) in state.families.iter().enumerate() {
            let family = Family::from_name(name)
                .ok_or_else(|| format!("router state names unknown family {name:?}"))?;
            if seen[family.index()] {
                return Err(format!("router state repeats family {name:?}"));
            }
            seen[family.index()] = true;
            let keep = state.windows[i]
                .iter()
                .copied()
                .skip(state.windows[i].len().saturating_sub(self.config.window));
            windows[family.index()] = keep.collect();
            decisions[family.index()] = state.decisions[i];
        }
        if !seen.iter().all(|&s| s) {
            return Err(format!(
                "router state covers {} of 3 families",
                seen.iter().filter(|&&s| s).count()
            ));
        }
        self.windows = windows;
        self.decisions = decisions;
        self.last = state
            .last
            .as_ref()
            .map(|name| Family::from_name(name).expect("validated against families"));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Equal costs, no probes: the router is a pure argmin over windows.
    fn plain(window: usize) -> HybridRouter {
        HybridRouter::new(RouterConfig {
            window,
            latency_budget: 1e-3,
            probe_every: 0,
        })
    }

    #[test]
    fn empty_windows_prefer_tie_break_order() {
        let mut router = plain(8);
        assert_eq!(router.choose(&[0.0; 3]), Family::Kde);
    }

    #[test]
    fn accuracy_dominates_when_costs_are_equal() {
        let mut router = plain(8);
        for _ in 0..8 {
            router.record(Family::Kde, 4.0);
            router.record(Family::Learned, 2.0);
            router.record(Family::Exact, 8.0);
        }
        assert_eq!(router.choose(&[1e-4; 3]), Family::Learned);
    }

    #[test]
    fn cost_penalty_breaks_accuracy_ties() {
        let mut router = plain(8);
        for _ in 0..8 {
            router.record(Family::Kde, 1.5);
            router.record(Family::Exact, 1.5);
            router.record(Family::Learned, 50.0);
        }
        // Same accuracy, but exact costs 10x the budget: pick KDE.
        assert_eq!(router.choose(&[1e-4, 1e-4, 1e-2]), Family::Kde);
        // Flip the costs and the choice flips with them.
        assert_eq!(router.choose(&[1e-2, 1e-4, 1e-4]), Family::Exact);
    }

    #[test]
    fn probes_rotate_through_starved_families() {
        let mut router = HybridRouter::new(RouterConfig {
            window: 8,
            latency_budget: 1e-3,
            probe_every: 4,
        });
        for _ in 0..8 {
            router.record(Family::Exact, 1.0); // exact looks perfect
            router.record(Family::Kde, 9.0);
            router.record(Family::Learned, 9.0);
        }
        let picks: Vec<Family> = (0..12).map(|_| router.choose(&[0.0; 3])).collect();
        assert!(
            picks.contains(&Family::Kde) && picks.contains(&Family::Learned),
            "probing must reach starved families: {picks:?}"
        );
        // Non-probe decisions still follow the windows.
        assert_eq!(picks[0], Family::Exact);
    }

    #[test]
    fn window_is_rolling() {
        let mut router = plain(4);
        for _ in 0..4 {
            router.record(Family::Kde, 100.0);
        }
        for _ in 0..4 {
            router.record(Family::Kde, 1.0); // evicts the bad era
        }
        assert_eq!(router.window_p95(Family::Kde), 1.0);
    }

    #[test]
    fn malformed_observations_are_dropped() {
        let mut router = plain(4);
        router.record(Family::Kde, f64::NAN);
        router.record(Family::Kde, 0.5);
        router.record(Family::Kde, f64::INFINITY);
        assert_eq!(router.state().windows[0], Vec::<f64>::new());
    }

    #[test]
    fn state_roundtrips_and_validates() {
        let mut router = plain(8);
        for q in [2.0, 3.0, 5.0] {
            router.record(Family::Learned, q);
        }
        router.choose(&[0.0; 3]);
        let state = router.state();
        assert_eq!(state.validate(), Ok(()));
        let mut other = plain(8);
        other.restore(&state).unwrap();
        assert_eq!(other.state(), state);
        assert_eq!(other.decisions(), router.decisions());
        assert_eq!(other.last(), router.last());
    }

    #[test]
    fn restore_truncates_to_window_and_rejects_bad_states() {
        let mut donor = plain(16);
        for i in 0..16 {
            donor.record(Family::Kde, 1.0 + i as f64);
        }
        let mut small = plain(4);
        small.restore(&donor.state()).unwrap();
        // Only the newest 4 observations survive.
        assert_eq!(small.state().windows[0], vec![13.0, 14.0, 15.0, 16.0]);

        let mut bad = donor.state();
        bad.families[1] = "stholes".to_string();
        assert!(small.restore(&bad).is_err());
        let mut missing = donor.state();
        missing.families[1] = "kde".to_string(); // duplicate, learned missing
        assert!(small.restore(&missing).is_err());
    }

    #[test]
    fn decision_counters_reach_telemetry() {
        kdesel_telemetry::registry().clear();
        kdesel_telemetry::set_enabled(true);
        let mut router = HybridRouter::new(RouterConfig::default());
        for _ in 0..3 {
            router.record(Family::Exact, 5.0);
            router.choose(&[0.0; 3]);
        }
        kdesel_telemetry::set_enabled(false);
        assert!(
            kdesel_telemetry::registry()
                .counter("router.decisions.kde")
                .get()
                > 0
        );
    }
}
