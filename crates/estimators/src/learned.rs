//! Naru-style autoregressive learned estimator.
//!
//! Follows *Deep Unsupervised Cardinality Estimation* (Yang et al.,
//! PAPERS.md) scaled down to the staged sample: each dimension is
//! discretized into `B` equi-width bins and the joint distribution is
//! factorized autoregressively. We truncate the conditioning to a
//! first-order chain (dimension `i` conditions on dimension `i-1`
//! only), so the parameters are one logit vector for dimension 0 plus
//! one `B x B` conditional logit matrix per subsequent dimension —
//! `B + (d-1)B^2` parameters in total.
//!
//! **Training objective.** Maximum likelihood over the sample's binned
//! rows. With per-context counts `c` precomputed once, the negative
//! log-likelihood decomposes into independent softmax blocks
//!
//! ```text
//! f(theta) = sum_blocks [ n_blk * logsumexp(theta_blk) - <c_blk, theta_blk> ]
//!            + l2 * |theta|^2
//! ```
//!
//! which is convex with analytic gradient
//! `n_blk * softmax(theta_blk) - c_blk + 2*l2*theta` — solved by the
//! in-tree projected L-BFGS (`kdesel-solver`) from `theta = 0`.
//! Contexts never seen in the sample keep zero logits (the L2 term
//! pins them), i.e. they fall back to the uniform conditional.
//!
//! **Inference.** Range queries are answered by Naru's progressive
//! sampling: walk the dimensions in order, weight each bin by the
//! fractional overlap of the query interval with the bin, accumulate
//! the weighted conditional mass, and sample the next conditioning bin
//! proportionally to `p(b) * overlap(b)`. Averaging a handful of paths
//! gives an unbiased estimate of the discretized selectivity. The RNG
//! is seeded from a hash of the query rectangle, so estimates are a
//! pure function of (model, query) — deterministic across backends and
//! call orders.

use kdesel_solver::{lbfgs, Bounds, FnObjective, LbfgsConfig};
use kdesel_types::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`LearnedEstimator::train`].
#[derive(Debug, Clone)]
pub struct LearnedConfig {
    /// Equi-width bins per dimension.
    pub bins: usize,
    /// Progressive-sampling paths averaged per query.
    pub paths: usize,
    /// L2 regularization weight on the logits.
    pub l2: f64,
    /// Solver configuration for the maximum-likelihood fit.
    pub lbfgs: LbfgsConfig,
}

impl Default for LearnedConfig {
    fn default() -> Self {
        Self {
            bins: 16,
            paths: 32,
            l2: 1e-3,
            lbfgs: LbfgsConfig::default(),
        }
    }
}

/// A trained first-order autoregressive model over discretized
/// dimensions.
#[derive(Debug, Clone)]
pub struct LearnedEstimator {
    dims: usize,
    bins: usize,
    paths: usize,
    /// Per-dimension bin origin.
    lo: Vec<f64>,
    /// Per-dimension bin width; `0.0` marks a degenerate (point-mass)
    /// dimension whose single value sits at `lo`.
    width: Vec<f64>,
    /// Marginal distribution of dimension 0's bins.
    p0: Vec<f64>,
    /// Conditional `B x B` row-major tables: `trans[i-1][prev * B + cur]`
    /// is `p(bin_i = cur | bin_{i-1} = prev)`.
    trans: Vec<Vec<f64>>,
    /// L-BFGS iterations the fit took (reporting only).
    iterations: usize,
}

/// Adds one softmax block's NLL and gradient; returns its objective
/// contribution.
fn softmax_block(theta: &[f64], counts: &[f64], grad: &mut [f64]) -> f64 {
    let n_blk: f64 = counts.iter().sum();
    if n_blk == 0.0 {
        return 0.0;
    }
    let max = theta.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut z = 0.0;
    for &t in theta {
        z += (t - max).exp();
    }
    let lse = max + z.ln();
    let mut f = n_blk * lse;
    for ((&t, &c), g) in theta.iter().zip(counts).zip(grad.iter_mut()) {
        f -= c * t;
        *g += n_blk * (t - max).exp() / z - c;
    }
    f
}

/// Normalized probabilities of one logit block.
fn softmax(theta: &[f64]) -> Vec<f64> {
    let max = theta.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = theta.iter().map(|&t| (t - max).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

/// FNV-1a over the query rectangle's bit pattern: the per-query RNG
/// seed, so inference is deterministic in the query alone. The hybrid
/// estimator reuses it as a feedback-attribution key.
pub(crate) fn rect_seed(region: &Rect) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: f64| {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &v in region.lo() {
        mix(v);
    }
    for &v in region.hi() {
        mix(v);
    }
    h
}

impl LearnedEstimator {
    /// Fits the model to `sample` (row-major, `dims` values per row).
    ///
    /// # Panics
    /// Panics if the sample is empty, ragged, or `config.bins == 0`.
    pub fn train(sample: &[f64], dims: usize, config: &LearnedConfig) -> Self {
        assert!(dims > 0, "learned estimator needs at least one dimension");
        assert!(config.bins > 0, "learned estimator needs at least one bin");
        assert!(
            !sample.is_empty() && sample.len().is_multiple_of(dims),
            "sample length {} is not a multiple of dims {dims}",
            sample.len()
        );
        let rows = sample.len() / dims;
        let bins = config.bins;

        // Equi-width discretization over the sample's bounding box.
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        for row in sample.chunks_exact(dims) {
            for (d, &v) in row.iter().enumerate() {
                lo[d] = lo[d].min(v);
                hi[d] = hi[d].max(v);
            }
        }
        let width: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { (h - l) / bins as f64 } else { 0.0 })
            .collect();
        let bin_of = |d: usize, v: f64| -> usize {
            if width[d] == 0.0 {
                0
            } else {
                (((v - lo[d]) / width[d]) as usize).min(bins - 1)
            }
        };

        // Sufficient statistics: marginal counts for dimension 0 and
        // first-order transition counts for each subsequent dimension.
        let mut c0 = vec![0.0f64; bins];
        let mut ct = vec![vec![0.0f64; bins * bins]; dims.saturating_sub(1)];
        for row in sample.chunks_exact(dims) {
            let mut prev = bin_of(0, row[0]);
            c0[prev] += 1.0;
            for (d, &v) in row.iter().enumerate().skip(1) {
                let cur = bin_of(d, v);
                ct[d - 1][prev * bins + cur] += 1.0;
                prev = cur;
            }
        }

        // Maximum-likelihood fit of all logits jointly (the blocks are
        // independent, but one solve keeps the plumbing simple).
        let params = bins + (dims - 1) * bins * bins;
        let l2 = config.l2;
        let obj = FnObjective::new(params, move |x: &[f64], grad: &mut [f64]| {
            grad.fill(0.0);
            let mut f = softmax_block(&x[..bins], &c0, &mut grad[..bins]);
            for (i, counts) in ct.iter().enumerate() {
                let base = bins + i * bins * bins;
                for prev in 0..bins {
                    let s = base + prev * bins;
                    f += softmax_block(
                        &x[s..s + bins],
                        &counts[prev * bins..(prev + 1) * bins],
                        &mut grad[s..s + bins],
                    );
                }
            }
            for (&xi, g) in x.iter().zip(grad.iter_mut()) {
                f += l2 * xi * xi;
                *g += 2.0 * l2 * xi;
            }
            f
        });
        let result = lbfgs(
            &obj,
            &Bounds::unbounded(params),
            &vec![0.0; params],
            &config.lbfgs,
        );

        let p0 = softmax(&result.x[..bins]);
        let trans: Vec<Vec<f64>> = (0..dims - 1)
            .map(|i| {
                let base = bins + i * bins * bins;
                let mut table = Vec::with_capacity(bins * bins);
                for prev in 0..bins {
                    let s = base + prev * bins;
                    table.extend(softmax(&result.x[s..s + bins]));
                }
                table
            })
            .collect();

        if kdesel_telemetry::enabled() {
            kdesel_telemetry::counter("estimators.learned.trained").inc();
            kdesel_telemetry::gauge("estimators.learned.iterations").set(result.iterations as f64);
        }
        let _ = rows;
        Self {
            dims,
            bins,
            paths: config.paths.max(1),
            lo,
            width,
            p0,
            trans,
            iterations: result.iterations,
        }
    }

    /// Fractional overlap of `[ql, qh]` with bin `b` of dimension `d`,
    /// in `[0, 1]`. Degenerate dimensions use inclusive point
    /// containment, matching [`Rect::contains`] semantics.
    fn overlap(&self, d: usize, b: usize, ql: f64, qh: f64) -> f64 {
        if self.width[d] == 0.0 {
            return f64::from(ql <= self.lo[d] && self.lo[d] <= qh);
        }
        let blo = self.lo[d] + b as f64 * self.width[d];
        let bhi = blo + self.width[d];
        ((qh.min(bhi) - ql.max(blo)) / self.width[d]).clamp(0.0, 1.0)
    }

    /// One progressive-sampling path's selectivity estimate.
    fn sample_path(&self, region: &Rect, rng: &mut StdRng) -> f64 {
        let mut estimate = 1.0;
        let mut prev = 0usize;
        for d in 0..self.dims {
            let dist = if d == 0 {
                &self.p0[..]
            } else {
                &self.trans[d - 1][prev * self.bins..(prev + 1) * self.bins]
            };
            let (ql, qh) = (region.lo()[d], region.hi()[d]);
            let mut mass = 0.0;
            for (b, &p) in dist.iter().enumerate() {
                mass += p * self.overlap(d, b, ql, qh);
            }
            if mass <= 0.0 {
                return 0.0;
            }
            estimate *= mass;
            if d + 1 == self.dims {
                break;
            }
            // Sample the conditioning bin proportionally to weighted mass.
            let mut u = rng.gen::<f64>() * mass;
            prev = self.bins - 1;
            for (b, &p) in dist.iter().enumerate() {
                u -= p * self.overlap(d, b, ql, qh);
                if u <= 0.0 {
                    prev = b;
                    break;
                }
            }
        }
        estimate
    }

    /// Estimated selectivity of `region`, averaged over the configured
    /// number of progressive-sampling paths and clamped to `[0, 1]`.
    pub fn estimate(&self, region: &Rect) -> f64 {
        assert_eq!(region.dims(), self.dims, "query dimensionality mismatch");
        let mut rng = StdRng::seed_from_u64(rect_seed(region));
        let total: f64 = (0..self.paths)
            .map(|_| self.sample_path(region, &mut rng))
            .sum();
        (total / self.paths as f64).clamp(0.0, 1.0)
    }

    /// Model dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bins per dimension.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// L-BFGS iterations the maximum-likelihood fit took.
    pub fn training_iterations(&self) -> usize {
        self.iterations
    }

    /// Modeled host seconds one query costs. Progressive sampling runs
    /// on the host (no device launch): each path touches every
    /// dimension's `bins`-wide conditional once, at roughly four FLOPs
    /// per bin (overlap clip, multiply-accumulate), priced at a
    /// conservative scalar host throughput.
    pub fn query_cost(&self) -> f64 {
        const HOST_FLOPS_PER_SEC: f64 = 5e9;
        (self.paths * self.dims * self.bins) as f64 * 4.0 / HOST_FLOPS_PER_SEC
    }

    /// Bytes held by the probability tables.
    pub fn memory_bytes(&self) -> usize {
        let floats = self.p0.len() + self.trans.iter().map(Vec::len).sum::<usize>() + 2 * self.dims;
        floats * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_sample(rows: usize, dims: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows * dims)
            .map(|_| rng.gen_range(0.0..100.0))
            .collect()
    }

    #[test]
    fn whole_domain_estimates_one() {
        let sample = grid_sample(500, 3, 7);
        let model = LearnedEstimator::train(&sample, 3, &LearnedConfig::default());
        let est = model.estimate(&Rect::cube(3, -1e6, 1e6));
        assert!((est - 1.0).abs() < 1e-9, "whole domain gave {est}");
    }

    #[test]
    fn empty_region_estimates_zero() {
        let sample = grid_sample(500, 2, 11);
        let model = LearnedEstimator::train(&sample, 2, &LearnedConfig::default());
        assert_eq!(model.estimate(&Rect::cube(2, 500.0, 600.0)), 0.0);
    }

    #[test]
    fn estimates_are_deterministic_and_order_free() {
        let sample = grid_sample(400, 3, 3);
        let model = LearnedEstimator::train(&sample, 3, &LearnedConfig::default());
        let a = Rect::cube(3, 10.0, 60.0);
        let b = Rect::cube(3, 0.0, 35.0);
        let (ea1, eb1) = (model.estimate(&a), model.estimate(&b));
        let (eb2, ea2) = (model.estimate(&b), model.estimate(&a));
        assert_eq!(ea1, ea2);
        assert_eq!(eb1, eb2);
    }

    #[test]
    fn tracks_selectivity_of_half_space() {
        // Correlated data: dim1 = dim0, so the learned conditional must
        // carry the dependence a marginal product would miss.
        let mut rng = StdRng::seed_from_u64(5);
        let mut sample = Vec::new();
        for _ in 0..2000 {
            let v: f64 = rng.gen_range(0.0..100.0);
            sample.extend([v, v]);
        }
        let model = LearnedEstimator::train(&sample, 2, &LearnedConfig::default());
        // Box [0,50]^2 holds ~half the diagonal; independent marginals
        // would answer ~0.25.
        let est = model.estimate(&Rect::cube(2, 0.0, 50.0));
        assert!((0.35..=0.65).contains(&est), "diagonal estimate {est}");
    }

    #[test]
    fn degenerate_dimension_uses_point_containment() {
        let mut sample = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            sample.extend([rng.gen_range(0.0..10.0), 42.0]);
        }
        let model = LearnedEstimator::train(&sample, 2, &LearnedConfig::default());
        let hit = model.estimate(&Rect::new(vec![0.0, 42.0], vec![10.0, 42.0]));
        let miss = model.estimate(&Rect::new(vec![0.0, 43.0], vec![10.0, 44.0]));
        assert!((hit - 1.0).abs() < 1e-9, "point hit gave {hit}");
        assert_eq!(miss, 0.0);
    }
}
