//! The hybrid estimator: KDE + learned + exact behind one router.
//!
//! [`HybridEstimator`] bundles the paper's self-tuning
//! [`AdaptiveKde`], the Naru-style [`LearnedEstimator`], and the
//! [`ExactScanEstimator`], and routes every query through a
//! [`HybridRouter`]. Costs are modeled per query — the KDE and exact
//! charges through the device's calibrated
//! [`CostModel`](kdesel_device::CostModel), the learned charge through
//! a host-throughput model — so the router prices all three families in
//! the same modeled-seconds currency.
//!
//! **Feedback attribution.** The observatory loop delivers
//! [`QueryFeedback`] after execution, potentially out of order. Each
//! routed estimate remembers `(rect hash, family)` in a bounded FIFO;
//! when feedback arrives, the newest matching attribution is popped,
//! the q-error lands in *that* family's window, and — only when the
//! KDE answered — the feedback also drives the adaptive bandwidth/Karma
//! update. Before the KDE observes, the fused single-query sweep is
//! re-run for the feedback's region (the same re-prime `kdesel-serve`
//! performs) so Karma consumes the contribution buffer of exactly this
//! query even when other KDE-routed estimates ran in between.
//!
//! The learned model and the exact snapshot are deliberately *not*
//! maintained under inserts: they decay exactly like a stale optimizer
//! statistic would, and the router's rolling windows are how the system
//! notices and shifts traffic back to the self-tuning KDE.

use crate::exact::ExactScanEstimator;
use crate::learned::{rect_seed, LearnedConfig, LearnedEstimator};
use crate::router::{qerror, Family, HybridRouter, RouterConfig};
use kdesel_kde::{AdaptiveConfig, AdaptiveKde, KarmaConfig, KernelFn, ModelSnapshot};
use kdesel_types::{QueryFeedback, Rect, RouterState, SelectivityEstimator};
use std::collections::VecDeque;

/// Everything needed to build a [`HybridEstimator`] from a sample.
#[derive(Debug, Clone, Default)]
pub struct HybridConfig {
    /// Routing policy.
    pub router: RouterConfig,
    /// Learned-model hyper-parameters.
    pub learned: LearnedConfig,
    /// Adaptive bandwidth-tuning configuration for the KDE member.
    pub adaptive: AdaptiveConfig,
    /// Karma sample-maintenance configuration for the KDE member.
    pub karma: KarmaConfig,
    /// Kernel for the KDE member.
    pub kernel: KernelFn,
}

/// Three estimator families behind one cost/error router.
pub struct HybridEstimator {
    kde: AdaptiveKde,
    learned: LearnedEstimator,
    exact: ExactScanEstimator,
    router: HybridRouter,
    /// `(rect hash, family)` of routed estimates still awaiting
    /// feedback, oldest first.
    attributions: VecDeque<(u64, Family)>,
    /// Hyper-parameters the learned member retrains with after a
    /// snapshot restore.
    learned_config: LearnedConfig,
}

impl HybridEstimator {
    /// Bundles pre-built members. All three must share one
    /// dimensionality.
    pub fn new(
        kde: AdaptiveKde,
        learned: LearnedEstimator,
        exact: ExactScanEstimator,
        router: RouterConfig,
    ) -> Self {
        let dims = kde.model().dims();
        assert_eq!(
            learned.dims(),
            dims,
            "learned member dimensionality mismatch"
        );
        assert_eq!(exact.dims(), dims, "exact member dimensionality mismatch");
        Self {
            kde,
            learned,
            exact,
            router: HybridRouter::new(router),
            attributions: VecDeque::new(),
            learned_config: LearnedConfig::default(),
        }
    }

    /// Overrides the hyper-parameters the learned member retrains with
    /// after a snapshot restore (builder style, for members trained
    /// with a non-default [`LearnedConfig`]).
    pub fn with_learned_config(mut self, config: LearnedConfig) -> Self {
        self.learned_config = config;
        self
    }

    /// Builds all three members over the same staged sample: the KDE
    /// estimates from it, the learned model trains on it, and the exact
    /// member scans it. Used where the sample is all that is available
    /// (serving); harness builds that hold the full table should stage
    /// the exact member over the table instead and use
    /// [`new`](Self::new).
    pub fn from_sample(
        device: kdesel_device::Device,
        sample: &[f64],
        dims: usize,
        config: &HybridConfig,
    ) -> Self {
        // Devices own their timing ledgers, so the exact member gets a
        // sibling with the same backend and cost profile — identical
        // modeled charges, separate measured clocks.
        let sibling =
            kdesel_device::Device::with_profile(device.backend(), *device.cost_model().profile());
        let kde = AdaptiveKde::new(
            device,
            sample,
            dims,
            config.kernel,
            config.adaptive.clone(),
            config.karma.clone(),
        );
        let learned = LearnedEstimator::train(sample, dims, &config.learned);
        let exact = ExactScanEstimator::new(sibling, sample, dims);
        Self::new(kde, learned, exact, config.router.clone())
            .with_learned_config(config.learned.clone())
    }

    /// Captures the model for a warm restart: the KDE member's snapshot
    /// plus the router's adaptive state. The learned and exact members
    /// are derived from the sample, so they are not stored — restore
    /// retrains and restages them.
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot::of(self.kde.model()).with_router(self.router_state())
    }

    /// Restores state captured by [`snapshot`](Self::snapshot) in
    /// place: the KDE member is rebuilt from the snapshot (backend and
    /// cost profile preserved, tuner/Karma state fresh — the same warm
    /// restart semantics as a plain adaptive model), the learned member
    /// retrains on the snapshot's sample, the exact member restages it,
    /// and the router resumes from the embedded state (or fresh when
    /// the snapshot carries none). Pending feedback attributions are
    /// dropped — they refer to queries answered by the old model.
    pub fn restore_from_snapshot(&mut self, snapshot: &ModelSnapshot) -> Result<(), String> {
        let dims = self.kde.model().dims();
        if snapshot.dims != dims {
            return Err(format!(
                "snapshot dims {} do not match hybrid model dims {dims}",
                snapshot.dims
            ));
        }
        let device = self.kde.model().device();
        let (backend, profile) = (device.backend(), *device.cost_model().profile());
        let adaptive = self.kde.adaptive_config().clone();
        let karma = self.kde.karma_config().clone();
        self.kde = AdaptiveKde::from_estimator(
            snapshot.restore(kdesel_device::Device::with_profile(backend, profile)),
            adaptive,
            karma,
        );
        self.learned = LearnedEstimator::train(&snapshot.sample, dims, &self.learned_config);
        self.exact = ExactScanEstimator::new(
            kdesel_device::Device::with_profile(backend, profile),
            &snapshot.sample,
            dims,
        );
        let config = self.router.config().clone();
        self.router = HybridRouter::new(config);
        if let Some(state) = &snapshot.router {
            self.router.restore(state)?;
        }
        self.attributions.clear();
        Ok(())
    }

    /// Modeled device seconds one KDE estimate costs: bounds upload,
    /// one kernel pass over the sample, scalar download (the Fig. 7
    /// estimate-equivalent).
    pub fn kde_query_cost(&self) -> f64 {
        let model = self.kde.model();
        let cost = model.device().cost_model();
        let dims = model.dims();
        let flops = model.kernel().flops_per_factor() * dims as f64 + 4.0;
        cost.transfer(2 * dims * std::mem::size_of::<f64>())
            + cost.kernel(model.sample_size(), flops)
            + cost.transfer(std::mem::size_of::<f64>())
    }

    /// Modeled per-query cost of each family, indexed like
    /// [`Family::ALL`].
    pub fn query_costs(&self) -> [f64; 3] {
        [
            self.kde_query_cost(),
            self.learned.query_cost(),
            self.exact.query_cost(),
        ]
    }

    /// Routes one query and answers it, returning the estimate and the
    /// family that produced it.
    pub fn estimate_routed(&mut self, region: &Rect) -> (f64, Family) {
        let costs = self.query_costs();
        let family = self.router.choose(&costs);
        let estimate = match family {
            Family::Kde => SelectivityEstimator::estimate(&mut self.kde, region),
            Family::Learned => self.learned.estimate(region),
            Family::Exact => self.exact.estimate(region),
        };
        // Bound the attribution FIFO: feedback older than a few windows
        // is routing ancient history anyway.
        if self.attributions.len() >= 4 * self.router.config().window.max(1) {
            self.attributions.pop_front();
        }
        self.attributions.push_back((rect_seed(region), family));
        (estimate, family)
    }

    /// The family that answered the most recent routed query.
    pub fn last_family(&self) -> Option<Family> {
        self.router.last()
    }

    /// Pops the newest pending attribution matching `region`, if any.
    fn take_attribution(&mut self, region: &Rect) -> Option<Family> {
        let key = rect_seed(region);
        let pos = self.attributions.iter().rposition(|(k, _)| *k == key)?;
        self.attributions.remove(pos).map(|(_, family)| family)
    }

    /// The router (windows, decision counters).
    pub fn router(&self) -> &HybridRouter {
        &self.router
    }

    /// Captures the router's adaptive state for a warm restart.
    pub fn router_state(&self) -> RouterState {
        self.router.state()
    }

    /// Restores router state captured by
    /// [`router_state`](Self::router_state).
    pub fn restore_router(&mut self, state: &RouterState) -> Result<(), String> {
        self.router.restore(state)
    }

    /// The KDE member.
    pub fn kde(&self) -> &AdaptiveKde {
        &self.kde
    }

    /// Mutable access to the KDE member (sample maintenance).
    pub fn kde_mut(&mut self) -> &mut AdaptiveKde {
        &mut self.kde
    }

    /// The learned member.
    pub fn learned(&self) -> &LearnedEstimator {
        &self.learned
    }

    /// Hyper-parameters the learned member retrains with after a
    /// snapshot restore.
    pub fn learned_config(&self) -> &LearnedConfig {
        &self.learned_config
    }

    /// The exact-scan member.
    pub fn exact(&self) -> &ExactScanEstimator {
        &self.exact
    }

    /// The device the KDE member runs on.
    pub fn device(&self) -> &kdesel_device::Device {
        self.kde.model().device()
    }

    /// Sample slots the KDE member flagged as outdated (Karma).
    pub fn take_pending_replacements(&mut self) -> Vec<usize> {
        self.kde.take_pending_replacements()
    }

    /// Installs a fresh tuple in the KDE member's sample. The learned
    /// and exact members keep their stale snapshots by design.
    pub fn replace_point(&mut self, index: usize, row: &[f64]) {
        self.kde.replace_point(index, row);
    }

    /// Reservoir-sampling insert hook, forwarded to the KDE member.
    pub fn reservoir_replace(&mut self, slot: usize, row: &[f64]) {
        self.kde.reservoir_replace(slot, row);
    }
}

impl SelectivityEstimator for HybridEstimator {
    fn estimate(&mut self, region: &Rect) -> f64 {
        self.estimate_routed(region).0
    }

    fn observe(&mut self, feedback: &QueryFeedback) {
        // The router's q-error window is scored per family: only the
        // member that answered is judged by this feedback.
        let family = self.take_attribution(&feedback.region);
        if let Some(family) = family {
            self.router
                .record(family, qerror(feedback.estimate, feedback.actual));
        }
        // Model maintenance is a different matter: the self-tuning KDE
        // adapts from *every* observed truth, exactly as it would
        // standalone — starving it while another family answers would
        // leave it cold when the router needs to fall back to it. Its
        // own estimate re-primes the fused sweep for exactly this
        // region so Karma consumes this query's contribution buffer.
        let estimate = SelectivityEstimator::estimate(&mut self.kde, &feedback.region);
        let kde_feedback = QueryFeedback {
            region: feedback.region.clone(),
            estimate,
            actual: feedback.actual,
            cardinality: feedback.cardinality,
        };
        self.kde.observe(&kde_feedback);
    }

    fn memory_bytes(&self) -> usize {
        self.kde.memory_bytes() + self.learned.memory_bytes() + self.exact.memory_bytes()
    }

    fn name(&self) -> &str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::{Backend, Device};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample(n: usize, dims: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dims).map(|_| rng.gen_range(0.0..100.0)).collect()
    }

    fn hybrid(n: usize, dims: usize, seed: u64) -> HybridEstimator {
        let data = sample(n, dims, seed);
        HybridEstimator::from_sample(
            Device::new(Backend::CpuSeq),
            &data,
            dims,
            &HybridConfig::default(),
        )
    }

    #[test]
    fn estimates_stay_in_unit_interval_across_families() {
        let mut est = hybrid(256, 2, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let lo: f64 = rng.gen_range(0.0..80.0);
            let hi = lo + rng.gen_range(0.0..20.0);
            let (p, _) = est.estimate_routed(&Rect::cube(2, lo, hi));
            assert!((0.0..=1.0).contains(&p), "estimate {p} out of range");
        }
        let d = est.router().decisions();
        assert_eq!(d.iter().sum::<u64>(), 40);
    }

    #[test]
    fn feedback_lands_in_the_answering_family_window() {
        let mut est = hybrid(128, 2, 3);
        let region = Rect::cube(2, 10.0, 60.0);
        let (p, family) = est.estimate_routed(&region);
        est.observe(&QueryFeedback {
            region,
            estimate: p,
            actual: (p + 0.3).min(1.0),
            cardinality: 0,
        });
        let state = est.router_state();
        let idx = Family::ALL
            .iter()
            .position(|f| *f == family)
            .expect("family in ALL");
        assert_eq!(state.windows[idx].len(), 1, "window of {}", family.name());
        for (i, w) in state.windows.iter().enumerate() {
            if i != idx {
                assert!(w.is_empty(), "stray q-error in {}", Family::ALL[i].name());
            }
        }
        assert!(est.attributions.is_empty());
    }

    #[test]
    fn feedback_for_unseen_queries_is_tolerated() {
        let mut est = hybrid(128, 2, 4);
        est.observe(&QueryFeedback {
            region: Rect::cube(2, 0.0, 1.0),
            estimate: 0.5,
            actual: 0.1,
            cardinality: 0,
        });
        let state = est.router_state();
        assert!(state.windows.iter().all(Vec::is_empty));
    }

    #[test]
    fn error_pressure_moves_routing_between_families() {
        // Free device: no cost penalty, routing is purely error-driven.
        let data = sample(256, 2, 5);
        let mut config = HybridConfig::default();
        config.router.probe_every = 0;
        let mut est = HybridEstimator::from_sample(Device::new(Backend::CpuSeq), &data, 2, &config);
        // Poison KDE's and learned's windows; exact stays pristine.
        for _ in 0..8 {
            est.router.record(Family::Kde, 40.0);
            est.router.record(Family::Learned, 40.0);
            est.router.record(Family::Exact, 1.0);
        }
        let (_, family) = est.estimate_routed(&Rect::cube(2, 20.0, 50.0));
        assert_eq!(family, Family::Exact);
    }

    #[test]
    fn snapshot_restore_resumes_router_and_model() {
        let mut est = hybrid(192, 2, 8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..24 {
            let lo: f64 = rng.gen_range(0.0..70.0);
            let region = Rect::cube(2, lo, lo + 20.0);
            let (p, _) = est.estimate_routed(&region);
            est.observe(&QueryFeedback {
                region,
                estimate: p,
                actual: (p * 1.3).min(1.0),
                cardinality: 0,
            });
        }
        let snapshot = est.snapshot();
        assert!(snapshot.router.is_some());
        // JSON round-trip, then restore into a differently-seeded model.
        let back = ModelSnapshot::from_json(&snapshot.to_json()).expect("parse");
        let mut restored = hybrid(192, 2, 999);
        restored.restore_from_snapshot(&back).unwrap();
        assert_eq!(restored.router_state(), est.router_state());
        assert_eq!(
            restored.kde().model().bandwidth(),
            est.kde().model().bandwidth()
        );
        // Same state + same costs => the restored model keeps routing
        // exactly where the original left off.
        let region = Rect::cube(2, 15.0, 40.0);
        let (pr, fr) = restored.estimate_routed(&region);
        let (po, fo) = est.estimate_routed(&region);
        assert_eq!(fr, fo);
        assert_eq!(pr.to_bits(), po.to_bits());
        // Dimension mismatches are rejected.
        let mut wrong = hybrid(64, 3, 1);
        assert!(wrong.restore_from_snapshot(&back).is_err());
    }

    #[test]
    fn router_state_roundtrips_through_a_fresh_hybrid() {
        let mut est = hybrid(128, 3, 6);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let lo: f64 = rng.gen_range(0.0..70.0);
            let region = Rect::cube(3, lo, lo + 25.0);
            let (p, _) = est.estimate_routed(&region);
            est.observe(&QueryFeedback {
                region,
                estimate: p,
                actual: (p * 1.4).min(1.0),
                cardinality: 0,
            });
        }
        let state = est.router_state();
        let mut fresh = hybrid(128, 3, 6);
        fresh.restore_router(&state).unwrap();
        assert_eq!(fresh.router_state(), state);
        // Identical state + identical costs => identical next choice.
        let region = Rect::cube(3, 5.0, 30.0);
        assert_eq!(
            est.estimate_routed(&region).1,
            fresh.estimate_routed(&region).1
        );
    }
}
