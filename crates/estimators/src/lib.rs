//! Estimator bake-off: learned and exact baselines behind a hybrid
//! cost/error router.
//!
//! The paper evaluates KDE against four classical baselines
//! (heuristics, STHoles, AVI, sampling). This crate adds the two
//! families a modern comparison needs and the router that arbitrates
//! between them:
//!
//! * [`learned`] — a Naru-style autoregressive model (*Deep
//!   Unsupervised Cardinality Estimation*, PAPERS.md): per-dimension
//!   discretized conditional distributions, trained on the staged
//!   sample by maximum likelihood via the in-tree L-BFGS from
//!   `kdesel-solver`, answered with progressive-sampling range
//!   inference,
//! * [`exact`] — an exact-scan estimator (*Exact Selectivity
//!   Computation*, PAPERS.md) sweeping the SoA stripes through one
//!   fused `sweep_reduce` launch, costed through the calibrated
//!   [`CostProfile`](kdesel_device::CostProfile) so the router can
//!   price it honestly,
//! * [`router`] — [`HybridRouter`]: per query, pick the cheapest
//!   family whose modeled latency fits the budget and whose rolling
//!   q-error window (the PR 6 observatory shape) looks best,
//! * [`hybrid`] — [`HybridEstimator`]: KDE + learned + exact behind
//!   one router, with feedback attributed to whichever family
//!   answered.
//!
//! The crate sits between `kdesel-kde` and `kdesel-serve` in the
//! dependency order: it may use devices, solvers, and KDE models, but
//! knows nothing about serving or the engine harness.

pub mod exact;
pub mod hybrid;
pub mod learned;
pub mod router;

pub use exact::ExactScanEstimator;
pub use hybrid::{HybridConfig, HybridEstimator};
pub use learned::{LearnedConfig, LearnedEstimator};
pub use router::{Family, HybridRouter, RouterConfig};
