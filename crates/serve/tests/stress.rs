//! Release-mode threaded stress test, run by `scripts/check.sh` via
//! `cargo test --release -- --ignored`. Many producers, mixed
//! estimate/feedback traffic, mid-flight checkpoints and reports — the
//! service must stay correct (every reply in [0, 1], every request
//! answered) and drain cleanly.

use kdesel_device::{Backend, Device};
use kdesel_kde::{AdaptiveConfig, AdaptiveKde, KarmaConfig, KdeEstimator, KernelFn};
use kdesel_serve::{CheckpointPolicy, ModelKey, ServeConfig, ServedModel, Service};
use kdesel_types::{QueryFeedback, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

#[test]
#[ignore = "heavy: run explicitly (check.sh runs it in release mode)"]
fn mixed_traffic_stress_drains_cleanly() {
    const PRODUCERS: usize = 16;
    const OPS_PER_PRODUCER: usize = 400;
    let dims = 3;
    let mut rng = StdRng::seed_from_u64(42);
    let sample: Vec<f64> = (0..512 * dims).map(|_| rng.gen_range(0.0..1.0)).collect();
    let dir = std::env::temp_dir().join(format!("kdesel-serve-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let fixed_key = ModelKey::new("fixed", &["a", "b", "c"]);
    let adaptive_key = ModelKey::new("adaptive", &["a", "b", "c"]);
    let service = Service::builder(ServeConfig {
        max_batch: 32,
        max_wait: Duration::from_micros(100),
        maintenance_chunk: 8,
        checkpoint: Some(CheckpointPolicy::in_dir(&dir).every(Duration::from_millis(20))),
        ..ServeConfig::default()
    })
    .register(
        fixed_key.clone(),
        ServedModel::fixed(KdeEstimator::new(
            Device::new(Backend::CpuPar),
            &sample,
            dims,
            KernelFn::Gaussian,
        )),
    )
    .register(
        adaptive_key.clone(),
        ServedModel::adaptive(AdaptiveKde::new(
            Device::new(Backend::SimGpu),
            &sample,
            dims,
            KernelFn::Gaussian,
            AdaptiveConfig::default(),
            KarmaConfig::default(),
        )),
    )
    .build()
    .unwrap();
    let handle = service.handle();

    let answered: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let handle = handle.clone();
                let fixed_key = &fixed_key;
                let adaptive_key = &adaptive_key;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + p as u64);
                    let mut answered = 0u64;
                    for op in 0..OPS_PER_PRODUCER {
                        let key = if op % 2 == 0 { fixed_key } else { adaptive_key };
                        let intervals: Vec<(f64, f64)> = (0..3)
                            .map(|_| {
                                let lo = rng.gen_range(-0.1..0.8);
                                (lo, lo + rng.gen_range(0.05..0.5))
                            })
                            .collect();
                        let region = Rect::from_intervals(&intervals);
                        let estimate = handle.estimate(key, &region).unwrap();
                        assert!(
                            (0.0..=1.0).contains(&estimate),
                            "estimate {estimate} out of range"
                        );
                        answered += 1;
                        // A third of the traffic feeds back; some producers
                        // interleave reports and explicit checkpoints.
                        if op % 3 == 0 {
                            handle
                                .feedback(
                                    key,
                                    QueryFeedback {
                                        region,
                                        estimate,
                                        actual: rng.gen_range(0.0..1.0),
                                        cardinality: 0,
                                    },
                                )
                                .unwrap();
                        }
                        if p == 0 && op % 100 == 0 {
                            handle.checkpoint(key).unwrap();
                        }
                        if p == 1 && op % 50 == 0 {
                            let _ = handle.report(key).unwrap();
                        }
                    }
                    answered
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    assert_eq!(answered, (PRODUCERS * OPS_PER_PRODUCER) as u64);

    for key in [&fixed_key, &adaptive_key] {
        handle.flush(key).unwrap();
        let report = handle.report(key).unwrap();
        assert_eq!(report.requests, answered / 2);
        assert_eq!(report.backlog, 0, "flush left a backlog");
        assert!(report.batches <= report.requests);
    }
    // The adaptive model must actually have consumed feedback.
    let adaptive_report = handle.report(&adaptive_key).unwrap();
    assert!(
        adaptive_report.maintenance_applied > 0,
        "no maintenance ran"
    );

    service.shutdown().unwrap();
    // Shutdown checkpoints exist for both models and are restorable.
    for key in [&fixed_key, &adaptive_key] {
        let snap = kdesel_serve::snapshot::load(&dir, key)
            .unwrap()
            .expect("shutdown checkpoint missing");
        assert_eq!(snap.dims, dims);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
