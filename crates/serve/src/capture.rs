//! Workload capture: a versioned JSONL record of everything the service
//! did, detailed enough to re-drive it bit-for-bit.
//!
//! When [`ServeConfig::capture`](crate::ServeConfig) names a file, the
//! service appends one JSON object per line (through the telemetry
//! [`JsonlSink`], so every line carries the `"v"` schema-version field):
//!
//! * one `capture.header` line, then one `capture.model` line per
//!   registered model — key, backend, full state snapshot, and (for
//!   adaptive models) the complete tuning configuration, so replay can
//!   reconstruct the registry without the original build code;
//! * one `serve.request` line per served estimate (the root span of its
//!   trace, carrying the queried rectangle and the produced estimate),
//!   with `serve.batch` and `serve.launch` child spans;
//! * one `serve.feedback` line per applied feedback item (a child span
//!   of the request's root), carrying the true selectivity and every
//!   Karma replacement `(slot, row)` the refresh source installed;
//! * one final `capture.end` line with the total record count, so the
//!   replay loader can tell a clean capture from one whose tail was
//!   lost.
//!
//! The same span events are mirrored to the global telemetry sink when
//! tracing is on — the capture is a superset of the trace, not a rival
//! format. Workers write their own operations in execution order, so the
//! per-model subsequence of a capture is exactly the order in which that
//! model's state evolved; `crate::replay` relies on this.

use crate::model::{ModelKey, ServedModel};
use kdesel_telemetry::{Event, EventSink, JsonlSink};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Separator joining column names into one string field (chosen because
/// it cannot appear in sane identifiers and survives JSON escaping).
pub(crate) const COLUMN_SEPARATOR: char = '\u{1f}';

/// Shared recorder appending capture records to one JSONL file. Cheap to
/// clone behind an [`Arc`]; workers from all models write through the
/// same sink, whose internal lock keeps lines whole.
pub struct Recorder {
    sink: JsonlSink,
    ids: BTreeMap<ModelKey, u64>,
    records: AtomicU64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("models", &self.ids.len())
            .finish_non_exhaustive()
    }
}

/// A worker's view of the shared recorder: the recorder plus the
/// worker's own model ID.
#[derive(Clone, Debug)]
pub(crate) struct ModelRecorder {
    pub(crate) id: u64,
    pub(crate) recorder: Arc<Recorder>,
}

impl Recorder {
    /// Creates (truncating) the capture file and writes the header and
    /// one model record per registry entry. Model IDs are assigned in
    /// iteration order, starting at 0.
    pub(crate) fn create(path: &Path, models: &[(ModelKey, ServedModel)]) -> Result<Self, String> {
        let sink = JsonlSink::create(path)
            .map_err(|e| format!("creating capture file {}: {e}", path.display()))?;
        let recorder = Self {
            sink,
            ids: models
                .iter()
                .enumerate()
                .map(|(i, (key, _))| (key.clone(), i as u64))
                .collect(),
            records: AtomicU64::new(0),
        };
        recorder.record(Event::new("capture.header").u64("models", models.len() as u64));
        for (i, (key, model)) in models.iter().enumerate() {
            recorder.record(model_record(i as u64, key, model));
        }
        Ok(recorder)
    }

    /// The capture-internal ID of `key` (present for every registered
    /// model by construction).
    pub(crate) fn model_id(&self, key: &ModelKey) -> u64 {
        self.ids[key]
    }

    /// Appends one record.
    pub(crate) fn record(&self, event: Event) {
        self.records.fetch_add(1, Ordering::Relaxed);
        self.sink.emit(&event);
    }

    /// Writes the `capture.end` footer and flushes. Call once, after all
    /// workers have exited.
    pub(crate) fn finish(&self) {
        let records = self.records.load(Ordering::Relaxed);
        self.sink
            .emit(&Event::new("capture.end").u64("records", records));
        self.sink.flush();
    }
}

/// The per-model configuration record: everything `crate::replay` needs
/// to rebuild this registry entry from scratch.
fn model_record(id: u64, key: &ModelKey, model: &ServedModel) -> Event {
    let snapshot = model.snapshot();
    let mut columns = String::new();
    for (i, column) in key.columns().iter().enumerate() {
        if i > 0 {
            columns.push(COLUMN_SEPARATOR);
        }
        columns.push_str(column);
    }
    let mut event = Event::new("capture.model")
        .u64("m", id)
        .str("table", key.table())
        .str("columns", columns)
        .str("backend", model.estimator().device().backend().name())
        .u64("dims", snapshot.dims as u64)
        .str("kernel", &snapshot.kernel)
        .f64_slice("sample", &snapshot.sample)
        .f64_slice("bandwidth", &snapshot.bandwidth);
    // The adaptive-tuning fields, shared by the adaptive kind and the
    // hybrid kind's KDE member.
    fn tuning_fields(
        event: Event,
        adaptive: &kdesel_kde::AdaptiveConfig,
        karma: &kdesel_kde::KarmaConfig,
    ) -> Event {
        event
            .str("loss", adaptive.loss.name())
            .u64("mini_batch", adaptive.mini_batch as u64)
            .u64("log_updates", u64::from(adaptive.log_updates))
            .f64("rms_smoothing", adaptive.rmsprop.smoothing)
            .f64("rms_rate_init", adaptive.rmsprop.rate_init)
            .f64("rms_rate_min", adaptive.rmsprop.rate_min)
            .f64("rms_rate_max", adaptive.rmsprop.rate_max)
            .f64("rms_rate_inc", adaptive.rmsprop.rate_inc)
            .f64("rms_rate_dec", adaptive.rmsprop.rate_dec)
            .f64("rms_epsilon", adaptive.rmsprop.epsilon)
            .str("karma_loss", karma.loss.name())
            .f64("karma_k_max", karma.k_max)
            .f64("karma_threshold", karma.threshold)
            .u64("karma_shortcut", u64::from(karma.empty_region_shortcut))
    }
    match model {
        ServedModel::Static(_) => {
            event = event.str("kind", "static");
        }
        ServedModel::Adaptive { kde, refresh } => {
            event = tuning_fields(
                event
                    .str("kind", "adaptive")
                    .u64("refresh", u64::from(refresh.is_some())),
                kde.adaptive_config(),
                kde.karma_config(),
            );
        }
        ServedModel::Hybrid { hybrid, refresh } => {
            // Routing is deterministic in (configs, router state); models
            // are recorded at registration, when the router is fresh, so
            // the configs alone let replay reproduce every decision.
            let router = hybrid.router().config();
            let learned = hybrid.learned_config();
            event = tuning_fields(
                event
                    .str("kind", "hybrid")
                    .u64("refresh", u64::from(refresh.is_some()))
                    .u64("router_window", router.window as u64)
                    .f64("router_budget", router.latency_budget)
                    .u64("router_probe", router.probe_every)
                    .u64("learned_bins", learned.bins as u64)
                    .u64("learned_paths", learned.paths as u64)
                    .f64("learned_l2", learned.l2),
                hybrid.kde().adaptive_config(),
                hybrid.kde().karma_config(),
            );
        }
    }
    event
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::{Backend, Device};
    use kdesel_kde::{AdaptiveConfig, AdaptiveKde, KarmaConfig, KdeEstimator, KernelFn};

    fn sample() -> Vec<f64> {
        (0..32).map(|i| i as f64 * 0.06).collect()
    }

    #[test]
    fn capture_file_has_header_models_and_footer() {
        let dir = std::env::temp_dir().join(format!("kdesel-capture-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.jsonl");
        let models = vec![
            (
                ModelKey::new("orders", &["price", "qty"]),
                ServedModel::fixed(KdeEstimator::new(
                    Device::new(Backend::CpuSeq),
                    &sample(),
                    2,
                    KernelFn::Gaussian,
                )),
            ),
            (
                ModelKey::new("parts", &["size"]),
                ServedModel::adaptive(AdaptiveKde::new(
                    Device::new(Backend::SimGpu),
                    &sample(),
                    1,
                    KernelFn::Gaussian,
                    AdaptiveConfig::default(),
                    KarmaConfig::default(),
                )),
            ),
        ];
        let recorder = Recorder::create(&path, &models).unwrap();
        assert_eq!(recorder.model_id(&models[0].0), 0);
        assert_eq!(recorder.model_id(&models[1].0), 1);
        recorder.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 models + footer:\n{text}");
        assert!(lines[0].contains("\"capture.header\"") && lines[0].contains("\"models\":2"));
        assert!(lines[1].contains("\"kind\":\"static\"") && lines[1].contains("\"m\":0"));
        assert!(lines[2].contains("\"kind\":\"adaptive\"") && lines[2].contains("\"karma_k_max\""));
        assert!(lines[3].contains("\"capture.end\"") && lines[3].contains("\"records\":3"));
        for line in &lines {
            assert!(line.starts_with("{\"v\":1,"), "unversioned line {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
