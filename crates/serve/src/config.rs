//! Service configuration: the latency-vs-throughput knobs.
//!
//! Coalescing trades tail latency for launch amortization. The scheduler
//! holds the first request of a batch for at most [`ServeConfig::max_wait`]
//! while it gathers up to [`ServeConfig::max_batch`] companions, then
//! issues one fused `estimate_batch` launch for the whole group. With
//! `max_batch == 1` the service degenerates to one-request-per-launch —
//! the baseline `bench_serve` compares against.

use std::path::PathBuf;
use std::time::Duration;

/// Tuning knobs for one serving instance (shared by all registered models).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest number of requests fused into one `estimate_batch` launch.
    /// `1` disables coalescing entirely.
    pub max_batch: usize,
    /// Longest time the scheduler holds an admitted request while waiting
    /// for companions. Zero means "batch only what is already queued".
    pub max_wait: Duration,
    /// Upper bound on feedback items applied per maintenance slice between
    /// batches, so a deep backlog cannot starve incoming estimates.
    pub maintenance_chunk: usize,
    /// Warm-restart checkpointing; `None` disables persistence.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Workload capture: when set, every registered model and every served
    /// request/feedback (with its trace-span tree) is appended to this
    /// versioned JSONL file, replayable with `kdesel-replay`.
    pub capture: Option<PathBuf>,
    /// When set, a Prometheus-style text snapshot of the metrics registry
    /// is written here at shutdown (requires telemetry to be enabled for
    /// the metrics to carry values).
    pub metrics_dump: Option<PathBuf>,
    /// Adaptive straggler deadline. `None` keeps the fixed policy: the
    /// scheduler holds the whole `max_wait` window whenever fewer than
    /// `max_batch` requests show up — which is exactly the large-batch
    /// throughput cliff (a big `max_batch` that concurrency can't fill
    /// turns every batch into a full-window stall). When set, the
    /// scheduler instead waits per *gap*: each straggler may take at most
    /// a fraction of the measured per-batch launch cost (rolling p50 of
    /// this worker's own fused launches), so waiting is only bought where
    /// launch amortization can pay for it. `max_wait` stays the hard
    /// upper bound on total hold time.
    pub adaptive_wait: Option<AdaptiveWaitConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            maintenance_chunk: 16,
            checkpoint: None,
            capture: None,
            metrics_dump: None,
            adaptive_wait: None,
        }
    }
}

impl ServeConfig {
    /// Validates the knobs; returns a human-readable complaint otherwise.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".to_string());
        }
        if self.maintenance_chunk == 0 {
            return Err("maintenance_chunk must be at least 1".to_string());
        }
        if let Some(adaptive) = &self.adaptive_wait {
            adaptive.validate()?;
        }
        Ok(())
    }
}

/// Knobs of the measured-cost batching deadline (`ServeConfig::adaptive_wait`).
///
/// The gather deadline becomes `clamp(fraction × launch_p50, min_wait,
/// remaining max_wait)` per straggler gap, where `launch_p50` is the
/// rolling median of this worker's measured fused-launch wall times.
/// Until the first launch has been measured, `seed_launch_seconds`
/// stands in — typically the modeled batch cost from a calibrated
/// [`CostProfile`](kdesel_device::CostProfile) (see `kdesel-calibrate`).
#[derive(Debug, Clone)]
pub struct AdaptiveWaitConfig {
    /// Fraction of the p50 launch cost one straggler gap may spend.
    /// 1.0 means "wait as long as the launch itself takes"; the default
    /// 0.5 splits the amortization gain with the waiting request.
    pub fraction: f64,
    /// Floor of one straggler gap, so a sub-microsecond launch estimate
    /// cannot disable coalescing entirely.
    pub min_wait: Duration,
    /// Estimated per-batch launch seconds used before any launch has
    /// been measured; `None` falls back to `min_wait` for the first
    /// batch.
    pub seed_launch_seconds: Option<f64>,
}

impl Default for AdaptiveWaitConfig {
    fn default() -> Self {
        Self {
            fraction: 0.5,
            min_wait: Duration::from_micros(20),
            seed_launch_seconds: None,
        }
    }
}

impl AdaptiveWaitConfig {
    /// An adaptive policy seeded with a modeled per-batch launch cost
    /// (seconds), e.g. from a measured cost profile.
    pub fn seeded(launch_seconds: f64) -> Self {
        Self {
            seed_launch_seconds: Some(launch_seconds),
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.fraction.is_finite() && self.fraction > 0.0) {
            return Err("adaptive_wait.fraction must be positive and finite".to_string());
        }
        if let Some(seed) = self.seed_launch_seconds {
            if !(seed.is_finite() && seed >= 0.0) {
                return Err("adaptive_wait.seed_launch_seconds must be non-negative".to_string());
            }
        }
        Ok(())
    }
}

/// Where and how often [`ModelSnapshot`](kdesel_kde::ModelSnapshot)
/// checkpoints are written, and whether startup restores from them.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory holding one `<key>.kdesnap.json` file per registry entry.
    pub dir: PathBuf,
    /// Periodic checkpoint interval; `None` checkpoints only on shutdown
    /// and on explicit [`ServeHandle::checkpoint`](crate::ServeHandle)
    /// requests.
    pub every: Option<Duration>,
    /// Restore each registered model from its snapshot (if present) when
    /// the service is built.
    pub restore: bool,
}

impl CheckpointPolicy {
    /// Checkpoints into `dir` on shutdown/demand, restoring on startup.
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: None,
            restore: true,
        }
    }

    /// Adds a periodic checkpoint interval.
    pub fn every(mut self, interval: Duration) -> Self {
        self.every = Some(interval);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_batch_rejected() {
        let config = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn zero_maintenance_chunk_rejected() {
        let config = ServeConfig {
            maintenance_chunk: 0,
            ..ServeConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn adaptive_wait_validates() {
        let ok = ServeConfig {
            adaptive_wait: Some(AdaptiveWaitConfig::seeded(35e-6)),
            ..ServeConfig::default()
        };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.adaptive_wait.unwrap().seed_launch_seconds, Some(35e-6));
        for bad in [
            AdaptiveWaitConfig {
                fraction: 0.0,
                ..AdaptiveWaitConfig::default()
            },
            AdaptiveWaitConfig {
                fraction: f64::NAN,
                ..AdaptiveWaitConfig::default()
            },
            AdaptiveWaitConfig {
                seed_launch_seconds: Some(-1.0),
                ..AdaptiveWaitConfig::default()
            },
        ] {
            let config = ServeConfig {
                adaptive_wait: Some(bad),
                ..ServeConfig::default()
            };
            assert!(config.validate().is_err());
        }
    }

    #[test]
    fn policy_builder_sets_fields() {
        let policy = CheckpointPolicy::in_dir("/tmp/snaps").every(Duration::from_secs(5));
        assert_eq!(policy.dir, PathBuf::from("/tmp/snaps"));
        assert_eq!(policy.every, Some(Duration::from_secs(5)));
        assert!(policy.restore);
    }
}
